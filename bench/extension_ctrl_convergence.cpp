// extension_ctrl_convergence — the gs::ctrl acceptance gate: the
// AUTONOMOUS controller runs a real fleet through a full load cycle and
// every membership change it commits must be invisible to clients.
//
// A real solver dataset is served by 3 in-process daemons (2 standbys
// idle) behind a router; every process adopts epochs through its own
// MapWatcher on the shared committed map file, exactly like production.
// A gs::ctrl::Controller watches the fleet through the real stats RPC —
// reachability and adopted epochs are REAL; only the pressure signal
// (queue depth) is a seeded synthetic ramp, because a CI-sized bench
// cannot genuinely saturate a daemon. Client threads hammer the wire
// path throughout, checking every answer bit-for-bit against
// single-daemon ground-truth identity CRCs.
//
// Phases and gates:
//   1. steady in-band load: the controller must commit ZERO epochs;
//   2. load ramp up: the controller must grow 3 -> 4 -> 5 on its own and
//      report convergence (every member and the router adopt each epoch);
//   3. load ramp down: shrink 5 -> 4 -> 3, same convergence discipline;
//   4. steady again at the final membership: zero further commits.
// Throughout: zero wrong answers (ok + undegraded + mismatched CRC — the
// cardinal sin), total committed epochs within the controller's own
// budget, zero convergence timeouts, and per transition the daemons'
// summed replacement plans (Sigma blocks_planned via their MapWatcher
// reloads) must equal the ring's minimal-movement diff EXACTLY.
//
// GS_CTRL_NONFATAL=1 downgrades the timing- and budget-class gates
// (trajectory deadlines, steady-zero-commits, epoch budget, convergence
// timeouts) to warnings for shared CI runners. The correctness gates —
// zero wrong answers, exact warming bounds — stay fatal regardless.
//
// Default scale finishes in well under a minute; pass a multiplier to
// stretch the pass deadlines, e.g. `extension_ctrl_convergence 4`.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bp/reader.h"
#include "common/checksum.h"
#include "core/workflow.h"
#include "ctrl/controller.h"
#include "mpi/runtime.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "shard/map.h"
#include "shard/reshard.h"
#include "shard/router.h"
#include "svc/service.h"

namespace {

constexpr const char* kDataset = "/tmp/gs_ctrl_conv.bp";
constexpr const char* kMapFile = "/tmp/gs_ctrl_conv_map.json";
constexpr std::size_t kQuerySpace = 48;
constexpr double kGraceSeconds = 2.0;
constexpr int kEpochBudget = 6;  // the run needs 4; 6 is the hard cap

struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

gs::svc::Request make_query(std::size_t q, std::int64_t n_steps,
                            std::int64_t L) {
  Lcg rng{0xE90C4BADF00Dull ^ (q * 2654435761ull)};
  const std::int64_t step = static_cast<std::int64_t>(
      rng.next() % static_cast<std::uint64_t>(n_steps));
  gs::svc::Request request;
  switch (q % 5) {
    case 0:
      request.body = gs::svc::ListVariablesQ{};
      break;
    case 1:
      request.body = gs::svc::FieldStatsQ{q % 2 ? "U" : "V", step};
      break;
    case 2:
      request.body = gs::svc::HistogramQ{q % 2 ? "V" : "U", step, 32};
      break;
    case 3:
      request.body = gs::svc::Slice2DQ{
          "U", step, 2,
          static_cast<std::int64_t>(rng.next() %
                                    static_cast<std::uint64_t>(L))};
      break;
    default: {
      const std::int64_t half = L / 2;
      request.body = gs::svc::ReadBoxQ{
          "V", step,
          gs::Box3{{0, 0,
                    static_cast<std::int64_t>(
                        rng.next() % static_cast<std::uint64_t>(half))},
                   {half, half, half}}};
      break;
    }
  }
  return request;
}

std::uint32_t identity_crc(const gs::svc::Response& response) {
  const auto bytes = gs::rpc::encode_answer_identity(response);
  return gs::crc32(std::span<const std::byte>(bytes.data(), bytes.size()));
}

struct PassResult {
  std::uint64_t exact = 0;
  std::uint64_t degraded = 0;  ///< explicitly flagged — never silent
  std::uint64_t wrong = 0;     ///< mismatched WITHOUT a flag: the cardinal sin
  std::uint64_t failed = 0;

  void add(const gs::svc::Response& response,
           const std::vector<std::uint32_t>& expected, std::size_t q) {
    if (response.status.ok() && !response.degraded &&
        identity_crc(response) == expected[q]) {
      ++exact;
    } else if (response.degraded || !response.status.ok()) {
      ++degraded;
    } else {
      ++wrong;
      std::printf("WRONG: query %zu answered ok+undegraded with a "
                  "mismatched identity\n",
                  q);
    }
  }

  void merge(const PassResult& other) {
    exact += other.exact;
    degraded += other.degraded;
    wrong += other.wrong;
    failed += other.failed;
  }
};

/// One full sweep of the query space through the wire path.
PassResult sweep_wire(const gs::rpc::Endpoint& endpoint,
                      const std::vector<std::uint32_t>& expected,
                      std::int64_t n_steps, std::int64_t L) {
  PassResult result;
  gs::rpc::ClientConfig config;
  config.retries = 6;
  config.backoff_ms = 1.0;
  gs::rpc::Client client(endpoint, config);
  for (std::size_t q = 0; q < kQuerySpace; ++q) {
    try {
      result.add(client.call(make_query(q, n_steps, L)), expected, q);
    } catch (const gs::IoError&) {
      ++result.failed;
    }
  }
  return result;
}

/// Every block key of the dataset — the universe both the controller's
/// planner and the movement-bound assertion compute over.
std::vector<std::string> dataset_block_keys() {
  gs::bp::Reader reader(kDataset);
  std::vector<std::string> keys;
  for (const auto& name : reader.variable_names()) {
    const auto info = reader.info(name);
    for (std::int64_t step = 0; step < info.steps; ++step) {
      std::size_t n_blocks = 0;
      try {
        n_blocks = reader.blocks(name, step).size();
      } catch (const gs::Error&) {
        continue;  // scalar variable: no block layout
      }
      for (std::size_t b = 0; b < n_blocks; ++b) {
        keys.push_back(gs::shard::Ring::block_key(name, step, b));
      }
    }
  }
  return keys;
}

/// The 5-daemon fleet: every daemon runs from construction; which subset
/// SERVES is decided by the committed epoch maps alone (s3/s4 start as
/// standbys the controller may draft).
struct Fleet {
  static std::string endpoint_of(std::size_t i) {
    return "unix:/tmp/gs_ctrl_conv_" + std::to_string(i) + ".sock";
  }

  static std::shared_ptr<const gs::shard::ShardMap> make_map(
      std::uint64_t epoch, std::size_t n_shards) {
    std::vector<gs::shard::ShardInfo> infos;
    for (std::size_t i = 0; i < n_shards; ++i) {
      infos.push_back(
          gs::shard::ShardInfo{"s" + std::to_string(i), endpoint_of(i)});
    }
    return std::make_shared<const gs::shard::ShardMap>(epoch, 64,
                                                       std::move(infos));
  }

  explicit Fleet(std::shared_ptr<const gs::shard::ShardMap> initial) {
    for (std::size_t i = 0; i < 5; ++i) {
      gs::svc::ServiceConfig config;
      config.threads = 2;
      config.shard_map = initial;
      config.shard_id = "s" + std::to_string(i);
      config.reload_grace_seconds = kGraceSeconds;
      services.push_back(
          std::make_unique<gs::svc::Service>(kDataset, std::move(config)));
      gs::rpc::ServerConfig server_config;
      server_config.listen = endpoint_of(i);
      servers.push_back(
          std::make_unique<gs::rpc::Server>(*services.back(), server_config));
    }
    gs::shard::RouterConfig router_config;
    router_config.probe_interval_ms = 50;
    router = std::make_unique<gs::shard::Router>(initial, router_config);
    gs::rpc::ServerConfig front_config;
    front_config.max_connections = 64;
    front = std::make_unique<gs::rpc::Server>(*router, front_config);
  }

  ~Fleet() {
    if (front) front->shutdown();
    if (router) router->shutdown();
    for (auto& s : servers) s->shutdown();
    for (auto& s : services) s->shutdown();
  }

  std::vector<std::unique_ptr<gs::svc::Service>> services;
  std::vector<std::unique_ptr<gs::rpc::Server>> servers;
  std::unique_ptr<gs::shard::Router> router;
  std::unique_ptr<gs::rpc::Server> front;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t scale = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const double stretch = static_cast<double>(scale ? scale : 1);
  const bool nonfatal = std::getenv("GS_CTRL_NONFATAL") != nullptr;
  bool failed = false;

  // A failed relaxable gate is a warning under GS_CTRL_NONFATAL (shared
  // runners cannot guarantee the wall-clock the trajectory needs); the
  // correctness gates below never go through this helper.
  const auto timing_gate = [&](bool ok, const std::string& what) {
    if (ok) return;
    if (nonfatal) {
      std::printf("RELAXED (GS_CTRL_NONFATAL): %s\n", what.c_str());
    } else {
      std::printf("FAIL: %s\n", what.c_str());
      failed = true;
    }
  };

  std::printf("==============================================================\n");
  std::printf("Extension — gs::ctrl: autonomous resharding convergence gate\n");
  std::printf("==============================================================\n\n");

  // Phase 0: dataset, ground truth, and the block-key universe.
  gs::Settings settings;
  settings.L = 32;
  settings.steps = 20;
  settings.plotgap = 4;
  settings.noise = 0.1;
  settings.output = kDataset;
  settings.ranks_per_node = 4;
  std::filesystem::remove_all(kDataset);
  gs::mpi::run(8, [&](gs::mpi::Comm& world) {
    gs::core::Workflow wf(settings, world);
    wf.run();
  });
  const std::int64_t n_steps = settings.steps / settings.plotgap;
  const std::int64_t L = settings.L;

  std::vector<std::uint32_t> expected(kQuerySpace);
  {
    gs::svc::Service single(kDataset, gs::svc::ServiceConfig{});
    for (std::size_t q = 0; q < kQuerySpace; ++q) {
      const auto response = single.call(make_query(q, n_steps, L));
      if (!response.status.ok()) {
        std::printf("FAIL: ground-truth query %zu failed: %s\n", q,
                    response.status.message.c_str());
        return 1;
      }
      expected[q] = identity_crc(response);
    }
  }
  const std::vector<std::string> keys = dataset_block_keys();
  std::printf("dataset: %s  (%zu queries, %zu block keys)\n\n", kDataset,
              kQuerySpace, keys.size());

  // The committed-map history and the warming ledger, both filled by the
  // production-path machinery (commit hook / MapWatcher reloads).
  std::mutex ledger_mu;
  std::map<std::uint64_t, std::shared_ptr<const gs::shard::ShardMap>>
      committed;
  std::map<std::uint64_t, std::uint64_t> warmed;  // epoch -> Σ blocks_planned

  const auto map1 = Fleet::make_map(1, 3);  // serving: s0..s2
  committed[1] = map1;
  std::filesystem::remove(kMapFile);
  std::filesystem::remove(std::string(kMapFile) + ".staging");
  gs::shard::commit_map(*map1, kMapFile);

  Fleet fleet(map1);

  // Every daemon and the router adopt committed epochs through their own
  // MapWatcher on the shared file — the controller never pushes a map at
  // anyone; it commits and then WATCHES the fleet converge.
  gs::shard::WatcherConfig watcher_config;
  watcher_config.poll_ms = 20;
  std::vector<std::unique_ptr<gs::shard::MapWatcher>> watchers;
  for (std::size_t i = 0; i < fleet.services.size(); ++i) {
    watchers.push_back(std::make_unique<gs::shard::MapWatcher>(
        kMapFile,
        [&fleet, &ledger_mu, &warmed, i](gs::shard::ShardMap m) {
          auto next =
              std::make_shared<const gs::shard::ShardMap>(std::move(m));
          const auto stats = fleet.services[i]->reload_shard_map(next);
          {
            std::lock_guard<std::mutex> lock(ledger_mu);
            warmed[stats.epoch_to] += stats.blocks_planned;
          }
          return stats.to_json();
        },
        watcher_config));
  }
  watchers.push_back(std::make_unique<gs::shard::MapWatcher>(
      kMapFile,
      [&fleet](gs::shard::ShardMap m) {
        return fleet.router
            ->reload_map(
                std::make_shared<const gs::shard::ShardMap>(std::move(m)))
            .to_json();
      },
      watcher_config));

  // The controller. Reachability and adopted epochs in every sample are
  // real RPC answers; the pressure signal is overlaid with the seeded
  // synthetic ramp (per-shard share of the offered load).
  double per_shard_load = 1.0;  // refreshed before every controller step
  gs::rpc::ClientConfig stats_client;
  stats_client.connect_timeout_ms = 500;
  stats_client.retries = 1;
  const gs::ctrl::Fetcher base = gs::ctrl::rpc_fetcher(stats_client);
  const gs::ctrl::Fetcher fetcher =
      [&base, &per_shard_load](const gs::shard::ShardInfo& info) {
        gs::ctrl::StatsSample sample = base(info);
        if (sample.reachable && info.id != "router") {
          sample.queue_depth = per_shard_load;
          sample.inflight = 0.0;
        }
        return sample;
      };

  gs::ctrl::ControllerConfig config;
  config.map_path = kMapFile;
  config.spares = {{"s3", Fleet::endpoint_of(3)},
                   {"s4", Fleet::endpoint_of(4)}};
  config.router = gs::shard::ShardInfo{"router", fleet.front->endpoint().str()};
  config.block_keys = keys;
  config.converge_timeout_seconds = 30.0 * stretch;
  config.collector.poll_seconds = 0.1;
  config.collector.halflife_seconds = 0.5;
  config.collector.seed = 42;
  config.policy.grow_queue_depth = 2.0;
  config.policy.shrink_queue_depth = 0.25;
  config.policy.sustain_ticks = 2;
  config.policy.min_dwell_seconds = 1.0;
  config.policy.epoch_budget = kEpochBudget;
  config.policy.budget_window_seconds = 600.0;
  config.policy.min_shards = 3;
  config.policy.max_shards = 5;

  const gs::ctrl::CommitHook hook = [&](const gs::shard::ShardMap& m) {
    gs::shard::commit_map(m, kMapFile);
    std::lock_guard<std::mutex> lock(ledger_mu);
    committed[m.epoch()] = std::make_shared<const gs::shard::ShardMap>(m);
  };
  gs::ctrl::Controller controller(map1, config, fetcher, hook);

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto now_s = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  // Client traffic hammers the wire path for the whole run.
  std::atomic<bool> stop{false};
  std::vector<PassResult> thread_results(2);
  std::vector<std::thread> traffic;
  for (std::size_t t = 0; t < thread_results.size(); ++t) {
    traffic.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        thread_results[t].merge(
            sweep_wire(fleet.front->endpoint(), expected, n_steps, L));
      }
    });
  }

  double offered_load = 3.0;  // total queue depth across the cluster
  // Ticks the controller until `done` or the deadline; the synthetic
  // per-shard pressure tracks the CURRENT membership, exactly as a real
  // fixed offered load would redistribute over a resized fleet.
  const auto run_until = [&](double deadline, const auto& done) {
    for (;;) {
      per_shard_load =
          offered_load / static_cast<double>(controller.map()->size());
      controller.step(now_s());
      if (done()) return true;
      if (now_s() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };
  const auto settled = [&](std::size_t size) {
    return [&controller, size] {
      const auto stats = controller.stats();
      return controller.map()->size() == size &&
             controller.state() == gs::ctrl::CtrlState::observe &&
             stats.converged == stats.epochs_committed;
    };
  };

  // Pass 1: steady in-band load (1.0 per shard) — the controller must
  // sit on its hands.
  std::printf("-- pass 1: steady load, %zu shards --\n",
              controller.map()->size());
  run_until(now_s() + 3.0 * stretch, [] { return false; });
  {
    const auto stats = controller.stats();
    std::printf("steady: %llu ticks, %llu holds, %llu epochs committed\n",
                (unsigned long long)stats.ticks,
                (unsigned long long)stats.holds,
                (unsigned long long)stats.epochs_committed);
    timing_gate(stats.epochs_committed == 0,
                "steady in-band load must commit zero epochs");
  }

  // Pass 2: ramp up. 9.6 total = 3.2/shard at 3 (saturated), 2.4 at 4
  // (still saturated), 1.92 at 5 (back inside the band): the controller
  // must grow exactly twice and stop at max_shards.
  std::printf("\n-- pass 2: load ramp up (9.6 total), expect 3 -> 5 --\n");
  offered_load = 9.6;
  const bool grew = run_until(now_s() + 60.0 * stretch, settled(5));
  {
    const auto stats = controller.stats();
    std::printf("ramp up: %zu shards at epoch %llu, grows=%llu "
                "(last: %s)\n",
                controller.map()->size(),
                (unsigned long long)controller.map()->epoch(),
                (unsigned long long)stats.grows, stats.last_reason.c_str());
    timing_gate(grew, "controller must grow 3 -> 5 under sustained "
                      "saturation and converge");
    timing_gate(stats.converge_timeouts == 0,
                "ramp up saw convergence timeouts");
  }

  // Pass 3: ramp down. 0.9 total = 0.18/shard at 5 (idle), 0.225 at 4,
  // 0.3 at 3 (in band): shrink exactly twice, floor at min_shards.
  std::printf("\n-- pass 3: load ramp down (0.9 total), expect 5 -> 3 --\n");
  offered_load = 0.9;
  const bool shrank = run_until(now_s() + 60.0 * stretch, settled(3));
  {
    const auto stats = controller.stats();
    std::printf("ramp down: %zu shards at epoch %llu, shrinks=%llu "
                "(last: %s)\n",
                controller.map()->size(),
                (unsigned long long)controller.map()->epoch(),
                (unsigned long long)stats.shrinks, stats.last_reason.c_str());
    timing_gate(shrank, "controller must shrink 5 -> 3 under sustained "
                        "idling and converge");
    timing_gate(stats.converge_timeouts == 0,
                "ramp down saw convergence timeouts");
  }

  // Pass 4: steady again at the final membership — quiet means quiet.
  std::printf("\n-- pass 4: steady load at final membership --\n");
  offered_load = 3.0;
  const std::uint64_t epochs_before = controller.stats().epochs_committed;
  run_until(now_s() + 2.0 * stretch, [] { return false; });
  timing_gate(controller.stats().epochs_committed == epochs_before,
              "steady load after the cycle must commit zero epochs");

  stop.store(true, std::memory_order_release);
  for (auto& t : traffic) t.join();
  PassResult live;
  for (const auto& r : thread_results) live.merge(r);

  // Gate: zero wrong answers across the ENTIRE autonomous cycle. This is
  // the correctness gate — never relaxed.
  std::printf("\nlive traffic: exact=%llu degraded=%llu wrong=%llu "
              "failed=%llu\n",
              (unsigned long long)live.exact,
              (unsigned long long)live.degraded,
              (unsigned long long)live.wrong, (unsigned long long)live.failed);
  if (live.wrong != 0 || live.exact == 0) {
    std::printf("FAIL: the autonomous cycle must keep every answer right "
                "and keep answering\n");
    failed = true;
  }

  // Gate: epoch accounting. Expected trajectory 1 -> 5 (two grows, two
  // shrinks); the budget is the controller's own cap.
  const auto stats = controller.stats();
  std::printf("epochs committed=%llu (grows=%llu shrinks=%llu evicts=%llu), "
              "budget %d; converged=%llu timeouts=%llu\n",
              (unsigned long long)stats.epochs_committed,
              (unsigned long long)stats.grows,
              (unsigned long long)stats.shrinks,
              (unsigned long long)stats.evicts, kEpochBudget,
              (unsigned long long)stats.converged,
              (unsigned long long)stats.converge_timeouts);
  timing_gate(stats.epochs_committed <= static_cast<std::uint64_t>(kEpochBudget),
              "controller exceeded its own epoch budget");

  // Gate: per transition, the daemons' summed replacement plans must
  // equal the ring's minimal-movement diff exactly. Correctness — never
  // relaxed. (Retired daemons and idle standbys plan 0 blocks, so the
  // watcher-fed ledger sums only real ownership changes.)
  {
    std::lock_guard<std::mutex> lock(ledger_mu);
    for (const auto& [epoch, map] : committed) {
      if (epoch == 1) continue;
      const auto prev = committed.find(epoch - 1);
      if (prev == committed.end()) {
        std::printf("FAIL: epoch %llu committed without a predecessor\n",
                    (unsigned long long)epoch);
        failed = true;
        continue;
      }
      const std::size_t bound =
          gs::shard::moved_keys(gs::shard::Ring(*prev->second),
                                gs::shard::Ring(*map),
                                std::span<const std::string>(keys))
              .size();
      const std::uint64_t planned = warmed.count(epoch) ? warmed[epoch] : 0;
      std::printf("epoch %llu (%zu shards): warmed %llu blocks, ring "
                  "movement bound %zu\n",
                  (unsigned long long)epoch, map->size(),
                  (unsigned long long)planned, bound);
      if (planned != bound || bound == 0) {
        std::printf("FAIL: warming violates the ring's minimal-movement "
                    "bound\n");
        failed = true;
      }
    }
  }

  watchers.clear();  // stop adoption before the fleet tears down

  std::printf("\n%s\n", failed ? "RESULT: FAIL" : "RESULT: PASS");
  return failed ? 1 : 0;
}
