// extension_rpc_load — closed-loop load test of the gs::rpc serving
// layer over real loopback sockets: the out-of-process twin of
// extension_service_load. Many remote analysts hammer one gsserved-style
// endpoint through the full wire path (framing, CRC, request-id
// multiplexing, reconnect-and-retry) and every answer is checked against
// the in-process service bit for bit.
//
// Phases:
//   1. generate a real solver dataset (8 ranks through the workflow) and
//      precompute the answer-identity CRC of every query in the request
//      space via the in-process service — the ground truth;
//   2. sweep 1/8/64 concurrent TCP clients, each issuing its
//      deterministic request stream; every remote answer's identity CRC
//      must equal the precomputed one (zero wrong or torn responses);
//   3. chaos pass: random transport faults (torn writes) plus killed
//      connections at accept while 16 clients run — client retry loops
//      must absorb every fault with, again, zero wrong answers;
//   4. drain: after each pass the server shuts down cleanly with no
//      connection left active and every request accounted.
//
// Gates (exit nonzero on violation — a regression gate, not a demo):
//   * zero identity mismatches and zero exhausted-retry failures,
//   * p99 latency bounded by max(100 x p50, 1 s),
//   * chaos pass observed at least one injected fault (else it tested
//     nothing), and the server counted it,
//   * clean drain after every pass.
//
// Default scale finishes in seconds (CI smoke); pass a multiplier to
// scale requests per client, e.g. `extension_rpc_load 4`.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/format.h"
#include "common/stats.h"
#include "core/workflow.h"
#include "fault/fault.h"
#include "mpi/runtime.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "svc/service.h"

namespace {

constexpr const char* kDataset = "/tmp/gs_rpc_load.bp";
constexpr std::size_t kQuerySpace = 64;  ///< distinct queries in the mix

struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

/// Deterministic query q -> request body, shared by the ground-truth
/// pass and every client (same q, same bytes expected back).
gs::svc::Request make_query(std::size_t q, std::int64_t n_steps,
                            std::int64_t L) {
  Lcg rng{0xABCDEF12345678ull ^ (q * 2654435761ull)};
  const std::int64_t step = static_cast<std::int64_t>(rng.next() %
                                                      static_cast<std::uint64_t>(n_steps));
  gs::svc::Request request;
  switch (q % 4) {
    case 0:
      request.body = gs::svc::FieldStatsQ{"U", step};
      break;
    case 1:
      request.body = gs::svc::HistogramQ{"V", step, 32};
      break;
    case 2:
      request.body = gs::svc::Slice2DQ{
          "U", step, 2,
          static_cast<std::int64_t>(rng.next() %
                                    static_cast<std::uint64_t>(L))};
      break;
    default: {
      const std::int64_t half = L / 2;
      request.body = gs::svc::ReadBoxQ{
          "V", step,
          gs::Box3{{0, 0, static_cast<std::int64_t>(
                              rng.next() % static_cast<std::uint64_t>(half))},
                   {half, half, half}}};
      break;
    }
  }
  return request;
}

std::uint32_t identity_crc(const gs::svc::Response& response) {
  const auto bytes = gs::rpc::encode_answer_identity(response);
  return gs::crc32(std::span<const std::byte>(bytes.data(), bytes.size()));
}

struct PassResult {
  double elapsed = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t wrong = 0;   ///< identity CRC mismatch (torn/corrupt answer)
  std::uint64_t failed = 0;  ///< exhausted retries
  gs::Samples latencies;
};

/// One closed-loop pass of `n_clients` rpc::Clients against `endpoint`.
PassResult run_pass(const gs::rpc::Endpoint& endpoint, std::size_t n_clients,
                    std::size_t reqs_per_client,
                    const std::vector<std::uint32_t>& expected,
                    std::int64_t n_steps, std::int64_t L) {
  std::vector<PassResult> per(n_clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      gs::rpc::ClientConfig config;
      config.retries = 6;
      config.backoff_ms = 1.0;
      gs::rpc::Client client(endpoint, config);
      Lcg rng{0x9e3779b97f4a7c15ull ^ (c + 1)};
      for (std::size_t r = 0; r < reqs_per_client; ++r) {
        const std::size_t q = rng.next() % kQuerySpace;
        const auto a = std::chrono::steady_clock::now();
        try {
          const gs::svc::Response response =
              client.call(make_query(q, n_steps, L));
          const auto b = std::chrono::steady_clock::now();
          if (!response.status.ok() || identity_crc(response) != expected[q]) {
            ++per[c].wrong;
          } else {
            ++per[c].ok;
            per[c].latencies.add(
                std::chrono::duration<double>(b - a).count());
          }
        } catch (const gs::IoError&) {
          ++per[c].failed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  PassResult result;
  result.elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& p : per) {
    result.ok += p.ok;
    result.wrong += p.wrong;
    result.failed += p.failed;
    for (const double x : p.latencies.values()) result.latencies.add(x);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t scale = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::size_t reqs_per_client = 16 * (scale ? scale : 1);
  bool failed = false;

  std::printf("==============================================================\n");
  std::printf("Extension — gs::rpc remote-serving load over loopback TCP\n");
  std::printf("==============================================================\n\n");

  // Phase 1: real dataset + in-process ground truth.
  gs::Settings settings;
  settings.L = 32;
  settings.steps = 20;
  settings.plotgap = 4;
  settings.noise = 0.1;
  settings.output = kDataset;
  settings.ranks_per_node = 4;
  std::filesystem::remove_all(kDataset);
  gs::mpi::run(8, [&](gs::mpi::Comm& world) {
    gs::core::Workflow wf(settings, world);
    wf.run();
  });
  const std::int64_t n_steps = settings.steps / settings.plotgap;

  gs::svc::ServiceConfig svc_config;
  svc_config.threads = 4;
  gs::svc::Service service(kDataset, std::move(svc_config));
  std::vector<std::uint32_t> expected(kQuerySpace);
  for (std::size_t q = 0; q < kQuerySpace; ++q) {
    const auto response = service.call(make_query(q, n_steps, settings.L));
    if (!response.status.ok()) {
      std::printf("FAIL: ground-truth query %zu failed: %s\n", q,
                  response.status.message.c_str());
      return 1;
    }
    expected[q] = identity_crc(response);
  }
  std::printf("dataset: %s  (%zu-query ground truth precomputed)\n\n",
              kDataset, kQuerySpace);

  // Phase 2: clean client sweep.
  gs::TableFormatter table(
      {"clients", "req/s", "p50", "p95", "p99", "wrong", "failed"});
  for (const std::size_t n_clients : {1u, 8u, 64u}) {
    gs::rpc::ServerConfig config;
    config.max_connections = 128;
    gs::rpc::Server server(service, config);
    const auto r = run_pass(server.endpoint(), n_clients, reqs_per_client,
                            expected, n_steps, settings.L);
    server.shutdown();
    const auto stats = server.stats();
    table.row({std::to_string(n_clients),
               gs::format_fixed(r.elapsed > 0 ? r.ok / r.elapsed : 0.0, 1),
               gs::format_seconds(r.latencies.percentile(50)),
               gs::format_seconds(r.latencies.percentile(95)),
               gs::format_seconds(r.latencies.percentile(99)),
               std::to_string(r.wrong), std::to_string(r.failed)});
    if (r.wrong != 0 || r.failed != 0 ||
        r.ok != n_clients * reqs_per_client) {
      std::printf("FAIL: %zu-client pass lost answers (ok=%llu wrong=%llu "
                  "failed=%llu)\n",
                  n_clients, (unsigned long long)r.ok,
                  (unsigned long long)r.wrong, (unsigned long long)r.failed);
      failed = true;
    }
    const double p50 = r.latencies.percentile(50);
    const double p99 = r.latencies.percentile(99);
    if (p99 > std::max(100.0 * p50, 1.0)) {
      std::printf("FAIL: %zu-client p99 %.3fs exceeds max(100 x p50, 1s) "
                  "(p50 %.6fs)\n",
                  n_clients, p99, p50);
      failed = true;
    }
    if (stats.active != 0) {
      std::printf("FAIL: %llu connections still active after drain\n",
                  (unsigned long long)stats.active);
      failed = true;
    }
  }
  std::printf("%s\n", table.str().c_str());

  // Phase 3: chaos — torn writes on the shared wire path plus killed
  // connections at accept, absorbed by client retry loops.
  {
    gs::rpc::ServerConfig config;
    config.max_connections = 128;
    gs::rpc::Server server(service, config);
    gs::fault::Plan plan;
    plan.arm_random("rpc.write", 0.01, gs::fault::Kind::fail,
                    /*seed=*/42, /*horizon=*/1 << 16, /*budget=*/48);
    plan.kill_at("rpc.accept", 3);
    plan.kill_at("rpc.accept", 11);
    gs::fault::ScopedPlan scoped(plan);

    const auto r = run_pass(server.endpoint(), 16, reqs_per_client, expected,
                            n_steps, settings.L);
    server.shutdown();
    const auto stats = server.stats();
    const std::uint64_t observed = gs::fault::Injector::instance().injected();
    std::printf("chaos: %llu injected faults, server counters: io_errors "
                "%llu, killed %llu, crc %llu\n",
                (unsigned long long)observed,
                (unsigned long long)stats.io_errors,
                (unsigned long long)stats.killed_connections,
                (unsigned long long)stats.crc_errors);
    if (observed == 0) {
      std::printf("FAIL: chaos pass injected nothing — gate is vacuous\n");
      failed = true;
    }
    if (r.wrong != 0) {
      std::printf("FAIL: chaos pass produced %llu wrong/torn answers\n",
                  (unsigned long long)r.wrong);
      failed = true;
    }
    if (r.failed != 0 || r.ok != 16 * reqs_per_client) {
      std::printf("FAIL: retries did not absorb the faults (ok=%llu "
                  "failed=%llu)\n",
                  (unsigned long long)r.ok, (unsigned long long)r.failed);
      failed = true;
    }
    if (stats.active != 0) {
      std::printf("FAIL: chaos pass left connections active after drain\n");
      failed = true;
    }
  }

  service.shutdown();
  std::filesystem::remove_all(kDataset);
  std::printf("\n%s\n", failed ? "FAILED" : "OK");
  return failed ? 1 : 0;
}
