// Reproduces paper Figure 8: parallel-I/O weak scaling — wall-clock and
// aggregate bandwidth of writing one output step (2 x 1024^3 doubles per
// rank, 8 ranks per node, one BP5 subfile per node) on the modeled
// Lustre/Orion file system, up to 512 nodes.
//
// Also runs a small FUNCTIONAL sweep through the real BP-mini writer on
// local disk to demonstrate that the format layer itself adds negligible
// overhead (the paper's claim for the ADIOS2.jl bindings).
#include <cstdio>

#include "bp/writer.h"
#include "common/clock.h"
#include "common/format.h"
#include "grid/decomp.h"
#include "mpi/runtime.h"
#include "perf/io_scaling.h"

namespace {

void functional_binding_check() {
  std::printf("--- Functional check: BP-mini writer on local disk ---\n");
  const std::int64_t L = 64;
  const std::string path = "/tmp/gs_fig8_check.bp";
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const gs::Decomposition d = gs::Decomposition::cube(L, world.size());
    const gs::Box3 box = d.local_box(world.rank());
    std::vector<double> block(static_cast<std::size_t>(box.volume()), 0.5);

    gs::bp::Writer w(path, world, 2);
    gs::WallTimer timer;
    w.begin_step();
    w.put("U", {L, L, L}, box, block);
    w.put("V", {L, L, L}, box, block);
    const auto stats = w.end_step();
    w.close();
    if (world.rank() == 0) {
      const double total_mb =
          2.0 * static_cast<double>(L * L * L) * 8.0 / 1e6;
      std::printf("4 ranks wrote %.1f MB in %s (%s aggregate)\n", total_mb,
                  gs::format_seconds(timer.seconds()).c_str(),
                  gs::format_bandwidth_gbps(total_mb * 1e6 /
                                            timer.seconds())
                      .c_str());
      (void)stats;
    }
  });
  std::remove((path + "/md.idx").c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Figure 8 — Parallel I/O weak scaling (ADIOS2-style BP5, one\n");
  std::printf("subfile per node, Lustre/Orion model)\n");
  std::printf("==============================================================\n\n");

  gs::perf::IoScalingSimulator sim;
  std::printf("Per-node payload: %s (8 GCDs x 2 vars x 1024^3 doubles)\n\n",
              gs::format_bytes(sim.bytes_per_node()).c_str());

  gs::TableFormatter t({"nodes", "GPUs", "total data", "write time",
                        "aggregate BW", "% of 5.5 TB/s peak"});
  for (const auto& p : sim.sweep(512)) {
    t.row({std::to_string(p.nodes), std::to_string(p.ranks),
           gs::format_bytes(p.bytes_total),
           gs::format_seconds(p.seconds),
           gs::format_bandwidth_gbps(p.aggregate_bw),
           gs::format_fixed(100.0 * p.peak_fraction, 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Paper shape: write wall-clock stays fairly flat under weak\n");
  std::printf("scaling while aggregate bandwidth climbs to ~434 GB/s at 512\n");
  std::printf("nodes — 8%% of the file-system peak from 5%% of the machine.\n\n");

  functional_binding_check();
  return 0;
}
