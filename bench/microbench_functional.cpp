// Functional micro-benchmarks (google-benchmark) — performance regression
// guardrails for the library's own hot paths, as opposed to the paper-
// reproduction harnesses which report *modeled* device numbers. These
// measure real host throughput of: the stencil kernel body, halo
// pack/unpack, the L2 cache simulator, the reference solver, the Gorilla
// codec, and a BP write/read cycle.
#include <benchmark/benchmark.h>

#include <numeric>

#include "bp/compress.h"
#include "bp/reader.h"
#include "bp/writer.h"
#include "core/kernels.h"
#include "grid/halo.h"
#include "core/reference.h"
#include "gpu/cache_sim.h"
#include "gpu/device.h"
#include "mpi/runtime.h"

namespace {

constexpr std::int64_t kEdge = 48;

/// Host view matching the kernel template contract.
struct HostView {
  double* data;
  gs::Index3 extent;
  double load(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data[gs::linear_index({i, j, k}, extent)];
  }
  void store(std::int64_t i, std::int64_t j, std::int64_t k,
             double v) const {
    data[gs::linear_index({i, j, k}, extent)] = v;
  }
};

void BM_StencilKernelHost(benchmark::State& state) {
  const gs::Index3 ext{kEdge, kEdge, kEdge};
  const auto n = static_cast<std::size_t>(ext.volume());
  std::vector<double> u(n, 0.8), v(n, 0.1), ut(n), vt(n);
  const HostView uv{u.data(), ext}, vv{v.data(), ext};
  const HostView utv{ut.data(), ext}, vtv{vt.data(), ext};
  const gs::core::GsParams p;
  for (auto _ : state) {
    for (std::int64_t k = 1; k < ext.k - 1; ++k) {
      for (std::int64_t j = 1; j < ext.j - 1; ++j) {
        for (std::int64_t i = 1; i < ext.i - 1; ++i) {
          gs::core::grayscott_cell(uv, vv, utv, vtv, i, j, k, p, 0.0);
        }
      }
    }
    benchmark::DoNotOptimize(ut.data());
  }
  state.SetItemsProcessed(state.iterations() * (kEdge - 2) * (kEdge - 2) *
                          (kEdge - 2));
}
BENCHMARK(BM_StencilKernelHost);

void BM_NoiseGeneration(benchmark::State& state) {
  std::int64_t cell = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += gs::core::noise_at(42, 7, cell++);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NoiseGeneration);

void BM_ReferenceStep(benchmark::State& state) {
  const std::int64_t L = 32;
  gs::Field3 u({L, L, L}), v({L, L, L});
  gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
  gs::Field3 un({L, L, L}), vn({L, L, L});
  gs::core::GsParams p;
  p.noise = 0.1;
  std::int64_t step = 0;
  for (auto _ : state) {
    gs::core::reference_step(u, v, un, vn, p, 1, step++, L);
    std::swap(u, un);
    std::swap(v, vn);
  }
  state.SetItemsProcessed(state.iterations() * L * L * L);
}
BENCHMARK(BM_ReferenceStep);

void BM_CacheSimAccess(benchmark::State& state) {
  gs::gpu::CacheSim cache(1 << 20, 64, 16);
  std::vector<double> data(1 << 16);
  const auto base = reinterpret_cast<std::uintptr_t>(data.data());
  std::uintptr_t addr = 0;
  for (auto _ : state) {
    cache.read(base + (addr % (data.size() * 8)), 8);
    addr += 8 * 37;  // stride through sets
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccess);

void BM_HaloPackUnpack(benchmark::State& state) {
  const gs::Index3 ext{kEdge + 2, kEdge + 2, kEdge + 2};
  std::vector<double> field(static_cast<std::size_t>(ext.volume()));
  std::iota(field.begin(), field.end(), 0.0);
  const gs::Index3 interior{kEdge, kEdge, kEdge};
  std::vector<double> staging(
      static_cast<std::size_t>(kEdge) * kEdge);
  for (auto _ : state) {
    for (const gs::Face& f : gs::all_faces()) {
      gs::pack_box(field, ext, gs::send_plane(interior, f), staging);
      gs::unpack_box(field, ext, gs::recv_plane(interior, f), staging);
    }
    benchmark::DoNotOptimize(field.data());
  }
  state.SetBytesProcessed(state.iterations() * 6 * 2 *
                          static_cast<std::int64_t>(staging.size()) * 8);
}
BENCHMARK(BM_HaloPackUnpack);

void BM_GorillaCompress(benchmark::State& state) {
  // Developed-pattern field: the realistic (least compressible) input.
  const std::int64_t L = 32;
  gs::Field3 u({L, L, L}), v({L, L, L});
  gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
  gs::core::GsParams p;
  p.noise = 0.0;
  gs::core::reference_run(u, v, p, 1, 100, L);
  const auto data = u.interior_copy();
  for (auto _ : state) {
    auto packed = gs::bp::compress_doubles(data);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()) * 8);
}
BENCHMARK(BM_GorillaCompress);

void BM_GorillaDecompress(benchmark::State& state) {
  std::vector<double> data(32768);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1.0 + 1e-5 * static_cast<double>(i % 100);
  }
  const auto packed = gs::bp::compress_doubles(data);
  for (auto _ : state) {
    auto out = gs::bp::decompress_doubles(packed);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()) * 8);
}
BENCHMARK(BM_GorillaDecompress);

void BM_BpWriteReadCycle(benchmark::State& state) {
  const std::int64_t L = 24;
  const std::string path = "/tmp/gs_microbench.bp";
  std::vector<double> block(static_cast<std::size_t>(L * L * L), 1.5);
  for (auto _ : state) {
    gs::mpi::run(1, [&](gs::mpi::Comm& world) {
      gs::bp::Writer w(path, world, 1);
      w.begin_step();
      w.put("U", {L, L, L}, gs::Box3{{0, 0, 0}, {L, L, L}}, block);
      w.end_step();
      w.close();
    });
    gs::bp::Reader r(path);
    auto out = r.read_full("U", 0);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()) * 8 * 2);
}
BENCHMARK(BM_BpWriteReadCycle);

}  // namespace

BENCHMARK_MAIN();
