// Reproduces paper Listing 1: the provenance record of the data generated
// by the Gray-Scott simulation — physics attributes, the U/V array series
// with global Min/Max, the step scalar series, and the visualization
// schema attributes — by running the real workflow and dumping the
// resulting BP dataset bpls-style.
#include <cstdio>
#include <filesystem>

#include "bp/reader.h"
#include "core/workflow.h"
#include "mpi/runtime.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Listing 1 — provenance of the Gray-Scott dataset\n");
  std::printf("==============================================================\n\n");

  gs::Settings settings;
  settings.L = 32;
  settings.steps = 20;
  settings.plotgap = 4;  // 5 output steps
  settings.noise = 0.1;
  settings.output = "/tmp/gs_listing1.bp";
  settings.ranks_per_node = 4;

  gs::mpi::run(8, [&](gs::mpi::Comm& world) {
    gs::core::Workflow wf(settings, world);
    wf.run();
  });

  std::printf("Dataset %s:\n\n%s\n", settings.output.c_str(),
              gs::bp::dump(settings.output).c_str());
  std::printf("Attribute visualization schemas: FIDES, VTX\n\n");
  std::printf("Paper reference (1024^3, 1000 steps, plotgap 20):\n");
  std::printf("  double  Du     attr = 0.2\n");
  std::printf("  double  Dv     attr = 0.1\n");
  std::printf("  double  F      attr = 0.02\n");
  std::printf("  double  U      1000*{1024, 1024, 1024}  "
              "Min/Max -0.120795 / 1.46671\n");
  std::printf("  double  V      1000*{1024, 1024, 1024}  "
              "Min/Max 0 / 0.959875\n");
  std::printf("  double  dt     attr = 1\n");
  std::printf("  double  k      attr = 0.048\n");
  std::printf("  double  noise  attr = 0.1\n");
  std::printf("  int32_t step   50*scalar = 20 / 1000\n");

  std::filesystem::remove_all(settings.output);
  return 0;
}
