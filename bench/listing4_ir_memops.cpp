// Reproduces paper Listing 4: the memory operations of the Gray-Scott
// kernel at the IR level. The paper inspects the Julia-generated LLVM-IR
// and finds exactly the minimal set — 14 unique loads + 2 stores per cell
// for the fused 2-variable kernel (16 load instructions before the
// compiler folds the reused center values). We trace our kernel body and
// emit the same accounting plus an LLVM-IR-like listing.
#include <cstdio>

#include <vector>

#include "core/kernels.h"
#include "ir/memtrace.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Listing 4 — kernel global-memory operations at the IR level\n");
  std::printf("==============================================================\n\n");

  const gs::Index3 ext{4, 4, 4};
  std::vector<double> u(64, 0.8), v(64, 0.1), ut(64), vt(64);
  gs::ir::MemTrace trace;
  const gs::Index3 center{2, 2, 2};
  const gs::ir::TracedView3 uv("u", u.data(), ext, &trace);
  const gs::ir::TracedView3 vv("v", v.data(), ext, &trace);
  const gs::ir::TracedView3 utv("u_temp", ut.data(), ext, &trace);
  const gs::ir::TracedView3 vtv("v_temp", vt.data(), ext, &trace);
  gs::core::grayscott_cell(uv, vv, utv, vtv, center.i, center.j, center.k,
                           gs::core::GsParams{}, 0.05);

  std::printf("2-variable application kernel, one cell:\n");
  std::printf("  load instructions executed : %zu (paper: 16)\n",
              trace.total_loads());
  std::printf("  unique memory loads        : %zu (paper Listing 4: 14)\n",
              trace.unique_loads());
  std::printf("  stores                     : %zu (paper Listing 4: 2)\n\n",
              trace.unique_stores());

  std::printf("LLVM-IR-like listing of the unique operations:\n%s\n",
              trace.llvm_like_listing(center).c_str());

  gs::ir::MemTrace trace1;
  const gs::ir::TracedView3 u1("u", u.data(), ext, &trace1);
  const gs::ir::TracedView3 ut1("u_temp", ut.data(), ext, &trace1);
  gs::core::diffusion_cell(u1, ut1, center.i, center.j, center.k, 0.2, 1.0);
  std::printf("1-variable diffusion kernel: %zu unique loads, %zu store(s)\n",
              trace1.unique_loads(), trace1.unique_stores());
  std::printf("\nConclusion (matches paper Section 5.1): the kernel body\n");
  std::printf("contains only the algorithmically required memory ops — no\n");
  std::printf("hidden abstraction traffic.\n");
  return 0;
}
