// Reproduces paper Figure 5: a rocprof-style trace of the Gray-Scott
// simulation showing kernel activity on the GPU interleaved with memory
// transfers to the CPU for MPI communication staging.
//
// Runs a short functional simulation with the profiler attached, prints
// an ASCII rendering of the timeline, and writes a Chrome-trace JSON
// (open in chrome://tracing or ui.perfetto.dev for the Figure 5 view).
#include <cstdio>
#include <fstream>

#include "common/format.h"
#include "core/sim.h"
#include "mpi/runtime.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Figure 5 — rocprof-mini trace of the Gray-Scott workflow\n");
  std::printf("==============================================================\n\n");

  gs::Settings settings;
  settings.L = 48;
  settings.steps = 4;
  settings.noise = 0.1;
  settings.backend = gs::KernelBackend::julia_amdgpu;

  gs::prof::Profiler profiler;
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    gs::core::Simulation sim(settings, world, &profiler);
    sim.device().set_cache_sim_enabled(true);  // real TCC counters
    // First step absorbs the JIT warm-up (analyzed in Figure 7); the
    // trace below shows the optimized steady-state loop, like Figure 5.
    sim.step();
    profiler.clear();
    sim.run_steps(settings.steps);
  });

  std::printf("Simulated-device timeline (4 warm steps, 1 rank):\n");
  std::printf("  # = busy. Lanes: kernel / JIT / H2D / D2H copies.\n\n");
  std::printf("%s\n", profiler.ascii_timeline(90).c_str());

  std::printf("Per-kernel counters:\n%s\n", profiler.report().c_str());

  std::printf("Span summary:\n");
  for (const auto kind :
       {gs::prof::SpanKind::kernel, gs::prof::SpanKind::jit_compile,
        gs::prof::SpanKind::memcpy_d2h, gs::prof::SpanKind::memcpy_h2d}) {
    std::printf("  %-12s %s\n", gs::prof::to_string(kind),
                gs::format_seconds(profiler.total_time(kind)).c_str());
  }

  const std::string trace_path = "fig5_trace.json";
  std::ofstream out(trace_path);
  out << profiler.chrome_trace_json();
  std::printf("\nChrome trace written to ./%s (%zu spans) — the paper's\n",
              trace_path.c_str(), profiler.spans().size());
  std::printf("Figure 5 view: load it in chrome://tracing.\n");
  return 0;
}
