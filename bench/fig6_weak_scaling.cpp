// Reproduces paper Figure 6: weak scaling with per-MPI-process wall-clock
// variability, 1,024^3 cells per GPU, factor-8 job growth up to 4,096
// GPUs (512 nodes) — plus the Section 5.2 32,768-GPU attempt, which the
// paper reports failing in the MPI layer during ghost exchange.
#include <cstdio>

#include "common/format.h"
#include "perf/weak_scaling.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Figure 6 — Weak scaling, wall-clock per MPI process\n");
  std::printf("(1024^3 cells/GPU, 20 steps, Julia AMDGPU.jl backend)\n");
  std::printf("==============================================================\n\n");

  gs::perf::WeakScalingSimulator sim;

  gs::TableFormatter t({"GPUs", "nodes", "min (s)", "mean (s)", "max (s)",
                        "spread %"});
  for (const std::int64_t p : {1LL, 8LL, 64LL, 512LL, 4096LL}) {
    const auto samples = sim.simulate(p);
    const auto times = gs::perf::WeakScalingSimulator::wall_times(samples);
    t.row({std::to_string(p), std::to_string((p + 7) / 8),
           gs::format_fixed(times.min(), 3),
           gs::format_fixed(times.mean(), 3),
           gs::format_fixed(times.max(), 3),
           gs::format_fixed(times.spread_percent(), 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Paper shape: 2-3%% variability up to 512 processes, 12-15%%\n");
  std::printf("at 4,096; the slowest process dictates the job time.\n\n");

  std::printf("Per-step breakdown at 4,096 ranks:\n");
  std::printf("  kernel        %s\n",
              gs::format_seconds(sim.base_kernel_time()).c_str());
  std::printf("  host staging  %s\n",
              gs::format_seconds(sim.base_staging_time_per_step()).c_str());
  std::printf("  MPI halo      %s\n",
              gs::format_seconds(sim.base_halo_time_per_step(4096)).c_str());

  std::printf("\n--- Section 5.2: the factor-8 step to 32,768 GPUs ---\n");
  for (const std::int64_t p : {4096LL, 32768LL}) {
    const auto outcome = sim.run(p);
    if (outcome.completed) {
      const auto times =
          gs::perf::WeakScalingSimulator::wall_times(outcome.samples);
      std::printf("%6lld GPUs: completed, mean %s (P(fail) = %.3f)\n",
                  static_cast<long long>(p),
                  gs::format_seconds(times.mean()).c_str(),
                  sim.failure_probability(p));
    } else {
      std::printf("%6lld GPUs: FAILED — %s (P(fail) = %.3f)\n",
                  static_cast<long long>(p), outcome.failure.c_str(),
                  sim.failure_probability(p));
      // The paper notes all 32,768 GPUs still showed initial kernels at
      // the expected ~312 GB/s effective bandwidth before the failure.
      const auto initial = sim.simulate(64);  // any sample is representative
      double bw = 0.0;
      for (const auto& s : initial) bw += s.warm_bandwidth;
      bw /= static_cast<double>(initial.size());
      std::printf("        initial kernels still ran at ~%.0f GB/s "
                  "effective (paper: ~312)\n", bw / 1e9);
    }
  }
  return 0;
}
