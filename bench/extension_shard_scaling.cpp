// extension_shard_scaling — scaling and correctness gate of the
// gs::shard scatter-gather tier: the cluster twin of extension_rpc_load.
// A real solver dataset is served by 1..8 gsserved-style daemons behind
// a router, and EVERY routed answer is checked bit-for-bit against a
// single daemon scanning the whole dataset — the "byte-identical sharded
// answers" claim as an executable gate, not a demo.
//
// Phases:
//   1. generate a real dataset (8 ranks through the workflow) and
//      precompute the answer-identity CRC of every query in the request
//      space via one in-process service — the ground truth;
//   2. sweep shard counts {1, 2, 3, 5, 8}: in-process daemons on unix
//      sockets + a Router fronted by an rpc::Server, a remote client
//      issues the full query space through the whole wire path; every
//      identity CRC must equal the single-daemon one at every count;
//   3. chaos pass (5 shards): random torn writes on the shared wire
//      path (client->router and router->shard alike) while one shard's
//      daemon is kill'd mid-run — with failover on, every answer must be
//      retried-correct or EXPLICITLY degraded; a wrong answer without
//      the degraded flag fails the gate;
//   4. recovery: the killed daemon restarts on its old endpoint, the
//      router's probe loop must mark it live again, and a final sweep
//      must be 100% exact.
//
// Gates (exit nonzero on violation):
//   * zero identity mismatches at every shard count,
//   * consistent-hash reshuffle 4 -> 5 shards moves < 40% of keys (and
//     every moved key moves TO the new shard),
//   * chaos observed >= 1 injected fault and zero silent-wrong answers,
//   * the killed shard is re-marked live and the final sweep is exact.
//
// Default scale finishes in seconds (CI smoke); pass a multiplier to
// scale the per-pass request count, e.g. `extension_shard_scaling 4`.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/format.h"
#include "common/stats.h"
#include "core/workflow.h"
#include "fault/fault.h"
#include "mpi/runtime.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "shard/map.h"
#include "shard/router.h"
#include "svc/service.h"

namespace {

constexpr const char* kDataset = "/tmp/gs_shard_scaling.bp";
constexpr std::size_t kQuerySpace = 48;  ///< distinct queries in the mix

struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

/// Deterministic query q -> request body, shared by the ground-truth
/// pass and every sweep (same q, same bytes expected back).
gs::svc::Request make_query(std::size_t q, std::int64_t n_steps,
                            std::int64_t L) {
  Lcg rng{0x5112ACEB00512ull ^ (q * 2654435761ull)};
  const std::int64_t step = static_cast<std::int64_t>(
      rng.next() % static_cast<std::uint64_t>(n_steps));
  gs::svc::Request request;
  switch (q % 5) {
    case 0:
      request.body = gs::svc::ListVariablesQ{};
      break;
    case 1:
      request.body = gs::svc::FieldStatsQ{q % 2 ? "U" : "V", step};
      break;
    case 2:
      request.body = gs::svc::HistogramQ{q % 2 ? "V" : "U", step, 32};
      break;
    case 3:
      request.body = gs::svc::Slice2DQ{
          "U", step, 2,
          static_cast<std::int64_t>(rng.next() %
                                    static_cast<std::uint64_t>(L))};
      break;
    default: {
      const std::int64_t half = L / 2;
      request.body = gs::svc::ReadBoxQ{
          "V", step,
          gs::Box3{{0, 0,
                    static_cast<std::int64_t>(
                        rng.next() % static_cast<std::uint64_t>(half))},
                   {half, half, half}}};
      break;
    }
  }
  return request;
}

std::uint32_t identity_crc(const gs::svc::Response& response) {
  const auto bytes = gs::rpc::encode_answer_identity(response);
  return gs::crc32(std::span<const std::byte>(bytes.data(), bytes.size()));
}

/// An in-process cluster: N daemons (Service + rpc::Server on unix
/// sockets) behind a Router that is itself served by an rpc::Server, so
/// clients exercise the identical wire path a real gsrouter deployment
/// does.
struct Cluster {
  Cluster(std::size_t n, const std::string& tag,
          gs::shard::RouterConfig router_config = {}) {
    std::vector<gs::shard::ShardInfo> infos;
    for (std::size_t i = 0; i < n; ++i) {
      infos.push_back(gs::shard::ShardInfo{
          "s" + std::to_string(i),
          "unix:/tmp/gs_shard_scaling_" + tag + "_" + std::to_string(i) +
              ".sock"});
    }
    map = std::make_shared<const gs::shard::ShardMap>(1, 64,
                                                      std::move(infos));
    for (std::size_t i = 0; i < n; ++i) start_shard(i);
    router_config.probe_interval_ms = 50;
    router = std::make_unique<gs::shard::Router>(map, router_config);
    gs::rpc::ServerConfig front_config;
    front_config.max_connections = 64;
    front = std::make_unique<gs::rpc::Server>(*router, front_config);
  }

  ~Cluster() {
    if (front) front->shutdown();
    if (router) router->shutdown();
    for (std::size_t i = 0; i < servers.size(); ++i) kill_shard(i);
  }

  void start_shard(std::size_t i) {
    gs::svc::ServiceConfig config;
    config.threads = 2;
    config.shard_map = map;
    auto service = std::make_unique<gs::svc::Service>(kDataset,
                                                      std::move(config));
    gs::rpc::ServerConfig server_config;
    server_config.listen = map->shards()[i].endpoint;
    auto server = std::make_unique<gs::rpc::Server>(*service, server_config);
    if (services.size() <= i) {
      services.resize(i + 1);
      servers.resize(i + 1);
    }
    services[i] = std::move(service);
    servers[i] = std::move(server);
  }

  void kill_shard(std::size_t i) {
    if (servers[i]) servers[i]->shutdown();
    if (services[i]) services[i]->shutdown();
    servers[i].reset();
    services[i].reset();
  }

  std::shared_ptr<const gs::shard::ShardMap> map;
  std::vector<std::unique_ptr<gs::svc::Service>> services;
  std::vector<std::unique_ptr<gs::rpc::Server>> servers;
  std::unique_ptr<gs::shard::Router> router;
  std::unique_ptr<gs::rpc::Server> front;
};

struct PassResult {
  std::uint64_t exact = 0;     ///< identity CRC matched the ground truth
  std::uint64_t degraded = 0;  ///< explicitly flagged partial answers
  std::uint64_t wrong = 0;     ///< mismatched WITHOUT the degraded flag
  std::uint64_t failed = 0;    ///< exhausted transport retries
  gs::Samples latencies;
};

/// Issues `rounds` full sweeps of the query space through a fresh
/// rpc::Client and classifies every answer.
PassResult run_pass(const gs::rpc::Endpoint& endpoint, std::size_t rounds,
                    const std::vector<std::uint32_t>& expected,
                    std::int64_t n_steps, std::int64_t L) {
  PassResult result;
  gs::rpc::ClientConfig config;
  config.retries = 6;
  config.backoff_ms = 1.0;
  gs::rpc::Client client(endpoint, config);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t q = 0; q < kQuerySpace; ++q) {
      const auto a = std::chrono::steady_clock::now();
      try {
        const gs::svc::Response response =
            client.call(make_query(q, n_steps, L));
        const auto b = std::chrono::steady_clock::now();
        if (response.status.ok() && identity_crc(response) == expected[q]) {
          ++result.exact;
          result.latencies.add(std::chrono::duration<double>(b - a).count());
        } else if (response.degraded || !response.status.ok()) {
          ++result.degraded;  // explicitly flagged — never silent
        } else {
          ++result.wrong;
          std::printf("WRONG: query %zu answered ok+undegraded with "
                      "mismatched identity\n",
                      q);
        }
      } catch (const gs::IoError&) {
        ++result.failed;
      }
    }
  }
  return result;
}

/// The consistent-hash property the tier's elasticity rests on: growing
/// 4 -> 5 shards must move only the new shard's arcs, not reshuffle the
/// cluster.
bool check_reshuffle() {
  const auto mk = [](std::size_t n) {
    std::vector<gs::shard::ShardInfo> infos;
    for (std::size_t i = 0; i < n; ++i) {
      infos.push_back(
          gs::shard::ShardInfo{"s" + std::to_string(i), "unused"});
    }
    return gs::shard::ShardMap(1, 64, std::move(infos));
  };
  const gs::shard::ShardMap four = mk(4);
  const gs::shard::ShardMap five = mk(5);
  const gs::shard::Ring before(four);
  const gs::shard::Ring after(five);
  int moved = 0;
  int stolen_by_new = 0;
  const int keys = 1024;
  for (int i = 0; i < keys; ++i) {
    const std::string key = gs::shard::Ring::block_key("U", i % 8, i);
    if (before.owner(key) != after.owner(key)) {
      ++moved;
      if (after.owner(key) == "s4") ++stolen_by_new;
    }
  }
  std::printf("reshuffle 4 -> 5 shards: %d/%d keys moved (%.1f%%), "
              "%d to the new shard\n",
              moved, keys, 100.0 * moved / keys, stolen_by_new);
  if (moved == 0 || moved > keys * 2 / 5) {
    std::printf("FAIL: reshuffle outside (0, 40%%] — not consistent "
                "hashing\n");
    return false;
  }
  if (stolen_by_new != moved) {
    std::printf("FAIL: %d keys moved between OLD shards\n",
                moved - stolen_by_new);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t scale = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::size_t rounds = 2 * (scale ? scale : 1);
  bool failed = false;

  std::printf("==============================================================\n");
  std::printf("Extension — gs::shard sharded-cluster scaling over unix "
              "sockets\n");
  std::printf("==============================================================\n\n");

  failed = !check_reshuffle() || failed;
  std::printf("\n");

  // Phase 1: real dataset + single-daemon ground truth.
  gs::Settings settings;
  settings.L = 32;
  settings.steps = 20;
  settings.plotgap = 4;
  settings.noise = 0.1;
  settings.output = kDataset;
  settings.ranks_per_node = 4;
  std::filesystem::remove_all(kDataset);
  gs::mpi::run(8, [&](gs::mpi::Comm& world) {
    gs::core::Workflow wf(settings, world);
    wf.run();
  });
  const std::int64_t n_steps = settings.steps / settings.plotgap;

  std::vector<std::uint32_t> expected(kQuerySpace);
  {
    gs::svc::Service single(kDataset, gs::svc::ServiceConfig{});
    for (std::size_t q = 0; q < kQuerySpace; ++q) {
      const auto response = single.call(make_query(q, n_steps, settings.L));
      if (!response.status.ok()) {
        std::printf("FAIL: ground-truth query %zu failed: %s\n", q,
                    response.status.message.c_str());
        return 1;
      }
      expected[q] = identity_crc(response);
    }
  }
  std::printf("dataset: %s  (%zu-query ground truth precomputed)\n\n",
              kDataset, kQuerySpace);

  // Phase 2: shard-count sweep — every answer must be exact.
  gs::TableFormatter table(
      {"shards", "req/s", "p50", "p95", "p99", "degraded", "wrong"});
  for (const std::size_t n_shards : {1u, 2u, 3u, 5u, 8u}) {
    Cluster cluster(n_shards, "n" + std::to_string(n_shards));
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = run_pass(cluster.front->endpoint(), rounds, expected,
                            n_steps, settings.L);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    table.row({std::to_string(n_shards),
               gs::format_fixed(elapsed > 0 ? r.exact / elapsed : 0.0, 1),
               gs::format_seconds(r.latencies.percentile(50)),
               gs::format_seconds(r.latencies.percentile(95)),
               gs::format_seconds(r.latencies.percentile(99)),
               std::to_string(r.degraded), std::to_string(r.wrong)});
    if (r.wrong != 0 || r.degraded != 0 || r.failed != 0 ||
        r.exact != rounds * kQuerySpace) {
      std::printf("FAIL: %zu-shard sweep not byte-identical (exact=%llu "
                  "degraded=%llu wrong=%llu failed=%llu)\n",
                  n_shards, (unsigned long long)r.exact,
                  (unsigned long long)r.degraded, (unsigned long long)r.wrong,
                  (unsigned long long)r.failed);
      failed = true;
    }
  }
  std::printf("%s\n", table.str().c_str());

  // Phase 3 + 4: chaos on a 5-shard cluster — torn writes everywhere and
  // one daemon killed mid-run, then restarted.
  {
    gs::shard::RouterConfig router_config;
    router_config.attempts = 3;
    Cluster cluster(5, "chaos", router_config);

    gs::fault::Plan plan;
    plan.arm_random("rpc.write", 0.005, gs::fault::Kind::fail,
                    /*seed=*/7, /*horizon=*/1 << 16, /*budget=*/32);
    gs::fault::ScopedPlan scoped(plan);

    std::thread killer([&cluster] {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      cluster.kill_shard(2);
    });
    const auto r = run_pass(cluster.front->endpoint(),
                            std::max<std::size_t>(rounds, 2) * 2, expected,
                            n_steps, settings.L);
    killer.join();
    const std::uint64_t observed = gs::fault::Injector::instance().injected();
    std::printf("chaos: %llu injected faults; exact=%llu degraded=%llu "
                "wrong=%llu failed=%llu, failovers=%llu\n",
                (unsigned long long)observed, (unsigned long long)r.exact,
                (unsigned long long)r.degraded, (unsigned long long)r.wrong,
                (unsigned long long)r.failed,
                (unsigned long long)cluster.router->stats().failovers);
    if (observed == 0) {
      std::printf("FAIL: chaos pass injected nothing — gate is vacuous\n");
      failed = true;
    }
    if (r.wrong != 0) {
      std::printf("FAIL: chaos produced %llu SILENT wrong answers\n",
                  (unsigned long long)r.wrong);
      failed = true;
    }
    if (r.exact == 0) {
      std::printf("FAIL: chaos pass never answered exactly\n");
      failed = true;
    }

    // Recovery: restart the killed daemon on its old endpoint; the probe
    // loop must mark it live and the final sweep must be 100%% exact.
    cluster.start_shard(2);
    bool live = false;
    for (int wait = 0; wait < 100; ++wait) {
      if (cluster.router->health().alive("s2")) {
        live = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!live) {
      std::printf("FAIL: restarted shard s2 never re-marked live\n");
      failed = true;
    }
    const auto after = run_pass(cluster.front->endpoint(), 1, expected,
                                n_steps, settings.L);
    std::printf("recovery: s2 live again, sweep exact=%llu degraded=%llu "
                "wrong=%llu\n",
                (unsigned long long)after.exact,
                (unsigned long long)after.degraded,
                (unsigned long long)after.wrong);
    if (after.exact != kQuerySpace) {
      std::printf("FAIL: post-recovery sweep not fully exact\n");
      failed = true;
    }
  }

  std::filesystem::remove_all(kDataset);
  std::printf("\n%s\n", failed ? "FAILED" : "OK");
  return failed ? 1 : 0;
}
