// Extension: campaign scheduling at the resource-manager layer — the
// paper's end-to-end workflows meet Slurm before they meet a GPU, and the
// queueing policy decides how much of the machine the campaigns actually
// get. This harness replays a mixed-width population of simulate ->
// BP-write -> analysis pipeline campaigns (gs::sched::pipeline_campaign)
// through the three policies (FIFO, conservative backfill, fair-share)
// and reports makespan, node utilization, and queue-wait percentiles as
// the user population grows from 1 to 64.
//
// A second section injects node failures and shows the requeue/retry
// machinery absorbing them within the retry budget.
//
// The harness exits nonzero if backfill ever loses to FIFO on
// utilization — that inversion would mean the reservation profile is
// delaying jobs it must not delay.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/format.h"
#include "sched/campaign.h"
#include "sched/scheduler.h"

namespace {

using gs::sched::Campaign;
using gs::sched::Policy;
using gs::sched::SchedStats;
using gs::sched::Scheduler;
using gs::sched::SchedulerConfig;

constexpr std::int64_t kClusterNodes = 64;

/// Mixed-width population: user u's campaign width cycles through the
/// paper's scaling ladder, so narrow notebooks queue behind wide
/// production runs exactly the way backfill is meant to exploit.
std::int64_t campaign_width(int user) {
  static const std::int64_t widths[] = {1, 2, 4, 48, 8, 1, 16, 32};
  return widths[user % 8];
}

SchedStats run_population(Policy policy, int users,
                          const gs::sched::FaultConfig& faults = {}) {
  SchedulerConfig cfg;
  cfg.policy = policy;
  cfg.cluster.nodes = kClusterNodes;
  cfg.faults = faults;
  cfg.seed = 42;
  Scheduler sched(cfg);

  for (int u = 0; u < users; ++u) {
    const std::int64_t nodes = campaign_width(u);
    const Campaign c = gs::sched::pipeline_campaign(
        "c" + std::to_string(u), "user" + std::to_string(u), nodes,
        /*steps=*/20000 + 10000 * (u % 3), /*output_steps=*/10);
    // Near-simultaneous arrivals (one per simulated second): the queue
    // builds a real backlog, so the ordering policies actually diverge.
    gs::sched::submit_campaign(sched, c, 1.0 * u);
  }
  sched.run();
  return sched.stats();
}

void print_row(gs::TableFormatter& t, int users, Policy policy,
               const SchedStats& st) {
  t.row({std::to_string(users), gs::sched::to_string(policy),
         gs::format_seconds(st.makespan),
         gs::format_fixed(100.0 * st.utilization, 1) + "%",
         gs::format_seconds(st.queue_waits.percentile(50)),
         gs::format_seconds(st.queue_waits.percentile(95)),
         std::to_string(st.completed)});
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Extension — campaign scheduler: policy vs. user population\n");
  std::printf("(%lld-node cluster, mixed-width sim->write->analysis\n",
              (long long)kClusterNodes);
  std::printf("pipelines, deterministic seed)\n");
  std::printf("==============================================================\n\n");

  bool backfill_beats_fifo = true;
  gs::TableFormatter table({"Users", "Policy", "Makespan", "Util",
                            "Wait p50", "Wait p95", "Done"});
  for (int users : {1, 4, 16, 64}) {
    double fifo_util = 0.0;
    for (Policy policy :
         {Policy::fifo, Policy::backfill, Policy::fair_share}) {
      const SchedStats st = run_population(policy, users);
      print_row(table, users, policy, st);
      if (policy == Policy::fifo) fifo_util = st.utilization;
      if (policy == Policy::backfill &&
          st.utilization + 1e-9 < fifo_util) {
        backfill_beats_fifo = false;
      }
    }
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Backfill slides narrow analysis/cleanup jobs into the\n");
  std::printf("holes FIFO leaves in front of wide reservations; fair-share\n");
  std::printf("trades a little of that packing for per-user fairness.\n\n");

  std::printf("==============================================================\n");
  std::printf("Fault injection — node failures vs. the requeue budget\n");
  std::printf("==============================================================\n\n");

  gs::TableFormatter faults_table({"FailProb", "Budget", "Requeues",
                                   "Done", "Failed", "Makespan", "Util"});
  for (double prob : {0.0, 0.25, 0.75}) {
    gs::sched::FaultConfig fc;
    fc.node_fail_prob = prob;
    fc.max_failures = 12;
    fc.repair_time = 120.0;
    const SchedStats st = run_population(Policy::backfill, 16, fc);
    faults_table.row({gs::format_fixed(prob, 2), "12",
                      std::to_string(st.requeues),
                      std::to_string(st.completed),
                      std::to_string(st.failed),
                      gs::format_seconds(st.makespan),
                      gs::format_fixed(100.0 * st.utilization, 1) + "%"});
  }
  std::printf("%s\n", faults_table.str().c_str());
  std::printf("Failed attempts return to the queue and re-run on repaired\n");
  std::printf("nodes; the campaign completes as long as each job stays\n");
  std::printf("within its retry budget.\n\n");

  if (!backfill_beats_fifo) {
    std::fprintf(stderr,
                 "FAILED: backfill utilization fell below FIFO — the "
                 "reservation profile is delaying jobs it must not delay\n");
    return 1;
  }
  std::printf("OK: backfill utilization >= FIFO at every population size\n");
  return 0;
}
