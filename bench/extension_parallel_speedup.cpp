// extension_parallel_speedup — self-gating sweep of the gs::par engine.
//
// Runs the end-to-end host workload (host-reference Gray-Scott solver +
// analysis reductions + checksum) at 1, 2, 4, and hardware_concurrency
// lanes and enforces the two gs::par contracts:
//
//   1. DETERMINISM (always fatal): every observable — field checksum,
//      analysis mean/stddev bits, histogram mass — must be bitwise
//      identical to the 1-lane run for every pool size.
//   2. SPEEDUP (gated): with 4 lanes the workload must run >= 2.0x faster
//      than 1 lane (raised from 1.8x once the cache-blocked SIMD kernel
//      removed the single-lane memory stalls that flattered the ratio).
//      Enforced only when the machine actually has >= 4 hardware threads
//      AND GS_SPEEDUP_NONFATAL is unset — shared CI runners and small
//      containers log the number instead of failing.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "analysis/analysis.h"
#include "common/clock.h"
#include "core/sim.h"
#include "mpi/runtime.h"
#include "par/par.h"

namespace {

constexpr std::int64_t kL = 96;
constexpr std::int64_t kSteps = 6;
constexpr int kReps = 3;

struct Observables {
  std::uint32_t u_crc = 0;
  std::uint64_t mean_bits = 0;
  std::uint64_t stddev_bits = 0;
  std::size_t histogram_total = 0;

  bool operator==(const Observables&) const = default;
};

struct SweepPoint {
  std::size_t lanes = 1;
  double best_seconds = 0.0;
  Observables obs;
};

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

SweepPoint run_with_lanes(std::size_t lanes) {
  gs::par::set_global_lanes(lanes);
  SweepPoint point;
  point.lanes = lanes;
  point.best_seconds = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    gs::mpi::run(1, [&](gs::mpi::Comm& world) {
      gs::Settings s;
      s.L = kL;
      s.steps = kSteps;
      s.backend = gs::KernelBackend::host_reference;
      s.noise = 0.1;
      s.seed = 7;
      gs::core::Simulation sim(s, world);

      const gs::WallTimer timer;
      sim.run_steps(kSteps);
      const auto u = sim.u_host().interior_copy();
      const auto stats = gs::analysis::compute_stats(u);
      const auto hist = gs::analysis::field_histogram(u, 32);
      const std::uint32_t crc =
          gs::par::crc32(std::as_bytes(std::span<const double>(u)));
      point.best_seconds = std::min(point.best_seconds, timer.seconds());

      point.obs.u_crc = crc;
      point.obs.mean_bits = bits_of(stats.mean);
      point.obs.stddev_bits = bits_of(stats.stddev);
      point.obs.histogram_total = hist.total();
    });
  }
  gs::par::set_global_lanes(1);
  return point;
}

}  // namespace

int main() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::printf("gs::par speedup sweep: L=%lld steps=%lld reps=%d "
              "(hardware threads: %zu)\n",
              static_cast<long long>(kL), static_cast<long long>(kSteps),
              kReps, hw);

  std::vector<std::size_t> lane_counts = {1, 2, 4};
  if (hw > 4) lane_counts.push_back(hw);

  std::vector<SweepPoint> points;
  for (const std::size_t lanes : lane_counts) {
    points.push_back(run_with_lanes(lanes));
    const auto& p = points.back();
    std::printf("  lanes=%2zu  %8.3f ms  speedup %.2fx  crc %08x\n",
                p.lanes, p.best_seconds * 1e3,
                points.front().best_seconds / p.best_seconds, p.obs.u_crc);
  }

  int status = 0;

  // Gate 1 (always fatal): bitwise identity with the 1-lane run.
  for (const auto& p : points) {
    if (!(p.obs == points.front().obs)) {
      std::printf("FAIL: results with %zu lanes differ from 1 lane "
                  "(crc %08x vs %08x)\n",
                  p.lanes, p.obs.u_crc, points.front().obs.u_crc);
      status = 1;
    }
  }
  if (status == 0) {
    std::printf("determinism: PASS (all lane counts bitwise identical)\n");
  }

  // Gate 2: speedup at 4 lanes.
  const double speedup4 = points.front().best_seconds / points[2].best_seconds;
  const bool nonfatal = std::getenv("GS_SPEEDUP_NONFATAL") != nullptr;
  if (hw < 4 || nonfatal) {
    std::printf("speedup @4 lanes: %.2fx (informational: %s)\n", speedup4,
                hw < 4 ? "fewer than 4 hardware threads"
                       : "GS_SPEEDUP_NONFATAL set");
  } else if (speedup4 < 2.0) {
    std::printf("FAIL: speedup @4 lanes is %.2fx, need >= 2.0x\n", speedup4);
    status = 1;
  } else {
    std::printf("speedup @4 lanes: %.2fx (>= 2.0x required): PASS\n",
                speedup4);
  }

  return status;
}
