// Ablation: host-staged halo exchange (what the paper ran — "We did not
// experiment with GPU-aware MPI", Sec. 3.3) vs. the GPU-aware path over
// Infinity Fabric. Quantifies what the paper left on the table.
//
// Two measurements:
//   1. functional: per-step exchange time on the simulated device clock
//      from real Simulation runs at several local grid sizes;
//   2. at-scale: the Figure 6 weak-scaling sweep re-run with gpu_aware=on.
#include <algorithm>
#include <cstdio>

#include "common/format.h"
#include "core/sim.h"
#include "mpi/runtime.h"
#include "perf/weak_scaling.h"

namespace {

double measure_exchange(std::int64_t L, bool gpu_aware) {
  double t_exchange = 0.0;
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    gs::Settings s;
    s.L = L;
    s.noise = 0.0;
    s.backend = gs::KernelBackend::hip;
    s.gpu_aware_mpi = gpu_aware;
    gs::core::Simulation sim(s, world);
    sim.step();  // warm
    t_exchange = sim.step().exchange;
  });
  return t_exchange;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — halo exchange staging: host-staged (paper) vs.\n");
  std::printf("GPU-aware over Infinity Fabric (unexplored by the paper)\n");
  std::printf("==============================================================\n\n");

  std::printf("Functional per-step exchange cost (1 rank, device clock):\n");
  gs::TableFormatter t({"local grid", "host-staged", "GPU-aware",
                        "speedup"});
  for (const std::int64_t L : {16LL, 32LL, 64LL}) {
    const double staged = measure_exchange(L, false);
    const double aware = measure_exchange(L, true);
    t.row({std::to_string(L) + "^3", gs::format_seconds(staged),
           gs::format_seconds(aware),
           gs::format_fixed(staged / aware, 2) + "x"});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("At-scale (1024^3/GPU, 20 steps, weak-scaling model):\n");
  gs::perf::WeakScalingConfig staged_cfg;
  gs::perf::WeakScalingConfig aware_cfg;
  aware_cfg.gpu_aware = true;
  gs::perf::WeakScalingConfig overlap_cfg;
  overlap_cfg.overlap = true;
  gs::perf::WeakScalingSimulator staged(staged_cfg);
  gs::perf::WeakScalingSimulator aware(aware_cfg);
  gs::perf::WeakScalingSimulator overlapped(overlap_cfg);

  gs::TableFormatter t2({"GPUs", "staged (s)", "GPU-aware (s)",
                         "overlapped (s)", "best saving"});
  for (const std::int64_t p : {8LL, 512LL, 4096LL}) {
    const auto ts = gs::perf::WeakScalingSimulator::wall_times(
        staged.simulate(p));
    const auto ta = gs::perf::WeakScalingSimulator::wall_times(
        aware.simulate(p));
    const auto to = gs::perf::WeakScalingSimulator::wall_times(
        overlapped.simulate(p));
    const double best = std::min(ta.mean(), to.mean());
    t2.row({std::to_string(p), gs::format_fixed(ts.mean(), 3),
            gs::format_fixed(ta.mean(), 3), gs::format_fixed(to.mean(), 3),
            gs::format_fixed(100.0 * (1.0 - best / ts.mean()), 1) + " %"});
  }
  std::printf("%s\n", t2.str().c_str());
  std::printf("Interpretation: at 1024^3 per GPU the kernel dominates, so\n");
  std::printf("the paper's host staging costs only a few %% of step time —\n");
  std::printf("supporting their choice — but the saving grows as the\n");
  std::printf("per-GPU block shrinks (strong scaling) since staged copies\n");
  std::printf("are latency-bound at 12 copies/variable/step.\n");
  return 0;
}
