// Reproduces paper Table 3: rocprof hardware-counter outputs for the HIP
// 1-variable and Julia GrayScott.jl kernels — workgroup size (wgr), LDS,
// scratch, FETCH_SIZE, WRITE_SIZE, TCC_HIT, TCC_MISS, average duration.
#include <cstdio>

#include "bench/kernel_characterization.h"
#include "common/format.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Table 3 — rocprof-mini counters, projected to L=1024\n");
  std::printf("==============================================================\n\n");

  const auto rows = gs::bench::characterize_kernels();

  // Paper column order: HIP 1-var | Julia 1-var no random | Julia 2-var.
  const auto& hip = rows[2];
  const auto& julia1 = rows[1];
  const auto& julia2 = rows[0];

  gs::TableFormatter t({"metric", "HIP 1-var", "Julia 1-var no-rand",
                        "Julia 2-var (app)"});
  auto row3 = [&](const char* name, auto get) {
    t.row({name, get(hip), get(julia1), get(julia2)});
  };
  using C = const gs::bench::KernelCharacterization&;
  row3("wgr", [](C c) { return std::to_string(c.backend.workgroup_size()); });
  row3("lds", [](C c) { return std::to_string(c.backend.lds_per_workgroup); });
  row3("scr", [](C c) { return std::to_string(c.backend.scratch_per_item); });
  row3("FETCH_SIZE (GB)",
       [](C c) { return gs::format_fixed(c.fetch_1024 / 1e9, 2); });
  row3("WRITE_SIZE (GB)",
       [](C c) { return gs::format_fixed(c.write_1024 / 1e9, 2); });
  row3("TCC_HIT (M)",
       [](C c) { return gs::format_fixed(c.tcc_hits_1024 / 1e6, 1); });
  row3("TCC_MISS (M)",
       [](C c) { return gs::format_fixed(c.tcc_misses_1024 / 1e6, 1); });
  row3("L2 hit rate (measured)",
       [](C c) { return gs::format_fixed(100.0 * c.hit_rate, 1) + " %"; });
  row3("Avg Duration (ms)",
       [](C c) { return gs::format_fixed(c.duration_1024 * 1e3, 2); });
  std::printf("%s\n", t.str().c_str());

  std::printf("Paper reference (rocprof, sampled counters): HIP fetch 25.08\n");
  std::printf("GB / write 8.35 GB / 28.74 ms; Julia 1-var 25.40/8.38/54.03;\n");
  std::printf("Julia 2-var 50.80/16.78/111.07. Our TCC_* are full totals\n");
  std::printf("(misses x 64 B = FETCH_SIZE), not rocprof's per-channel\n");
  std::printf("samples, so compare ratios rather than absolute counts.\n");
  std::printf("\nScaled-geometry measurement detail (L=%lld):\n",
              static_cast<long long>(rows[0].scaled_edge));
  for (const auto& c : rows) {
    std::printf("  %-46s fetch %.1f B/cell, write %.1f B/cell\n",
                c.label.c_str(), c.fetch_per_cell, c.write_per_cell);
  }
  return 0;
}
