// extension_fault_matrix — kill-point x fault-kind sweep over the
// crash-consistent workflow, the robustness extension of the paper's
// end-to-end pipeline: a Frontier campaign treats node loss and Lustre
// hiccups as routine, so every interrupted commit must recover to a
// bitwise-identical trajectory.
//
// Phases (all seeds and op indices pinned — every scenario replays):
//   1. probe: one clean run under an empty injection plan records the
//      per-site op counts and the reference final state (the step-24
//      checkpoint plus the last output step);
//   2. kill sweep: for every "bp.writer.*" site and a first/middle/last
//      op at that site, a run is killed at exactly that operation, both
//      datasets are recovered (roll back or roll forward), the job is
//      resumed from its surviving checkpoint, and the final state must
//      be bitwise identical to the reference;
//   3. corrupt sweep: a flipped byte injected at a write_block op must
//      be reported by Reader::verify() as exactly ONE bad block (and no
//      others) across both datasets;
//   4. transient sweep: two injected IoError failures at each writer
//      site (and, composed with a kill, at a restart-read site) must be
//      absorbed by the bounded retries, again bitwise identical.
//
// Exit status is nonzero if any scenario fails to recover exactly —
// this is a regression gate, not a demo.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bp/manifest.h"
#include "bp/reader.h"
#include "config/settings.h"
#include "core/workflow.h"
#include "fault/fault.h"
#include "mpi/runtime.h"

namespace {

namespace fs = std::filesystem;
using gs::Settings;

constexpr int kRanks = 4;           // 2 ranks/node -> data.0 and data.1
constexpr std::int64_t kSteps = 24; // ckpt every 6, output every 6

std::string work_dir() {
  static const std::string dir =
      "/tmp/gs_fault_matrix." + std::to_string(::getpid());
  return dir;
}

Settings base_settings() {
  Settings s;
  s.L = 8;
  s.steps = kSteps;
  s.plotgap = 6;
  s.backend = gs::KernelBackend::host_reference;
  s.ranks_per_node = 2;
  s.seed = 42;
  s.checkpoint = true;
  s.checkpoint_freq = 6;
  s.output = work_dir() + "/out.bp";
  s.checkpoint_output = work_dir() + "/ckpt.bp";
  s.io_retry_backoff_ms = 0.01;
  return s;
}

void wipe(const Settings& s) {
  fs::remove_all(s.output);
  fs::remove_all(s.checkpoint_output);
  fs::remove_all(gs::bp::staging_path(s.output));
  fs::remove_all(gs::bp::staging_path(s.checkpoint_output));
}

void run_workflow(const Settings& s) {
  gs::mpi::run(kRanks, [&](gs::mpi::Comm& world) {
    gs::core::Workflow workflow(s, world);
    workflow.run();
  });
}

/// The state the sweep compares: the final checkpoint (always step 24 in
/// a completed run) and the last output step.
struct FinalState {
  std::int64_t ckpt_step = -1;
  std::vector<double> ckpt_u, ckpt_v, out_u;
};

FinalState read_final_state(const Settings& s) {
  FinalState f;
  const gs::bp::Reader ck(s.checkpoint_output);
  f.ckpt_step = ck.read_scalar("step", ck.n_steps() - 1);
  f.ckpt_u = ck.read_full("U", ck.n_steps() - 1);
  f.ckpt_v = ck.read_full("V", ck.n_steps() - 1);
  const gs::bp::Reader out(s.output);
  f.out_u = out.read_full("U", out.n_steps() - 1);
  return f;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool same_state(const FinalState& a, const FinalState& b,
                std::string& why) {
  if (a.ckpt_step != b.ckpt_step) {
    why = "checkpoint step mismatch";
    return false;
  }
  if (!bitwise_equal(a.ckpt_u, b.ckpt_u)) {
    why = "checkpoint U differs bitwise";
    return false;
  }
  if (!bitwise_equal(a.ckpt_v, b.ckpt_v)) {
    why = "checkpoint V differs bitwise";
    return false;
  }
  if (!bitwise_equal(a.out_u, b.out_u)) {
    why = "final output U differs bitwise";
    return false;
  }
  return true;
}

/// Both datasets hold exactly one committed, CRC-clean dataset (or do
/// not exist at all) — never a torn hybrid or a leftover staging dir.
bool datasets_intact(const Settings& s, std::string& why) {
  for (const std::string& path : {s.output, s.checkpoint_output}) {
    if (fs::exists(gs::bp::staging_path(path))) {
      why = "staging dir left behind for " + path;
      return false;
    }
    if (!fs::exists(path)) continue;
    const std::string verdict = gs::bp::validate_against_manifest(path);
    if (!verdict.empty()) {
      why = path + ": " + verdict;
      return false;
    }
    if (!gs::bp::Reader(path).verify().clean()) {
      why = path + ": verify() found damaged blocks";
      return false;
    }
  }
  return true;
}

struct Scenario {
  std::string name;
  bool pass = false;
  std::string detail;
};

int report(std::vector<Scenario>& scenarios) {
  int failures = 0;
  for (const auto& sc : scenarios) {
    if (!sc.pass) ++failures;
    std::printf("  %-58s %s%s%s\n", sc.name.c_str(),
                sc.pass ? "PASS" : "FAIL",
                sc.detail.empty() ? "" : "  — ", sc.detail.c_str());
  }
  return failures;
}

}  // namespace

int main() {
  fs::create_directories(work_dir());
  auto& injector = gs::fault::Injector::instance();
  std::vector<Scenario> scenarios;

  // -- phase 1: probe op counts and the reference trajectory ------------
  const Settings ref = base_settings();
  wipe(ref);
  injector.install(gs::fault::Plan{});  // empty plan: counters advance
  run_workflow(ref);
  const auto probed = injector.stats();
  injector.clear();
  const FinalState want = read_final_state(ref);
  std::printf("probe: clean run, %zu fault sites reached\n", probed.size());
  for (const auto& [site, st] : probed) {
    std::printf("  %-40s %llu ops\n", site.c_str(),
                (unsigned long long)st.ops);
  }

  // -- phase 2: kill sweep ----------------------------------------------
  std::printf("\nkill sweep (recover + resume must be bitwise exact):\n");
  for (const auto& [site, st] : probed) {
    if (site.rfind("bp.writer.", 0) != 0) continue;
    std::vector<std::uint64_t> ops = {0};
    if (st.ops / 2 > 0) ops.push_back(st.ops / 2);
    if (st.ops > 1) ops.push_back(st.ops - 1);
    std::uint64_t prev = ~0ull;
    for (const std::uint64_t op : ops) {
      if (op == prev) continue;  // dedup for 1- and 2-op sites
      prev = op;
      Scenario sc;
      sc.name = "kill " + site + " op " + std::to_string(op);
      const Settings s = base_settings();
      wipe(s);

      gs::fault::Plan plan;
      plan.kill_at(site, op);
      bool killed = false;
      std::uint64_t fired = 0;
      injector.install(plan);
      try {
        run_workflow(s);
      } catch (const gs::fault::Kill&) {
        killed = true;
      } catch (const std::exception& e) {
        sc.detail = std::string("unexpected exception: ") + e.what();
      }
      fired = injector.injected();
      injector.clear();

      if (!killed) {
        if (sc.detail.empty()) {
          sc.detail = fired == 0 ? "kill point never reached"
                                 : "Kill did not propagate";
        }
        scenarios.push_back(sc);
        continue;
      }

      // Recover both datasets, resume from whatever checkpoint survived,
      // and demand the reference trajectory back.
      gs::bp::recover(s.output);
      gs::bp::recover(s.checkpoint_output);
      Settings resume = s;
      resume.restart = true;
      resume.restart_input = s.checkpoint_output;
      try {
        run_workflow(resume);
        std::string why;
        if (!datasets_intact(s, why)) {
          sc.detail = why;
        } else if (same_state(read_final_state(s), want, why)) {
          sc.pass = true;
        } else {
          sc.detail = why;
        }
      } catch (const std::exception& e) {
        sc.detail = std::string("resume failed: ") + e.what();
      }
      scenarios.push_back(sc);
    }
  }

  // -- phase 3: corrupt sweep -------------------------------------------
  std::printf("\ncorrupt sweep (verify() must report exactly the injected "
              "block):\n");
  for (const std::string subfile : {"data.0", "data.1"}) {
    const std::string site = "bp.writer.write_block/" + subfile;
    const auto it = probed.find(site);
    if (it == probed.end()) continue;
    for (const std::uint64_t op :
         {std::uint64_t{0}, it->second.ops / 2, it->second.ops - 1}) {
      Scenario sc;
      sc.name = "corrupt " + site + " op " + std::to_string(op);
      const Settings s = base_settings();
      wipe(s);
      gs::fault::Plan plan;
      plan.corrupt_at(site, op, /*byte_offset=*/8);
      std::uint64_t fired = 0;
      injector.install(plan);
      try {
        run_workflow(s);  // corruption is silent: the run completes
        fired = injector.injected();
      } catch (const std::exception& e) {
        sc.detail = std::string("run failed: ") + e.what();
      }
      injector.clear();
      if (!sc.detail.empty() || fired != 1) {
        if (sc.detail.empty()) sc.detail = "corruption did not fire";
        scenarios.push_back(sc);
        continue;
      }
      // Exactly one damaged block across both datasets, and it must be
      // a CRC mismatch in the subfile the plan targeted.
      std::size_t bad = 0;
      bool right_place = true;
      for (const std::string& path : {s.output, s.checkpoint_output}) {
        const auto rep = gs::bp::Reader(path).verify();
        bad += rep.bad.size();
        for (const auto& b : rep.bad) {
          if (b.reason != "crc_mismatch" || b.subfile != subfile) {
            right_place = false;
          }
        }
      }
      if (bad != 1) {
        sc.detail = "expected exactly 1 bad block, verify() found " +
                    std::to_string(bad);
      } else if (!right_place) {
        sc.detail = "damage reported with wrong reason or subfile";
      } else {
        sc.pass = true;
      }
      scenarios.push_back(sc);
    }
  }

  // -- phase 4: transient-fail sweep ------------------------------------
  std::printf("\ntransient sweep (bounded retries must heal bitwise):\n");
  for (const auto& [site, st] : probed) {
    if (site.rfind("bp.writer.", 0) != 0) continue;
    Scenario sc;
    sc.name = "transient fail x2 " + site;
    const Settings s = base_settings();
    wipe(s);
    gs::fault::Plan plan;
    plan.fail_at(site, 0);
    if (st.ops > 1 || true) plan.fail_at(site, 1);  // retry consumes op 1
    std::uint64_t fired = 0;
    injector.install(plan);
    try {
      run_workflow(s);
      fired = injector.injected();
      injector.clear();
      std::string why;
      if (fired == 0) {
        sc.detail = "no fault fired";
      } else if (!datasets_intact(s, why)) {
        sc.detail = why;
      } else if (same_state(read_final_state(s), want, why)) {
        sc.pass = true;
      } else {
        sc.detail = why;
      }
    } catch (const std::exception& e) {
      injector.clear();
      sc.detail = std::string("retries did not absorb the fault: ") +
                  e.what();
    }
    scenarios.push_back(sc);
  }

  // Composed: kill mid-campaign, then transient failures during the
  // restart read of the resume — retry and recovery stack cleanly.
  {
    Scenario sc;
    sc.name = "kill ckpt@18 + transient restart-read faults";
    const Settings s = base_settings();
    wipe(s);
    gs::fault::Plan kill_plan;
    kill_plan.kill_at("bp.writer.write_index", 2);  // third ckpt close
    bool killed = false;
    injector.install(kill_plan);
    try {
      run_workflow(s);
    } catch (const gs::fault::Kill&) {
      killed = true;
    } catch (const std::exception&) {
    }
    injector.clear();
    if (!killed) {
      sc.detail = "kill did not propagate";
    } else {
      gs::bp::recover(s.output);
      gs::bp::recover(s.checkpoint_output);
      Settings resume = s;
      resume.restart = true;
      resume.restart_input = s.checkpoint_output;
      gs::fault::Plan retry_plan;
      retry_plan.fail_at("bp.reader.open_subfile/data.0", 0);
      retry_plan.fail_at("bp.reader.open_subfile/data.1", 0);
      injector.install(retry_plan);
      try {
        run_workflow(resume);
        std::string why;
        sc.pass = same_state(read_final_state(s), want, why);
        sc.detail = why;
      } catch (const std::exception& e) {
        sc.detail = std::string("resume failed: ") + e.what();
      }
      injector.clear();
    }
    scenarios.push_back(sc);
  }

  const int failures = report(scenarios);
  std::printf("\nfault matrix: %zu scenarios, %d failed\n",
              scenarios.size(), failures);
  fs::remove_all(work_dir());
  return failures == 0 ? 0 : 1;
}
