// Ablation: JIT warm-up vs. ahead-of-time compilation — "Julia's
// ahead-of-time mechanism was not explored in this study" (paper
// Sec. 5.2). Quantifies when the ~1.3 s first-launch compile matters and
// what an AOT system image would recover.
#include <cstdio>

#include "common/format.h"
#include "core/sim.h"
#include "mpi/runtime.h"

namespace {

double run_device_time(std::int64_t steps, bool aot,
                       gs::KernelBackend backend) {
  double total = 0.0;
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    gs::Settings s;
    s.L = 24;
    s.noise = 0.1;
    s.backend = backend;
    s.aot = aot;
    gs::core::Simulation sim(s, world);
    sim.run_steps(steps);
    total = sim.device_time();
  });
  return total;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — JIT first-launch cost vs. AOT system image\n");
  std::printf("(paper Sec. 5.2: AOT 'not explored in this study')\n");
  std::printf("==============================================================\n\n");

  std::printf("Total simulated device time for an N-step run (24^3/rank):\n");
  gs::TableFormatter t({"steps", "Julia JIT", "Julia AOT", "HIP (no JIT)",
                        "JIT overhead vs AOT"});
  for (const std::int64_t steps : {1LL, 5LL, 20LL, 100LL, 500LL}) {
    const double jit = run_device_time(steps, false,
                                       gs::KernelBackend::julia_amdgpu);
    const double aot = run_device_time(steps, true,
                                       gs::KernelBackend::julia_amdgpu);
    const double hip = run_device_time(steps, false,
                                       gs::KernelBackend::hip);
    t.row({std::to_string(steps), gs::format_seconds(jit),
           gs::format_seconds(aot), gs::format_seconds(hip),
           gs::format_fixed(100.0 * (jit - aot) / aot, 1) + " %"});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("Interpretation: the JIT cost is fixed (~1.3 s per kernel),\n");
  std::printf("so short workflow tasks — exactly the interactive/composed\n");
  std::printf("jobs the paper advocates — pay a large relative penalty,\n");
  std::printf("while long production runs amortize it (the paper's\n");
  std::printf("'amortized cost' remark). An AOT image removes ~95%% of the\n");
  std::printf("warm-up, at the cost of the offline build the paper cites\n");
  std::printf("as future work.\n");
  return 0;
}
