// extension_simd_roofline — measured host roofline for the vectorized
// cache-blocked stencil (gs::core::grayscott_tile over gs::simd packs).
//
// 1. CEILING: a STREAM-style triad (a[i] = b[i] + 3*c[i], 24 bytes of
//    traffic per element) measures what this host's memory system
//    actually streams — the denominator of the roofline, measured on the
//    same machine in the same run, never a spec-sheet number.
// 2. KERNEL: the noiseless Gray-Scott sweep at L^3, timed as whole
//    grayscott_tile sweeps. Effective bandwidth charges the 32 B/cell
//    minimum traffic (read u,v + write u_next,v_next once each; neighbor
//    reuse is the cache blocking's job, so it earns no extra bytes).
// 3. GATES:
//    - identity (always fatal): the W=1 instantiation and every tile_j
//      variant must produce bitwise-identical fields to the native-width
//      default — the SIMD contract, checked with noise ON so the lane
//      noise draws are exercised;
//    - bandwidth (gated): stencil >= 35% of the measured triad. Fatal on
//      real hardware with a vector build; informational when
//      GS_ROOFLINE_NONFATAL is set (shared CI runners) or the build is
//      the scalar fallback (GS_SIMD=OFF, nothing to enforce).
//
// The BENCH_JSON line is machine-readable for the CI bench loop.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/clock.h"
#include "core/reference.h"
#include "core/stencil.h"
#include "simd/simd.h"

namespace {

using gs::Box3;
using gs::Field3;
using gs::Index3;
using gs::core::GsParams;
using gs::core::StencilArgs;

constexpr std::int64_t kL = 128;        ///< roofline stencil extent
constexpr std::int64_t kIdentityL = 24; ///< identity-gate extent
constexpr int kTriadReps = 5;
constexpr int kStencilReps = 3;
constexpr double kMinFraction = 0.35;  ///< stencil / triad gate
/// Minimum stencil traffic: u,v read + u_next,v_next written, once per
/// cell. Neighbor loads hit in cache by design and are not charged.
constexpr double kBytesPerCell = 4.0 * sizeof(double);

// ---- STREAM triad ---------------------------------------------------------

double measure_triad_gbps() {
  constexpr std::size_t n = 1u << 22;  // 4 Mi doubles: 3 x 32 MiB arrays
  std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  double best = 1e300;
  double sink = 0.0;
  for (int rep = 0; rep < kTriadReps; ++rep) {
    const gs::WallTimer timer;
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + 3.0 * c[i];
    best = std::min(best, timer.seconds());
    sink += a[rep];  // keep the sweep observable
  }
  if (sink < 0.0) std::printf("unreachable %f\n", sink);
  return static_cast<double>(n) * 24.0 / best / 1.0e9;
}

// ---- stencil sweep --------------------------------------------------------

/// Ghost-filled fields plus a StencilArgs over them (serial whole-domain
/// geometry, exactly like core::reference_step).
struct Workload {
  Field3 u, v, un, vn;
  StencilArgs args;

  explicit Workload(std::int64_t L, double noise)
      : u({L, L, L}), v({L, L, L}), un({L, L, L}), vn({L, L, L}) {
    gs::core::initialize_fields(u, v, Box3{{0, 0, 0}, {L, L, L}}, L);
    gs::core::apply_periodic_ghosts(u);
    gs::core::apply_periodic_ghosts(v);
    args.u = u.data().data();
    args.v = v.data().data();
    args.u_next = un.data().data();
    args.v_next = vn.data().data();
    args.alloc = u.alloc_extent();
    args.interior = u.interior();
    args.local = Box3{{0, 0, 0}, u.interior()};
    args.global = {L, L, L};
    args.params.noise = noise;
    args.seed = 1234;
    args.step = 0;
  }
};

double measure_stencil_gbps(double* out_ms) {
  Workload w(kL, /*noise=*/0.0);
  gs::core::grayscott_tile<gs::simd::kNativeWidth>(w.args, 0, kL);  // warm
  double best = 1e300;
  for (int rep = 0; rep < kStencilReps; ++rep) {
    const gs::WallTimer timer;
    gs::core::grayscott_tile<gs::simd::kNativeWidth>(w.args, 0, kL);
    best = std::min(best, timer.seconds());
  }
  *out_ms = best * 1e3;
  const double cells = static_cast<double>(kL) * kL * kL;
  return cells * kBytesPerCell / best / 1.0e9;
}

// ---- identity gates -------------------------------------------------------

bool interiors_identical(const Field3& a, const Field3& b) {
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(double)) == 0;
}

/// Runs one noisy sweep with the given width/tile_j; returns the outputs.
template <int W>
void sweep_into(Workload& w, std::int64_t tile_j) {
  w.args.tile_j = tile_j;
  gs::core::grayscott_tile<W>(w.args, 0, kIdentityL);
}

int check_identity() {
  int failures = 0;
  Workload native(kIdentityL, /*noise=*/0.1);
  sweep_into<gs::simd::kNativeWidth>(native, 0);

  Workload scalar(kIdentityL, /*noise=*/0.1);
  sweep_into<1>(scalar, 0);
  if (!interiors_identical(native.un, scalar.un) ||
      !interiors_identical(native.vn, scalar.vn)) {
    std::printf("FAIL: W=1 fallback differs from native width %d\n",
                gs::simd::kNativeWidth);
    ++failures;
  }

  for (const std::int64_t tj : {std::int64_t{1}, std::int64_t{3},
                                std::int64_t{kIdentityL}}) {
    Workload blocked(kIdentityL, /*noise=*/0.1);
    sweep_into<gs::simd::kNativeWidth>(blocked, tj);
    if (!interiors_identical(native.un, blocked.un) ||
        !interiors_identical(native.vn, blocked.vn)) {
      std::printf("FAIL: tile_j=%lld differs from auto-tuned blocking\n",
                  static_cast<long long>(tj));
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main() {
  std::printf("simd roofline: width=%d L=%lld (%s build)\n",
              gs::simd::kNativeWidth, static_cast<long long>(kL),
              gs::simd::kNativeWidth == 1 ? "scalar-fallback" : "vector");

  // Identity first — a fast kernel that computes different bits is a bug,
  // not a win, so the bandwidth number is meaningless until this passes.
  int status = check_identity();
  if (status == 0) {
    std::printf("identity: PASS (W=1, tile_j sweeps bitwise identical)\n");
  }

  const double triad_gbps = measure_triad_gbps();
  double stencil_ms = 0.0;
  const double stencil_gbps = measure_stencil_gbps(&stencil_ms);
  const double fraction = stencil_gbps / triad_gbps;

  std::printf("triad   : %7.2f GB/s (measured ceiling, 24 B/elem)\n",
              triad_gbps);
  std::printf("stencil : %7.2f GB/s (%.3f ms/sweep, %.0f B/cell charged)\n",
              stencil_gbps, stencil_ms, kBytesPerCell);
  std::printf("fraction: %7.2f%% of triad (gate: >= %.0f%%)\n",
              fraction * 100.0, kMinFraction * 100.0);
  std::printf("BENCH_JSON {\"bench\":\"simd_roofline\",\"width\":%d,"
              "\"triad_gbps\":%.3f,\"stencil_gbps\":%.3f,"
              "\"fraction_of_peak\":%.4f,\"bytes_per_cell\":%.1f,"
              "\"stencil_ms\":%.3f}\n",
              gs::simd::kNativeWidth, triad_gbps, stencil_gbps, fraction,
              kBytesPerCell, stencil_ms);

  const bool nonfatal = std::getenv("GS_ROOFLINE_NONFATAL") != nullptr;
  if (nonfatal || gs::simd::kNativeWidth == 1) {
    std::printf("roofline gate: informational (%s)\n",
                nonfatal ? "GS_ROOFLINE_NONFATAL set"
                         : "scalar-fallback build");
  } else if (fraction < kMinFraction) {
    std::printf("FAIL: stencil reaches %.1f%% of triad, need >= %.0f%%\n",
                fraction * 100.0, kMinFraction * 100.0);
    status = 1;
  } else {
    std::printf("roofline gate: PASS\n");
  }
  return status;
}
