// Shared harness for the single-GCD kernel experiments (Tables 2 and 3).
//
// Methodology: the paper measures three kernels on one MI250x GCD at
// L=1024 with rocprof. We cannot hold 1024^3 doubles here, so we run the
// cache-simulated functional kernels at a SCALED geometry that preserves
// the regime that controls L2 behavior: at L=1024 on the GCD the three
// k-planes a stencil sweep touches (~25 MB) far exceed the 8 MiB L2, so
// neighbor reuse across k fails (~3x fetch amplification, the measured
// 25.08/8.59 GB), while rows reuse within a plane. We pick L and a scaled
// L2 so one plane fits but three do not (192^2*8 B = 288 KiB vs 512 KiB),
// reproducing the same reuse structure. (Exactly plane==L2 over-thrashes
// under strict LRU, which real pseudo-random-replacement caches avoid.)
// Per-cell traffic measured at the scaled geometry is then projected to
// the paper's L=1024 and fed to the calibrated duration model.
#pragma once

#include <string>
#include <vector>

#include "gpu/device.h"
#include "prof/profiler.h"

namespace gs::bench {

/// One characterized kernel variant (a row of Tables 2/3).
struct KernelCharacterization {
  std::string label;           ///< e.g. "Julia GrayScott.jl 2-variable"
  gs::gpu::BackendProfile backend;
  int nvars = 2;
  bool uses_rng = false;

  // Measured at the scaled geometry:
  std::int64_t scaled_edge = 0;
  prof::CounterSet counters;   ///< cache-sim counters for the scaled run
  double fetch_per_cell = 0.0; ///< bytes
  double write_per_cell = 0.0; ///< bytes
  double hit_rate = 0.0;

  // Projected to the paper's L=1024 on the real GCD parameters:
  double fetch_1024 = 0.0;       ///< bytes (FETCH_SIZE)
  double write_1024 = 0.0;       ///< bytes (WRITE_SIZE)
  double duration_1024 = 0.0;    ///< s (Avg Duration)
  double bw_total = 0.0;         ///< B/s (Table 2 "Total")
  double bw_effective = 0.0;     ///< B/s (Table 2 "Effective")
  double tcc_hits_1024 = 0.0;    ///< projected counts
  double tcc_misses_1024 = 0.0;
};

/// Runs the three paper kernels (Julia 2-var, Julia 1-var no-random,
/// HIP 1-var) at the scaled geometry and projects to L=1024.
/// `scaled_edge` must keep plane/L2 ratio near 1 with `scaled_l2_bytes`.
std::vector<KernelCharacterization> characterize_kernels(
    std::int64_t scaled_edge = 192,
    std::uint64_t scaled_l2_bytes = 512 * 1024);

}  // namespace gs::bench
