// Extension: STRONG scaling of a fixed 1,024^3 global problem — the
// paper only weak-scales (constant 1,024^3 per GPU). Strong scaling
// exposes the communication/staging floor their configuration never hits
// and shows where host staging vs. GPU-aware MPI starts to matter.
//
// Built from the same calibrated component models (achieved bandwidth,
// Hockney halo cost, staging link), composed per rank count via the real
// domain decomposition.
#include <cstdio>

#include "common/format.h"
#include "core/kernels.h"
#include "gpu/device_props.h"
#include "grid/decomp.h"
#include "grid/halo.h"
#include "net/network_model.h"

namespace {

struct StepModel {
  double kernel;
  double staging;
  double halo;
  double total(bool gpu_aware) const {
    return kernel + (gpu_aware ? 0.0 : staging) + halo;
  }
};

StepModel model_step(std::int64_t nranks, const gs::gpu::DeviceProps& dev,
                     const gs::net::NetworkModel& net) {
  const gs::Decomposition d = gs::Decomposition::cube(1024, nranks);
  const gs::Index3 local = d.local_box(0).count;  // largest block

  StepModel m{};
  const double cells = static_cast<double>(local.volume());
  const double traffic = cells * gs::core::kGrayScottBytesPerCell;
  const double bw = gs::gpu::achieved_bandwidth(
      dev, gs::gpu::julia_amdgpu_backend(), /*uses_rng=*/true);
  m.kernel = dev.launch_overhead + traffic / bw;

  double face_bytes = 0.0;
  for (const gs::Face& f : gs::all_faces()) {
    face_bytes += static_cast<double>(gs::face_cells(local, f)) * 8.0;
  }
  m.staging = 24.0 * dev.host_link_latency +
              2.0 * 2.0 * face_bytes / dev.host_link_bandwidth;
  m.halo = net.halo_time(local, 2, nranks);
  return m;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Extension — strong scaling of a fixed 1024^3 problem\n");
  std::printf("(the paper weak-scales only; Julia backend, modeled)\n");
  std::printf("==============================================================\n\n");

  const gs::gpu::DeviceProps dev;
  const gs::net::NetworkModel net;

  gs::TableFormatter t({"GPUs", "local block", "kernel", "staging", "halo",
                        "step (staged)", "step (GPU-aware)", "efficiency"});
  const double t1 = model_step(1, dev, net).total(false);
  for (const std::int64_t p :
       {1LL, 8LL, 64LL, 512LL, 4096LL, 32768LL}) {
    const gs::Decomposition d = gs::Decomposition::cube(1024, p);
    const gs::Index3 local = d.local_box(0).count;
    const StepModel m = model_step(p, dev, net);
    const double eff =
        t1 / (m.total(false) * static_cast<double>(p));
    char block[48];
    std::snprintf(block, sizeof(block), "%lldx%lldx%lld",
                  (long long)local.i, (long long)local.j,
                  (long long)local.k);
    t.row({std::to_string(p), block, gs::format_seconds(m.kernel),
           gs::format_seconds(m.staging), gs::format_seconds(m.halo),
           gs::format_seconds(m.total(false)),
           gs::format_seconds(m.total(true)),
           gs::format_fixed(100.0 * eff, 1) + " %"});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("Findings:\n");
  std::printf("  * weak-scaling (the paper's design) hides the exchange\n");
  std::printf("    cost: at 1024^3/GPU it is ~8%% of a step;\n");
  std::printf("  * under strong scaling the fixed per-step staging latency\n");
  std::printf("    (24 strided copies) and halo latency dominate once the\n");
  std::printf("    local block shrinks below ~128^3 — where the GPU-aware\n");
  std::printf("    column pulls ahead, quantifying what Sec. 3.3's\n");
  std::printf("    \"no GPU-aware MPI\" choice would cost beyond the\n");
  std::printf("    paper's operating point.\n");
  return 0;
}
