// Extension: end-to-end campaign model — the cost structure of the FULL
// workflow the paper's Listing 1 implies (1,000 simulation steps on 512
// nodes, 50 BP output steps, then interactive analysis of the dataset),
// composed from every calibrated substrate model. This is the "end-to-end
// workflow" accounting the paper motivates but never totals.
#include <cstdio>

#include "common/format.h"
#include "lustre/lustre_model.h"
#include "perf/io_scaling.h"
#include "perf/weak_scaling.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Extension — end-to-end campaign cost model\n");
  std::printf("(1,000 steps, 4,096 GPUs / 512 nodes, 50 outputs — the\n");
  std::printf("Listing 1 campaign: step 50*scalar = 20 / 1000)\n");
  std::printf("==============================================================\n\n");

  constexpr std::int64_t kSteps = 1000;
  constexpr std::int64_t kOutputs = 50;
  constexpr std::int64_t kRanks = 4096;
  constexpr std::int64_t kNodes = 512;

  const gs::lustre::LustreModel lustre;
  gs::perf::IoScalingSimulator io;

  struct Variant {
    const char* name;
    bool gpu_aware;
    bool aot;
  };
  const Variant variants[] = {
      {"paper configuration (staged MPI, JIT)", false, false},
      {"+ GPU-aware MPI", true, false},
      {"+ AOT system image", true, true},
  };

  gs::TableFormatter t({"configuration", "compute", "exchange+staging",
                        "JIT/AOT", "I/O (50 writes)", "campaign total"});
  for (const auto& v : variants) {
    gs::perf::WeakScalingConfig cfg;
    cfg.steps = 1;
    cfg.gpu_aware = v.gpu_aware;
    gs::perf::WeakScalingSimulator sim(cfg);

    const double compute = kSteps * sim.base_kernel_time();
    const double exchange =
        kSteps * (sim.base_staging_time_per_step() +
                  sim.base_halo_time_per_step(kRanks));
    const double warmup = v.aot ? 0.05 * 1.28 : 1.28;
    const double write_time =
        static_cast<double>(kOutputs) *
        lustre.mean_write_time(kNodes, io.bytes_per_node());
    const double total = compute + exchange + warmup + write_time;
    t.row({v.name, gs::format_seconds(compute),
           gs::format_seconds(exchange), gs::format_seconds(warmup),
           gs::format_seconds(write_time), gs::format_seconds(total)});
  }
  std::printf("%s\n", t.str().c_str());

  // The consumption side (Figure 9's notebook): reading slices vs. whole
  // steps back from Lustre on one analysis node.
  const std::uint64_t full_step_bytes =
      2ull * (1ull << 30) * 8ull * static_cast<std::uint64_t>(kRanks);
  // One center z-plane of both variables: 2 x 1024^2 doubles.
  const std::uint64_t slice_bytes = 2ull * 1024 * 1024 * 8;
  std::printf("Analysis stage (single JupyterHub-style client):\n");
  std::printf("  read one full step  (%s): %s\n",
              gs::format_bytes(full_step_bytes).c_str(),
              gs::format_seconds(
                  lustre.mean_read_time(1, full_step_bytes)).c_str());
  std::printf("  read one 2-D slice  (%s): %s\n",
              gs::format_bytes(slice_bytes).c_str(),
              gs::format_seconds(lustre.mean_read_time(1, slice_bytes))
                  .c_str());
  std::printf("  -> the selection-read API (bpls -s / slice_from_reader)\n");
  std::printf("     is what makes notebook-speed interaction possible on\n");
  std::printf("     a 64 TB dataset: ~5 orders of magnitude less data.\n\n");

  std::printf("Takeaway: writing the full fields every 20 steps makes the\n");
  std::printf("campaign I/O-DOMINATED (~98%% of wall time) — which is why\n");
  std::printf("the paper notes that 'drastically reducing the frequency of\n");
  std::printf("writes to the parallel file system is often required'\n");
  std::printf("(Sec. 3.4), and why its streaming-pipeline future work\n");
  std::printf("(our bp::Stream engine) matters. The JIT warm-up is\n");
  std::printf("negligible over 1,000 steps, consistent with the paper's\n");
  std::printf("'amortized cost' remark; GPU-aware MPI halves the exchange\n");
  std::printf("term but moves the total by <0.1%%.\n");
  return 0;
}
