// extension_service_load — closed-loop load test of the gs::svc
// dataset-analysis service, the serving-layer extension of the paper's
// Figure 9 consumer: many analysts hammering one shared Gray-Scott
// output through the admission queue, worker pool, and block cache.
//
// Phases:
//   1. generate a real solver dataset (8 ranks through the workflow);
//   2. sweep 1..64 closed-loop clients, measuring throughput and tail
//      latency on a cold block cache and again on a warm one;
//   3. admission control: a 64-client burst against a tiny bounded
//      queue must produce ServerBusy rejects (backpressure) while an
//      unbounded queue absorbs the same burst with none;
//   4. accounting: every submitted request is resolved exactly once.
//
// Exit status is nonzero if the warm cache fails to beat the cold pass
// or any request is dropped — this is a regression gate, not a demo.
//
// Default scale finishes in seconds (CI smoke); pass a multiplier to
// scale requests per client, e.g. `extension_service_load 4`.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/format.h"
#include "common/stats.h"
#include "core/workflow.h"
#include "mpi/runtime.h"
#include "svc/service.h"

namespace {

constexpr const char* kDataset = "/tmp/gs_svc_load.bp";

/// Deterministic per-client request stream (no global RNG: clients must
/// not serialize on a shared generator).
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

struct PassResult {
  double elapsed = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t other = 0;
  gs::Samples latencies;
  double throughput() const { return elapsed > 0 ? ok / elapsed : 0.0; }
};

/// One closed-loop pass: `n_clients` threads, each issuing
/// `reqs_per_client` requests back to back, waiting for each answer.
PassResult run_pass(gs::svc::Service& service, std::size_t n_clients,
                    std::size_t reqs_per_client, std::int64_t n_steps,
                    std::int64_t L) {
  std::vector<gs::Samples> lat(n_clients);
  std::vector<std::uint64_t> ok(n_clients, 0), busy(n_clients, 0),
      other(n_clients, 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      gs::svc::Client client(service);
      Lcg rng{0x9e3779b97f4a7c15ull ^ (c + 1)};
      for (std::size_t r = 0; r < reqs_per_client; ++r) {
        const std::int64_t step =
            static_cast<std::int64_t>(rng.next() % n_steps);
        const auto a = std::chrono::steady_clock::now();
        gs::svc::Status status;
        switch (rng.next() % 4) {
          case 0:
            status = client.field_stats("U", step).status();
            break;
          case 1:
            status = client.histogram("V", step, 32).status();
            break;
          case 2:
            status = client
                         .slice2d("U", step, 2,
                                  static_cast<std::int64_t>(rng.next() %
                                                            static_cast<
                                                                std::uint64_t>(
                                                                L)))
                         .status();
            break;
          default: {
            const std::int64_t half = L / 2;
            const gs::Box3 box{{0, 0, static_cast<std::int64_t>(
                                          rng.next() % half)},
                               {half, half, half}};
            status = client.read_box("V", step, box).status();
            break;
          }
        }
        const auto b = std::chrono::steady_clock::now();
        if (status.code == gs::svc::StatusCode::ok) {
          ++ok[c];
          lat[c].add(std::chrono::duration<double>(b - a).count());
        } else if (status.code == gs::svc::StatusCode::server_busy) {
          ++busy[c];
        } else {
          ++other[c];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  PassResult result;
  result.elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  for (std::size_t c = 0; c < n_clients; ++c) {
    result.ok += ok[c];
    result.busy += busy[c];
    result.other += other[c];
    for (const double x : lat[c].values()) result.latencies.add(x);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t scale = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::size_t reqs_per_client = 16 * (scale ? scale : 1);

  std::printf("==============================================================\n");
  std::printf("Extension — gs::svc concurrent analysis-service load\n");
  std::printf("==============================================================\n\n");

  // Phase 1: a real solver dataset, 8 ranks through the workflow.
  gs::Settings settings;
  settings.L = 32;
  settings.steps = 20;
  settings.plotgap = 4;  // 5 output steps, 8 blocks each
  settings.noise = 0.1;
  settings.output = kDataset;
  settings.ranks_per_node = 4;
  std::filesystem::remove_all(kDataset);
  gs::mpi::run(8, [&](gs::mpi::Comm& world) {
    gs::core::Workflow wf(settings, world);
    wf.run();
  });
  const std::int64_t n_steps = settings.steps / settings.plotgap;
  std::printf("dataset: %s  (L=%lld, %lld output steps, 8 blocks/step)\n\n",
              kDataset, (long long)settings.L, (long long)n_steps);

  // Phase 2: client sweep, cold cache then warm cache per point.
  bool failed = false;
  double cold_total_ok = 0, cold_total_s = 0;
  double warm_total_ok = 0, warm_total_s = 0;
  gs::TableFormatter table({"clients", "pass", "req/s", "p50", "p95", "p99",
                            "cache hit%"});
  for (const std::size_t n_clients : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    gs::svc::ServiceConfig config;
    config.threads = 4;
    config.queue_capacity = 0;  // sweep measures service time, not rejects
    gs::svc::Service service(kDataset, std::move(config));
    const char* names[2] = {"cold", "warm"};
    for (int pass = 0; pass < 2; ++pass) {
      const auto r = run_pass(service, n_clients, reqs_per_client, n_steps,
                              settings.L);
      const auto m = service.metrics();
      table.row({std::to_string(n_clients), names[pass],
                 gs::format_fixed(r.throughput(), 1),
                 gs::format_seconds(r.latencies.percentile(50)),
                 gs::format_seconds(r.latencies.percentile(95)),
                 gs::format_seconds(r.latencies.percentile(99)),
                 gs::format_fixed(100.0 * m.cache.hit_rate(), 1)});
      if (r.ok != n_clients * reqs_per_client || r.busy || r.other) {
        std::printf("FAIL: sweep pass dropped requests (ok=%llu busy=%llu "
                    "other=%llu)\n",
                    (unsigned long long)r.ok, (unsigned long long)r.busy,
                    (unsigned long long)r.other);
        failed = true;
      }
      if (pass == 0) {
        cold_total_ok += static_cast<double>(r.ok);
        cold_total_s += r.elapsed;
      } else {
        warm_total_ok += static_cast<double>(r.ok);
        warm_total_s += r.elapsed;
      }
    }
  }
  std::printf("%s\n", table.str().c_str());

  const double cold_tput = cold_total_ok / cold_total_s;
  const double warm_tput = warm_total_ok / warm_total_s;
  std::printf("aggregate throughput: cold %.1f req/s, warm %.1f req/s "
              "(x%.2f)\n\n",
              cold_tput, warm_tput, warm_tput / cold_tput);
  if (warm_tput <= cold_tput) {
    std::printf("FAIL: warm cache did not beat cold cache\n");
    failed = true;
  }

  // Phase 3: admission control. A 64-client burst against a tiny queue
  // with few workers must shed load as ServerBusy; the same burst
  // against an unbounded queue must not reject anything.
  for (const std::size_t capacity : {8u, 0u}) {
    gs::svc::ServiceConfig config;
    config.threads = 2;
    config.queue_capacity = capacity;
    gs::svc::Service service(kDataset, std::move(config));
    const auto r = run_pass(service, 64, reqs_per_client, n_steps,
                            settings.L);
    service.shutdown();
    const auto m = service.metrics();
    std::printf("burst, queue capacity %zu: ok %llu, busy %llu "
                "(submitted %llu, accounted %llu)\n",
                capacity, (unsigned long long)r.ok,
                (unsigned long long)r.busy, (unsigned long long)m.submitted,
                (unsigned long long)m.accounted());
    if (r.other != 0 || m.submitted != m.accounted()) {
      std::printf("FAIL: requests dropped or unaccounted\n");
      failed = true;
    }
    if (capacity > 0 && r.busy == 0) {
      std::printf("FAIL: bounded queue under burst produced no "
                  "ServerBusy rejects\n");
      failed = true;
    }
    if (capacity == 0 && r.busy != 0) {
      std::printf("FAIL: unbounded queue rejected requests\n");
      failed = true;
    }
  }

  std::filesystem::remove_all(kDataset);
  std::printf("\n%s\n", failed ? "FAILED" : "OK");
  return failed ? 1 : 0;
}
