// extension_tenant_slo — multi-tenant simulation-as-a-service gates for
// the gs::tenant control plane: the paper's single-campaign workflow
// promoted to a facility shared by tenants with different QOS tiers,
// where eviction, node loss, and concurrent serving are routine and none
// of them may lose or corrupt a tenant's work.
//
// Phases (every gate enforced; exit is nonzero on any failure):
//   1. preemption identity: a scavenger-tier functional simulation is
//      evicted mid-run by a high-QOS job and resumes from its gs::fault
//      checkpoint; its final checkpoint state and last output step must
//      be bitwise identical to an undisturbed run. The victim must
//      complete with exactly one recorded preemption and an untouched
//      retry budget.
//   2. churn survival: a mixed campaign (partitions, all three QOS
//      tiers, a job array, two tenants) runs under injected node kills;
//      every submitted job must reach COMPLETED — zero lost jobs — and
//      the accounting log must be bit-identical when the scenario is
//      replayed with the same seed.
//   3. serving SLO: a tenant::Fleet campaign publishes its datasets into
//      the in-process serving tier while three tenants hammer them
//      concurrently; every query must succeed, client- and server-side
//      per-tenant counters must agree, and each tenant's p99 latency
//      must stay under the SLO bound. The latency gate alone downgrades
//      to informational when GS_TENANT_SLO_NONFATAL is set (shared CI
//      runners) — correctness gates never do.
//   4. fair-share: after one tenant burns node-seconds into the decaying
//      usage ledger, a fresh tenant's identical submissions must start
//      no later than the heavy tenant's in the next contention wave.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bp/reader.h"
#include "config/settings.h"
#include "sched/campaign.h"
#include "sched/scheduler.h"
#include "svc/query.h"
#include "tenant/fleet.h"
#include "tenant/qos.h"

namespace {

namespace fs = std::filesystem;
namespace sched = gs::sched;
namespace tenant = gs::tenant;
using gs::Settings;
using sched::JobSpec;
using sched::JobState;
using sched::PayloadKind;
using sched::Scheduler;
using sched::SchedulerConfig;

std::string work_dir() {
  static const std::string dir =
      "/tmp/gs_tenant_slo." + std::to_string(::getpid());
  return dir;
}

JobSpec fixed_job(const std::string& name, const std::string& user,
                  std::int64_t nodes, double duration, double limit,
                  const std::string& qos = "",
                  const std::string& partition = "") {
  JobSpec s;
  s.name = name;
  s.user = user;
  s.nodes = nodes;
  s.walltime_limit = limit;
  s.qos = qos;
  s.partition = partition;
  s.payload.kind = PayloadKind::fixed;
  s.payload.fixed_duration = duration;
  return s;
}

Settings functional_settings(const std::string& tag) {
  Settings s;
  s.L = 16;
  s.steps = 6;
  s.plotgap = 3;
  s.backend = gs::KernelBackend::host_reference;
  s.ranks_per_node = 2;
  s.checkpoint = true;
  s.checkpoint_freq = 4;
  s.output = work_dir() + "/" + tag + "_out.bp";
  s.checkpoint_output = work_dir() + "/" + tag + "_ck.bp";
  return s;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct Gate {
  std::string name;
  bool pass = false;
  std::string detail;
};

void check(std::vector<Gate>& gates, const std::string& name, bool pass,
           const std::string& detail = "") {
  gates.push_back({name, pass, pass ? "" : detail});
}

int report(const std::vector<Gate>& gates) {
  int failures = 0;
  for (const auto& g : gates) {
    if (!g.pass) ++failures;
    std::printf("  %-58s %s%s%s\n", g.name.c_str(), g.pass ? "PASS" : "FAIL",
                g.detail.empty() ? "" : "  — ", g.detail.c_str());
  }
  return failures;
}

// ---- phase 1: preemption identity ----------------------------------------

void phase_preemption(std::vector<Gate>& gates) {
  std::printf("phase 1: checkpoint-backed preemption identity\n");

  // Reference: the victim workflow runs undisturbed, which also reveals
  // its simulated duration for placing the preemptor mid-run.
  SchedulerConfig ref_cfg;
  ref_cfg.policy = sched::Policy::backfill;
  ref_cfg.cluster.nodes = 2;
  ref_cfg.qos = tenant::default_qos_tiers();
  Scheduler ref(ref_cfg);
  JobSpec victim;
  victim.name = "victim";
  victim.user = "low";
  victim.nodes = 2;
  victim.ranks_per_node = 2;
  victim.walltime_limit = 1e6;
  victim.qos = "scavenger";
  victim.payload.kind = PayloadKind::functional;
  victim.payload.settings = functional_settings("clean");
  const auto rid = ref.submit(victim);
  ref.run();
  const double duration = ref.job(rid).duration;
  check(gates, "reference victim completes",
        ref.job(rid).state == JobState::completed && duration > 0.0,
        "reference run did not complete");

  // Preempted run: identical physics, fresh paths, a high-QOS job lands
  // halfway through and evicts the victim.
  SchedulerConfig cfg = ref_cfg;
  Scheduler s(cfg);
  const Settings clean = victim.payload.settings;
  victim.payload.settings = functional_settings("preempted");
  const Settings pre = victim.payload.settings;
  const auto vid = s.submit(victim);
  const auto hid = s.submit(fixed_job("urgent", "ops", 2, 5.0, 100, "high"),
                            /*submit_at=*/duration / 2.0);
  s.run();

  const auto& v = s.job(vid);
  check(gates, "victim evicted exactly once and completed",
        v.state == JobState::completed && v.preemptions == 1 &&
            v.attempts == 2,
        "state=" + std::string(sched::to_string(v.state)) +
            " preemptions=" + std::to_string(v.preemptions));
  check(gates, "eviction spends no retry budget", v.requeues == 0,
        "requeues=" + std::to_string(v.requeues));
  check(gates, "preemptor completed",
        s.job(hid).state == JobState::completed, "preemptor not completed");

  const gs::bp::Reader ck_a(clean.checkpoint_output);
  const gs::bp::Reader ck_b(pre.checkpoint_output);
  check(gates, "final checkpoint state bitwise identical",
        bitwise_equal(ck_a.read_full("U", ck_a.n_steps() - 1),
                      ck_b.read_full("U", ck_b.n_steps() - 1)) &&
            bitwise_equal(ck_a.read_full("V", ck_a.n_steps() - 1),
                          ck_b.read_full("V", ck_b.n_steps() - 1)),
        "resumed checkpoint diverged from the undisturbed run");
  const gs::bp::Reader out_a(clean.output);
  const gs::bp::Reader out_b(pre.output);
  check(gates, "final output step bitwise identical",
        bitwise_equal(out_a.read_full("U", out_a.n_steps() - 1),
                      out_b.read_full("U", out_b.n_steps() - 1)),
        "resumed output diverged from the undisturbed run");
}

// ---- phase 2: zero lost jobs under node kills ----------------------------

Scheduler run_churn_scenario() {
  SchedulerConfig cfg;
  cfg.policy = sched::Policy::backfill;
  cfg.cluster.nodes = 8;
  cfg.seed = 1234;
  cfg.faults.node_fail_prob = 0.25;
  cfg.faults.max_failures = 4;
  cfg.partitions = {tenant::partition_from_spec("prod,nodes=6"),
                    tenant::partition_from_spec("debug,nodes=2")};
  cfg.qos = tenant::default_qos_tiers();
  cfg.usage_halflife = 600.0;
  Scheduler s(cfg);

  JobSpec bg = fixed_job("bg", "alice", 2, 300, 2500, "scavenger", "prod");
  bg.array = 3;
  bg.max_retries = 10;
  s.submit_array(bg);
  for (int i = 0; i < 2; ++i) {
    JobSpec j = fixed_job("sim" + std::to_string(i), "bob", 3, 100, 2500,
                          "normal", "prod");
    j.max_retries = 10;
    s.submit(j);
  }
  for (int i = 0; i < 2; ++i) {
    JobSpec j = fixed_job("dbg" + std::to_string(i), "alice", 1, 60, 2500,
                          "normal", "debug");
    j.max_retries = 10;
    s.submit(j);
  }
  JobSpec urgent = fixed_job("urgent", "ops", 4, 50, 2500, "high", "prod");
  urgent.max_retries = 10;
  s.submit(urgent, /*submit_at=*/150.0);
  s.run();
  return s;
}

void phase_churn(std::vector<Gate>& gates) {
  std::printf("\nphase 2: node kills + preemption churn, zero lost jobs\n");
  const Scheduler a = run_churn_scenario();

  const auto st = a.stats();
  int lost = 0;
  for (const auto& j : a.jobs()) {
    if (j.state != JobState::completed) ++lost;
  }
  check(gates, "every job completed (zero lost)", lost == 0,
        std::to_string(lost) + " of " + std::to_string(a.jobs().size()) +
            " jobs not COMPLETED");
  check(gates, "node kills actually fired", st.requeues >= 1,
        "no requeue recorded; churn never happened");
  std::printf("  (%zu jobs, %d requeues, %d preemptions, makespan %.0fs)\n",
              a.jobs().size(), st.requeues, st.preemptions, st.makespan);

  const Scheduler b = run_churn_scenario();
  check(gates, "accounting log bit-identical on replay",
        a.event_log() == b.event_log() && a.sacct() == b.sacct(),
        "same seed produced a different event log");
}

// ---- phase 3: campaign -> publish -> serve under SLO ---------------------

void phase_serving(std::vector<Gate>& gates, bool slo_nonfatal) {
  std::printf("\nphase 3: fleet serving SLO while the campaign runs\n");
  constexpr int kQueriesPerTenant = 30;
  constexpr double kSlo = 0.25;  // generous for an in-process service

  Settings stage1 = functional_settings("fleet1");
  stage1.checkpoint = false;
  Settings stage2 = functional_settings("fleet2");
  stage2.checkpoint = false;

  sched::Campaign campaign;
  campaign.name = "facility";
  campaign.user = "ops";
  JobSpec sim;
  sim.name = "sim1";
  sim.user = "ops";
  sim.nodes = 2;
  sim.ranks_per_node = 2;
  sim.walltime_limit = 1e6;
  sim.payload.kind = PayloadKind::functional;
  sim.payload.settings = stage1;
  JobSpec sim2 = sim;
  sim2.name = "sim2";
  sim2.payload.settings = stage2;
  sim2.deps.push_back({0, sched::DepType::afterok});
  JobSpec tail = fixed_job("cleanup", "ops", 1, 50, 500);
  tail.deps.push_back({1, sched::DepType::afterany});
  campaign.jobs = {sim, sim2, tail};
  campaign.names = {"sim1", "sim2", "cleanup"};

  tenant::FleetConfig fc;
  fc.sched.policy = sched::Policy::backfill;
  fc.sched.cluster.nodes = 2;
  fc.service.threads = 2;
  fc.service.slo_seconds = kSlo;
  fc.query_timeout_seconds = 30.0;

  tenant::Fleet fleet(fc);
  fleet.start(campaign);
  if (!fleet.wait_for_datasets(1, 120.0)) {
    fleet.wait();
    check(gates, "campaign publishes its first dataset", false,
          "no dataset published within 120s");
    return;
  }

  // Three tenants query whatever is published right now — deliberately
  // racing the still-running campaign.
  const std::vector<std::string> tenants = {"alice", "bob", "carol"};
  std::vector<std::thread> threads;
  for (const auto& who : tenants) {
    threads.emplace_back([&fleet, who] {
      for (int i = 0; i < kQueriesPerTenant; ++i) {
        const auto sets = fleet.datasets();
        const auto& ds = sets[static_cast<std::size_t>(i) % sets.size()];
        (void)fleet.query(who, ds, gs::svc::FieldStatsQ{"U", 0});
      }
    });
  }
  for (auto& t : threads) t.join();
  fleet.wait();

  check(gates, "campaign completed all stages",
        fleet.scheduler().stats().completed == 3,
        "stages missing from COMPLETED");
  check(gates, "both datasets published", fleet.datasets().size() == 2,
        std::to_string(fleet.datasets().size()) + " published");

  const auto stats = fleet.serving_stats();
  std::uint64_t server_ok = 0;
  for (const auto& ds : fleet.datasets()) {
    for (const auto& [name, tm] : fleet.service_metrics(ds).tenants) {
      (void)name;
      server_ok += tm.completed_ok;
    }
  }
  std::uint64_t client_ok = 0;
  bool p99_ok = true;
  std::string p99_detail;
  for (const auto& who : tenants) {
    const auto it = stats.find(who);
    if (it == stats.end()) continue;
    client_ok += it->second.ok;
    std::printf("  %-8s ok=%llu err=%llu slo_viol=%llu p50=%.1fms "
                "p95=%.1fms p99=%.1fms\n",
                who.c_str(), (unsigned long long)it->second.ok,
                (unsigned long long)it->second.errors,
                (unsigned long long)it->second.slo_violations,
                1e3 * it->second.latency_p50, 1e3 * it->second.latency_p95,
                1e3 * it->second.latency_p99);
    if (it->second.latency_p99 > kSlo) {
      p99_ok = false;
      p99_detail = who + " p99 " +
                   std::to_string(1e3 * it->second.latency_p99) + "ms > " +
                   std::to_string(1e3 * kSlo) + "ms";
    }
  }
  const std::uint64_t want_ok =
      static_cast<std::uint64_t>(tenants.size()) * kQueriesPerTenant;
  check(gates, "every tenant query succeeded", client_ok == want_ok,
        std::to_string(client_ok) + " of " + std::to_string(want_ok));
  check(gates, "server-side per-tenant counters agree",
        server_ok == want_ok,
        "server counted " + std::to_string(server_ok));
  if (slo_nonfatal && !p99_ok) {
    std::printf("  p99 over SLO (informational: GS_TENANT_SLO_NONFATAL "
                "set) — %s\n",
                p99_detail.c_str());
  } else {
    check(gates, "per-tenant p99 within SLO", p99_ok, p99_detail);
  }
}

// ---- phase 4: fair-share across tenants ----------------------------------

void phase_fairshare(std::vector<Gate>& gates) {
  std::printf("\nphase 4: decaying fair-share orders the contention wave\n");
  SchedulerConfig cfg;
  cfg.policy = sched::Policy::fair_share;
  cfg.cluster.nodes = 4;
  cfg.usage_halflife = 3600.0;
  Scheduler s(cfg);

  // Wave 1: "heavy" burns 800 node-seconds of history.
  std::vector<sched::JobId> w1;
  for (int i = 0; i < 4; ++i) {
    w1.push_back(s.submit(
        fixed_job("burn" + std::to_string(i), "heavy", 1, 200, 2000)));
  }
  // Wave 2 at t=250: both tenants want 2x2 nodes; only half fits.
  std::vector<sched::JobId> heavy2, fresh2;
  for (int i = 0; i < 2; ++i) {
    heavy2.push_back(
        s.submit(fixed_job("h" + std::to_string(i), "heavy", 2, 50, 2000),
                 /*submit_at=*/250.0));
    fresh2.push_back(
        s.submit(fixed_job("f" + std::to_string(i), "fresh", 2, 50, 2000),
                 /*submit_at=*/250.0));
  }
  s.run();

  double heavy_last = 0.0, fresh_last = 0.0;
  bool all_done = true;
  for (const auto id : heavy2) {
    heavy_last = std::max(heavy_last, s.job(id).start_time);
    all_done &= s.job(id).state == JobState::completed;
  }
  for (const auto id : fresh2) {
    fresh_last = std::max(fresh_last, s.job(id).start_time);
    all_done &= s.job(id).state == JobState::completed;
  }
  std::printf("  heavy usage at t=250: %.0f node-s; fresh last start %.0fs,"
              " heavy last start %.0fs\n",
              s.ledger().usage("heavy", 250.0), fresh_last, heavy_last);
  check(gates, "wave-2 jobs all completed", all_done, "incomplete wave");
  check(gates, "fresh tenant starts strictly before heavy",
        fresh_last < heavy_last, "fresh waited behind the heavy tenant");
}

}  // namespace

int main() {
  fs::create_directories(work_dir());
  const bool slo_nonfatal = std::getenv("GS_TENANT_SLO_NONFATAL") != nullptr;
  std::vector<Gate> gates;

  phase_preemption(gates);
  phase_churn(gates);
  phase_serving(gates, slo_nonfatal);
  phase_fairshare(gates);

  std::printf("\n");
  const int failures = report(gates);
  std::printf("\ntenant SLO gates: %zu checked, %d failed\n", gates.size(),
              failures);
  fs::remove_all(work_dir());
  return failures == 0 ? 0 : 1;
}
