// extension_reshard — the epoch-handover gate of the gs::shard tier:
// live resharding with ZERO wrong answers. A real solver dataset is
// served by up to 5 in-process daemons behind a router, and the cluster
// is grown 4 -> 5 and shrunk 5 -> 3 WHILE clients hammer it, with every
// answer checked bit-for-bit against a single-daemon ground truth.
//
// Phases:
//   1. generate the dataset, precompute the answer-identity CRC of every
//      query in the request space, and enumerate the dataset's block
//      keys (the ring-movement bound is computed from these);
//   2. live grow 4 -> 5: daemons adopt the epoch-2 map first (one shard,
//      s1, deliberately never acks), the router flips last, all while
//      client threads sweep the full query space through the wire path.
//      Gates: zero wrong answers, exact answers on both sides of the
//      flip, the non-acking shard is DEGRADED-NOT-WRONG (failover keeps
//      the fleet exact; a no-failover router names s1 explicitly), and
//      the daemons' summed replacement plans equal the ring's
//      minimal-movement diff exactly;
//   3. shrink 5 -> 3 with a stale-epoch client: a router that never
//      reloads keeps answering exactly inside the daemons' grace window
//      and degrades explicitly - never silently stale - once it closes;
//   4. chaos matrix on the committed map file and the handover itself:
//      a torn map write is rejected (old epoch keeps serving), a kill
//      between staging write and rename leaves exactly ONE committed
//      epoch (recover_map cleans the orphan), a failed block warm
//      (shard.replace) degrades the warm-up but never the answers, and
//      a kill mid-drain (shard.drain) "crashes" the router after
//      publish — the restart recovers from the committed map and the
//      final sweep is 100% exact.
//
// Default scale finishes in seconds (CI smoke); pass a multiplier to
// scale the per-pass request count, e.g. `extension_reshard 4`.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bp/reader.h"
#include "common/checksum.h"
#include "core/workflow.h"
#include "fault/fault.h"
#include "mpi/runtime.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "shard/map.h"
#include "shard/reshard.h"
#include "shard/router.h"
#include "svc/service.h"

namespace {

constexpr const char* kDataset = "/tmp/gs_reshard.bp";
constexpr const char* kMapFile = "/tmp/gs_reshard_map.json";
constexpr std::size_t kQuerySpace = 48;
constexpr double kGraceSeconds = 2.0;

struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

gs::svc::Request make_query(std::size_t q, std::int64_t n_steps,
                            std::int64_t L) {
  Lcg rng{0xE90C4BADF00Dull ^ (q * 2654435761ull)};
  const std::int64_t step = static_cast<std::int64_t>(
      rng.next() % static_cast<std::uint64_t>(n_steps));
  gs::svc::Request request;
  switch (q % 5) {
    case 0:
      request.body = gs::svc::ListVariablesQ{};
      break;
    case 1:
      request.body = gs::svc::FieldStatsQ{q % 2 ? "U" : "V", step};
      break;
    case 2:
      request.body = gs::svc::HistogramQ{q % 2 ? "V" : "U", step, 32};
      break;
    case 3:
      request.body = gs::svc::Slice2DQ{
          "U", step, 2,
          static_cast<std::int64_t>(rng.next() %
                                    static_cast<std::uint64_t>(L))};
      break;
    default: {
      const std::int64_t half = L / 2;
      request.body = gs::svc::ReadBoxQ{
          "V", step,
          gs::Box3{{0, 0,
                    static_cast<std::int64_t>(
                        rng.next() % static_cast<std::uint64_t>(half))},
                   {half, half, half}}};
      break;
    }
  }
  return request;
}

std::uint32_t identity_crc(const gs::svc::Response& response) {
  const auto bytes = gs::rpc::encode_answer_identity(response);
  return gs::crc32(std::span<const std::byte>(bytes.data(), bytes.size()));
}

struct PassResult {
  std::uint64_t exact = 0;
  std::uint64_t degraded = 0;  ///< explicitly flagged — never silent
  std::uint64_t wrong = 0;     ///< mismatched WITHOUT a flag: the cardinal sin
  std::uint64_t failed = 0;
  std::string sample_degraded;  ///< one degraded status message, for naming

  void add(const gs::svc::Response& response,
           const std::vector<std::uint32_t>& expected, std::size_t q) {
    if (response.status.ok() && !response.degraded &&
        identity_crc(response) == expected[q]) {
      ++exact;
    } else if (response.degraded || !response.status.ok()) {
      ++degraded;
      if (sample_degraded.empty()) sample_degraded = response.status.message;
    } else {
      ++wrong;
      std::printf("WRONG: query %zu answered ok+undegraded with a "
                  "mismatched identity\n",
                  q);
    }
  }

  void merge(const PassResult& other) {
    exact += other.exact;
    degraded += other.degraded;
    wrong += other.wrong;
    failed += other.failed;
    if (sample_degraded.empty()) sample_degraded = other.sample_degraded;
  }
};

/// One full sweep of the query space straight through a Router.
PassResult sweep_router(gs::shard::Router& router,
                        const std::vector<std::uint32_t>& expected,
                        std::int64_t n_steps, std::int64_t L) {
  PassResult result;
  for (std::size_t q = 0; q < kQuerySpace; ++q) {
    result.add(router.call(make_query(q, n_steps, L)), expected, q);
  }
  return result;
}

/// `rounds` sweeps through the wire path (rpc::Client -> front server).
PassResult sweep_wire(const gs::rpc::Endpoint& endpoint, std::size_t rounds,
                      const std::vector<std::uint32_t>& expected,
                      std::int64_t n_steps, std::int64_t L) {
  PassResult result;
  gs::rpc::ClientConfig config;
  config.retries = 6;
  config.backoff_ms = 1.0;
  gs::rpc::Client client(endpoint, config);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t q = 0; q < kQuerySpace; ++q) {
      try {
        result.add(client.call(make_query(q, n_steps, L)), expected, q);
      } catch (const gs::IoError&) {
        ++result.failed;
      }
    }
  }
  return result;
}

/// Every block key of the dataset — the universe the ring-movement bound
/// is computed over (mirrors Service::reload_shard_map's plan walk).
std::vector<std::string> dataset_block_keys() {
  gs::bp::Reader reader(kDataset);
  std::vector<std::string> keys;
  for (const auto& name : reader.variable_names()) {
    const auto info = reader.info(name);
    for (std::int64_t step = 0; step < info.steps; ++step) {
      std::size_t n_blocks = 0;
      try {
        n_blocks = reader.blocks(name, step).size();
      } catch (const gs::Error&) {
        continue;  // scalar variable: no block layout
      }
      for (std::size_t b = 0; b < n_blocks; ++b) {
        keys.push_back(gs::shard::Ring::block_key(name, step, b));
      }
    }
  }
  return keys;
}

/// The 5-daemon fleet: every daemon runs from construction; which subset
/// SERVES is decided by the epoch maps alone. Daemons keep their own
/// epochs (reload_service flips one), the router its own.
struct Fleet {
  static std::string endpoint_of(std::size_t i) {
    return "unix:/tmp/gs_reshard_" + std::to_string(i) + ".sock";
  }

  static std::shared_ptr<const gs::shard::ShardMap> make_map(
      std::uint64_t epoch, std::size_t n_shards) {
    std::vector<gs::shard::ShardInfo> infos;
    for (std::size_t i = 0; i < n_shards; ++i) {
      infos.push_back(
          gs::shard::ShardInfo{"s" + std::to_string(i), endpoint_of(i)});
    }
    return std::make_shared<const gs::shard::ShardMap>(epoch, 64,
                                                       std::move(infos));
  }

  explicit Fleet(std::shared_ptr<const gs::shard::ShardMap> initial) {
    for (std::size_t i = 0; i < 5; ++i) {
      gs::svc::ServiceConfig config;
      config.threads = 2;
      config.shard_map = initial;
      config.shard_id = "s" + std::to_string(i);
      config.reload_grace_seconds = kGraceSeconds;
      services.push_back(
          std::make_unique<gs::svc::Service>(kDataset, std::move(config)));
      gs::rpc::ServerConfig server_config;
      server_config.listen = endpoint_of(i);
      auto server =
          std::make_unique<gs::rpc::Server>(*services.back(), server_config);
      servers.push_back(std::move(server));
    }
    gs::shard::RouterConfig router_config;
    router_config.probe_interval_ms = 50;
    router = std::make_unique<gs::shard::Router>(initial, router_config);
    start_front();
  }

  ~Fleet() {
    if (front) front->shutdown();
    if (router) router->shutdown();
    for (auto& s : servers) s->shutdown();
    for (auto& s : services) s->shutdown();
  }

  void start_front() {
    gs::rpc::ServerConfig front_config;
    front_config.max_connections = 64;
    front = std::make_unique<gs::rpc::Server>(*router, front_config);
  }

  gs::shard::ReplacementStats reload_service(
      std::size_t i, std::shared_ptr<const gs::shard::ShardMap> next) {
    return services[i]->reload_shard_map(std::move(next));
  }

  std::vector<std::unique_ptr<gs::svc::Service>> services;
  std::vector<std::unique_ptr<gs::rpc::Server>> servers;
  std::unique_ptr<gs::shard::Router> router;
  std::unique_ptr<gs::rpc::Server> front;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t scale = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::size_t rounds = 2 * (scale ? scale : 1);
  bool failed = false;

  std::printf("==============================================================\n");
  std::printf("Extension — gs::shard epoch handover: live resharding gate\n");
  std::printf("==============================================================\n\n");

  // Phase 1: dataset, ground truth, and the block-key universe.
  gs::Settings settings;
  settings.L = 32;
  settings.steps = 20;
  settings.plotgap = 4;
  settings.noise = 0.1;
  settings.output = kDataset;
  settings.ranks_per_node = 4;
  std::filesystem::remove_all(kDataset);
  gs::mpi::run(8, [&](gs::mpi::Comm& world) {
    gs::core::Workflow wf(settings, world);
    wf.run();
  });
  const std::int64_t n_steps = settings.steps / settings.plotgap;
  const std::int64_t L = settings.L;

  std::vector<std::uint32_t> expected(kQuerySpace);
  {
    gs::svc::Service single(kDataset, gs::svc::ServiceConfig{});
    for (std::size_t q = 0; q < kQuerySpace; ++q) {
      const auto response = single.call(make_query(q, n_steps, L));
      if (!response.status.ok()) {
        std::printf("FAIL: ground-truth query %zu failed: %s\n", q,
                    response.status.message.c_str());
        return 1;
      }
      expected[q] = identity_crc(response);
    }
  }
  const std::vector<std::string> keys = dataset_block_keys();
  std::printf("dataset: %s  (%zu queries, %zu block keys)\n\n", kDataset,
              kQuerySpace, keys.size());

  const auto map1 = Fleet::make_map(1, 4);  // serving: s0..s3
  const auto map2 = Fleet::make_map(2, 5);  // grow:    s0..s4
  const auto map3 = Fleet::make_map(3, 3);  // shrink:  s0..s2
  const auto map4 = Fleet::make_map(4, 4);  // chaos:   s0..s3

  Fleet fleet(map1);

  // Phase 2: live grow 4 -> 5 under client traffic. Daemons flip first
  // (s1 deliberately never acks), the router flips last.
  {
    std::printf("-- live grow 4 -> 5 (epoch 1 -> 2), s1 never acks --\n");
    std::atomic<bool> stop{false};
    std::vector<PassResult> thread_results(2);
    std::vector<std::thread> traffic;
    for (std::size_t t = 0; t < thread_results.size(); ++t) {
      traffic.emplace_back([&, t] {
        while (!stop.load(std::memory_order_acquire)) {
          thread_results[t].merge(sweep_wire(fleet.front->endpoint(), 1,
                                             expected, n_steps, L));
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::uint64_t planned_sum = 0;
    for (const std::size_t i : {0u, 2u, 3u, 4u}) {
      const auto stats = fleet.reload_service(i, map2);
      planned_sum += stats.blocks_planned;
      if (stats.blocks_failed != 0) {
        std::printf("FAIL: clean grow warmed with %llu failures on s%zu\n",
                    (unsigned long long)stats.blocks_failed, i);
        failed = true;
      }
    }
    const auto handover = fleet.router->reload_map(map2);
    std::printf("router: epoch %llu -> %llu, +%zu shards, %s in %.3fs\n",
                (unsigned long long)handover.epoch_from,
                (unsigned long long)handover.epoch_to, handover.shards_added,
                handover.drained ? "drained" : "DRAIN TIMED OUT",
                handover.drain_seconds);

    for (std::size_t r = 0; r < rounds; ++r) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : traffic) t.join();
    PassResult live;
    for (const auto& r : thread_results) live.merge(r);
    std::printf("live traffic: exact=%llu degraded=%llu wrong=%llu "
                "failed=%llu\n",
                (unsigned long long)live.exact,
                (unsigned long long)live.degraded,
                (unsigned long long)live.wrong,
                (unsigned long long)live.failed);
    if (live.wrong != 0 || live.exact == 0) {
      std::printf("FAIL: live grow must keep every answer right and keep "
                  "answering\n");
      failed = true;
    }
    if (!handover.drained) {
      std::printf("FAIL: grow abandoned %llu in-flight queries\n",
                  (unsigned long long)handover.inflight_abandoned);
      failed = true;
    }

    // Past the grace window, s1 still refuses epoch 2. Failover keeps
    // the fleet exact; a no-failover router must NAME the missing shard.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(kGraceSeconds * 1000) +
                                  500));
    const auto fo = sweep_router(*fleet.router, expected, n_steps, L);
    std::printf("failover sweep past grace: exact=%llu degraded=%llu "
                "wrong=%llu (failovers=%llu)\n",
                (unsigned long long)fo.exact, (unsigned long long)fo.degraded,
                (unsigned long long)fo.wrong,
                (unsigned long long)fleet.router->stats().failovers);
    if (fo.exact != kQuerySpace || fo.wrong != 0) {
      std::printf("FAIL: failover must keep a non-acking shard invisible\n");
      failed = true;
    }
    {
      gs::shard::RouterConfig no_failover;
      no_failover.failover = false;
      no_failover.probe_interval_ms = 0;
      gs::shard::Router blunt(map2, no_failover);
      const auto nf = sweep_router(blunt, expected, n_steps, L);
      std::printf("no-failover sweep: exact=%llu degraded=%llu wrong=%llu "
                  "(\"%s\")\n",
                  (unsigned long long)nf.exact,
                  (unsigned long long)nf.degraded,
                  (unsigned long long)nf.wrong, nf.sample_degraded.c_str());
      if (nf.wrong != 0 || nf.degraded == 0 ||
          nf.sample_degraded.find("s1") == std::string::npos) {
        std::printf("FAIL: the non-acking shard must be degraded-not-wrong "
                    "and NAMED\n");
        failed = true;
      }
      blunt.shutdown();
    }

    // s1 finally acks; the fleet must be whole again and the summed
    // replacement plans must equal the ring's minimal-movement diff.
    planned_sum += fleet.reload_service(1, map2).blocks_planned;
    const auto whole = sweep_router(*fleet.router, expected, n_steps, L);
    const std::size_t bound =
        gs::shard::moved_keys(gs::shard::Ring(*map1), gs::shard::Ring(*map2),
                              std::span<const std::string>(keys))
            .size();
    std::printf("post-ack sweep: exact=%llu/%zu; replacement plans %llu "
                "blocks vs ring movement bound %zu\n",
                (unsigned long long)whole.exact, kQuerySpace,
                (unsigned long long)planned_sum, bound);
    if (whole.exact != kQuerySpace) {
      std::printf("FAIL: fleet not exact after the late ack\n");
      failed = true;
    }
    if (planned_sum != bound || bound == 0) {
      std::printf("FAIL: replacement plans violate the ring's "
                  "minimal-movement bound\n");
      failed = true;
    }
    std::printf("\n");
  }

  // Phase 3: shrink 5 -> 3 with a stale-epoch client watching.
  {
    std::printf("-- shrink 5 -> 3 (epoch 2 -> 3), stale client pinned to "
                "epoch 2 --\n");
    gs::shard::RouterConfig stale_config;
    stale_config.failover = false;
    stale_config.probe_interval_ms = 0;
    gs::shard::Router stale(map2, stale_config);  // never reloads

    std::uint64_t planned_sum = 0;
    for (const std::size_t i : {0u, 1u, 2u}) {
      planned_sum += fleet.reload_service(i, map3).blocks_planned;
    }
    // Inside the grace window the stale client still gets exact answers.
    const auto inside = sweep_router(stale, expected, n_steps, L);
    const auto handover = fleet.router->reload_map(map3);
    std::printf("router: epoch %llu -> %llu, -%zu shards\n",
                (unsigned long long)handover.epoch_from,
                (unsigned long long)handover.epoch_to,
                handover.shards_removed);
    const auto fresh = sweep_router(*fleet.router, expected, n_steps, L);
    const std::size_t bound =
        gs::shard::moved_keys(gs::shard::Ring(*map2), gs::shard::Ring(*map3),
                              std::span<const std::string>(keys))
            .size();
    std::printf("inside grace: stale client exact=%llu/%zu; fresh router "
                "exact=%llu/%zu; plans %llu vs bound %zu\n",
                (unsigned long long)inside.exact, kQuerySpace,
                (unsigned long long)fresh.exact, kQuerySpace,
                (unsigned long long)planned_sum, bound);
    if (inside.exact != kQuerySpace || inside.wrong != 0) {
      std::printf("FAIL: grace window must keep the stale client exact\n");
      failed = true;
    }
    if (fresh.exact != kQuerySpace) {
      std::printf("FAIL: shrunk fleet must stay exact\n");
      failed = true;
    }
    if (planned_sum != bound || bound == 0) {
      std::printf("FAIL: shrink replacement plans violate the movement "
                  "bound\n");
      failed = true;
    }

    // Past the grace window the stale client must degrade EXPLICITLY —
    // never answer silently stale.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(kGraceSeconds * 1000) +
                                  500));
    const auto outside = sweep_router(stale, expected, n_steps, L);
    std::printf("past grace: stale client exact=%llu degraded=%llu "
                "wrong=%llu (\"%s\")\n",
                (unsigned long long)outside.exact,
                (unsigned long long)outside.degraded,
                (unsigned long long)outside.wrong,
                outside.sample_degraded.c_str());
    if (outside.wrong != 0 || outside.degraded == 0) {
      std::printf("FAIL: a stale-epoch client must degrade, not lie\n");
      failed = true;
    }
    stale.shutdown();
    std::printf("\n");
  }

  // Phase 4: chaos on the committed map file and the handover itself.
  {
    std::printf("-- chaos: torn writes, mid-commit and mid-drain kills --\n");
    std::filesystem::remove(kMapFile);
    std::filesystem::remove(std::string(kMapFile) + ".staging");
    gs::shard::commit_map(*map3, kMapFile);  // the committed state: epoch 3

    // (a) Torn write: the corrupted candidate must be REJECTED and the
    // old epoch must keep serving.
    {
      gs::fault::Plan plan;
      plan.arm("shard.reload", 0,
               gs::fault::Injection{gs::fault::Kind::corrupt, 0.0, 0x40, 0});
      gs::fault::ScopedPlan scoped(plan);
      gs::shard::commit_map(*map4, kMapFile);  // commits torn bytes
    }
    {
      gs::shard::WatcherConfig watch_config;
      watch_config.poll_ms = 0;  // explicit triggers only
      gs::shard::MapWatcher watcher(
          kMapFile,
          [&](gs::shard::ShardMap next) {
            return fleet.router
                ->reload_map(std::make_shared<const gs::shard::ShardMap>(
                    std::move(next)))
                .to_json();
          },
          watch_config);
      watcher.trigger();
      const auto wstats = watcher.stats();
      std::printf("torn write: watcher rejected=%llu (\"%s\"), router "
                  "epoch=%llu\n",
                  (unsigned long long)wstats.rejected,
                  wstats.last_error.c_str(),
                  (unsigned long long)fleet.router->map()->epoch());
      if (wstats.rejected == 0 || fleet.router->map()->epoch() != 3) {
        std::printf("FAIL: a torn map must be rejected with the old epoch "
                    "serving\n");
        failed = true;
      }
    }
    const auto after_torn = sweep_router(*fleet.router, expected, n_steps, L);
    if (after_torn.exact != kQuerySpace) {
      std::printf("FAIL: fleet not exact after the torn-write rejection\n");
      failed = true;
    }

    // (b) Kill between staging write and rename: exactly ONE committed
    // epoch either side of the crash; recover_map removes the orphan.
    gs::shard::commit_map(*map3, kMapFile);  // restore a clean epoch 3
    bool killed = false;
    try {
      gs::fault::Plan plan;
      plan.arm("shard.reload", 1,
               gs::fault::Injection{gs::fault::Kind::kill});
      gs::fault::ScopedPlan scoped(plan);
      gs::shard::commit_map(*map4, kMapFile);
    } catch (const gs::fault::Kill&) {
      killed = true;
    }
    const auto committed = gs::shard::ShardMap::from_file(kMapFile);
    const bool staging_left = std::filesystem::exists(
        std::string(kMapFile) + ".staging");
    const bool recovered = gs::shard::recover_map(kMapFile);
    std::printf("mid-commit kill: killed=%d, committed epoch=%llu, staging "
                "recovered=%d\n",
                killed ? 1 : 0, (unsigned long long)committed.epoch(),
                (staging_left && recovered) ? 1 : 0);
    if (!killed || committed.epoch() != 3 || !staging_left || !recovered) {
      std::printf("FAIL: a mid-commit crash must leave exactly one "
                  "committed epoch\n");
      failed = true;
    }

    // (c) Warm-up failure + mid-drain kill. The daemons adopt epoch 4
    // with one block warm FAILING (degrades the warm-up, never the
    // answers); the router is killed between publish and drain, then
    // "restarts" from the committed map. The final sweep must be exact.
    gs::shard::commit_map(*map4, kMapFile);
    std::uint64_t warm_failures = 0;
    bool drain_killed = false;
    {
      gs::fault::Plan plan;
      plan.arm("shard.replace", 0,
               gs::fault::Injection{gs::fault::Kind::fail});
      plan.arm("shard.drain", 0, gs::fault::Injection{gs::fault::Kind::kill});
      gs::fault::ScopedPlan scoped(plan);
      const auto from_disk = std::make_shared<const gs::shard::ShardMap>(
          gs::shard::ShardMap::from_file(kMapFile));
      for (const std::size_t i : {0u, 1u, 2u, 3u}) {
        warm_failures += fleet.reload_service(i, from_disk).blocks_failed;
      }
      try {
        fleet.router->reload_map(from_disk);
      } catch (const gs::fault::Kill&) {
        drain_killed = true;
      }
    }
    // The "crashed" router process restarts from the committed map.
    fleet.front->shutdown();
    fleet.router->shutdown();
    fleet.router = std::make_unique<gs::shard::Router>(
        std::make_shared<const gs::shard::ShardMap>(
            gs::shard::ShardMap::from_file(kMapFile)),
        gs::shard::RouterConfig{});
    fleet.start_front();
    const auto final_sweep =
        sweep_wire(fleet.front->endpoint(), 1, expected, n_steps, L);
    std::printf("mid-drain kill: warm failures=%llu, drain killed=%d, "
                "restarted epoch=%llu, final sweep exact=%llu/%zu\n",
                (unsigned long long)warm_failures, drain_killed ? 1 : 0,
                (unsigned long long)fleet.router->map()->epoch(),
                (unsigned long long)final_sweep.exact, kQuerySpace);
    if (warm_failures == 0) {
      std::printf("FAIL: the shard.replace fault never fired — gate is "
                  "vacuous\n");
      failed = true;
    }
    if (!drain_killed || fleet.router->map()->epoch() != 4 ||
        final_sweep.exact != kQuerySpace || final_sweep.wrong != 0) {
      std::printf("FAIL: a mid-drain crash must recover to the committed "
                  "epoch with exact answers\n");
      failed = true;
    }
  }

  std::filesystem::remove(kMapFile);
  std::filesystem::remove(std::string(kMapFile) + ".staging");
  std::filesystem::remove_all(kDataset);
  std::printf("\n%s\n", failed ? "FAILED" : "OK");
  return failed ? 1 : 0;
}
