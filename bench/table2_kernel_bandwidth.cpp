// Reproduces paper Table 2: "Average bandwidth comparison of different
// stencil implementations on a single GPU" — effective (Eq. 5a) and total
// (Eq. 5b) bandwidth for the Julia 2-variable application kernel, the
// Julia 1-variable no-random kernel, and the native HIP kernel, against
// the MI250x theoretical peak.
#include <cstdio>

#include "bench/kernel_characterization.h"
#include "common/format.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Table 2 — Average bandwidth of stencil implementations on a\n");
  std::printf("single (simulated) MI250x GCD, projected to L=1024\n");
  std::printf("==============================================================\n");
  std::printf("Method: cache-simulated functional kernels at a scaled\n");
  std::printf("geometry preserving the k-plane/L2 ratio; durations from the\n");
  std::printf("calibrated occupancy model (see DESIGN.md / calibration.h).\n\n");

  const auto rows = gs::bench::characterize_kernels();

  gs::TableFormatter t({"Kernel", "Effective (GB/s)", "Total (GB/s)"});
  for (const auto& c : rows) {
    t.row({c.label, gs::format_fixed(c.bw_effective / 1e9, 0),
           gs::format_fixed(c.bw_total / 1e9, 0)});
  }
  const gs::gpu::DeviceProps dev;
  t.row({"Theoretical peak MI250x (per GCD)", "",
         gs::format_fixed(dev.hbm_bandwidth / 1e9, 0)});
  std::printf("%s\n", t.str().c_str());

  // The paper's headline comparison.
  const double julia_total = rows[0].bw_total;
  const double hip_total = rows[2].bw_total;
  std::printf("Julia/HIP total-bandwidth ratio: %.2f (paper: 570/1163 = 0.49)\n",
              julia_total / hip_total);
  std::printf("Paper reference values: Julia 2-var 312/570, Julia 1-var\n");
  std::printf("312/625, HIP 599/1163, peak 1600 GB/s.\n");
  return 0;
}
