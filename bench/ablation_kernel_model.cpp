// Ablation of the kernel performance model — what would close the
// paper's ~50% Julia-vs-HIP gap ("performance gaps still exist and must
// be closed as we look forward to future versions of the actively
// developed AMDGPU.jl", paper Conclusions).
//
// Part 1 sweeps hypothetical AMDGPU.jl codegen fixes through the
// occupancy model. Part 2 sweeps the L2 capacity through the cache
// simulator to show where the 3x stencil fetch amplification (the
// Table 2 effective-vs-total gap) comes from and what a plane-blocked
// kernel would recover.
#include <cstdio>

#include <vector>

#include "common/format.h"
#include "core/kernels.h"
#include "gpu/cache_sim.h"
#include "gpu/device_props.h"

namespace {

void part1_occupancy() {
  std::printf("Part 1 — codegen ablation through the occupancy model\n");
  std::printf("(2-variable application kernel at 1024^3, with RNG)\n\n");

  struct Variant {
    const char* label;
    gs::gpu::BackendProfile backend;
    bool rng;
  };
  std::vector<Variant> variants;
  variants.push_back({"AMDGPU.jl v0.4.15 as measured (paper)",
                      gs::gpu::julia_amdgpu_backend(), true});

  auto v = gs::gpu::julia_amdgpu_backend();
  v.rng_bandwidth_penalty = 1.0;
  variants.push_back({"+ vectorized device RNG (no scalar RNG drag)", v,
                      false});

  v.scratch_per_item = 0;
  variants.push_back({"+ no scratch spills (scr 0)", v, false});

  auto lds_fixed = v;
  lds_fixed.lds_per_workgroup = 0;
  variants.push_back({"+ no runtime LDS footprint (lds 0)", lds_fixed,
                      false});

  auto wg256 = lds_fixed;
  wg256.workgroup = {256, 1, 1};
  variants.push_back({"+ workgroup 256 (HIP launch shape)", wg256, false});

  variants.push_back({"native HIP reference", gs::gpu::hip_backend(),
                      false});

  const gs::gpu::DeviceProps dev;
  gs::TableFormatter t({"codegen variant", "occupancy", "total BW (GB/s)",
                        "vs HIP"});
  const double hip_bw =
      gs::gpu::achieved_bandwidth(dev, gs::gpu::hip_backend(), false);
  for (const auto& var : variants) {
    const auto occ = gs::gpu::compute_occupancy(dev, var.backend);
    const double bw =
        gs::gpu::achieved_bandwidth(dev, var.backend, var.rng);
    t.row({var.label,
           gs::format_fixed(100.0 * occ.fraction, 0) + " %",
           gs::format_fixed(bw / 1e9, 0),
           gs::format_fixed(100.0 * bw / hip_bw, 0) + " %"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Finding: the LDS footprint is the whole 2x gap — removing\n");
  std::printf("the runtime's 29,184 B/workgroup restores full occupancy\n");
  std::printf("and HIP-level bandwidth; scratch and the scalarized RNG\n");
  std::printf("are second-order. This matches the paper's hypothesis that\n");
  std::printf("the difference is 'beyond the IR level'.\n\n");
}

void part2_cache_sweep() {
  std::printf("Part 2 — stencil fetch amplification vs. L2 capacity\n");
  std::printf("(7-point sweep over a 96^2 x 48 grid; k-plane = 72 KiB)\n\n");

  const gs::Index3 ext{96, 96, 48};
  std::vector<double> grid(static_cast<std::size_t>(ext.volume()));
  const auto base = reinterpret_cast<std::uintptr_t>(grid.data());
  const auto addr = [&](std::int64_t i, std::int64_t j, std::int64_t k) {
    return base +
           static_cast<std::uintptr_t>(gs::linear_index({i, j, k}, ext) * 8);
  };
  const double minimal = static_cast<double>(ext.volume()) * 8.0;

  gs::TableFormatter t({"L2 size", "planes resident", "FETCH amplification"});
  for (const std::uint64_t l2 : {16ull << 10, 64ull << 10, 128ull << 10,
                                 256ull << 10, 1ull << 20, 4ull << 20}) {
    gs::gpu::CacheSim cache(l2, 64, 16);
    for (std::int64_t k = 1; k < ext.k - 1; ++k) {
      for (std::int64_t j = 1; j < ext.j - 1; ++j) {
        for (std::int64_t i = 1; i < ext.i - 1; ++i) {
          cache.read(addr(i - 1, j, k), 8);
          cache.read(addr(i + 1, j, k), 8);
          cache.read(addr(i, j - 1, k), 8);
          cache.read(addr(i, j + 1, k), 8);
          cache.read(addr(i, j, k - 1), 8);
          cache.read(addr(i, j, k + 1), 8);
          cache.read(addr(i, j, k), 8);
        }
      }
    }
    cache.flush();
    const double amp =
        static_cast<double>(cache.counters().fetch_bytes) / minimal;
    const double planes = static_cast<double>(l2) / (96.0 * 96.0 * 8.0);
    t.row({gs::format_bytes(l2), gs::format_fixed(planes, 2),
           gs::format_fixed(amp, 2) + "x"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Finding: amplification sits at ~3x while fewer than three\n");
  std::printf("k-planes fit (each line is refetched for the k-1/k/k+1\n");
  std::printf("passes) and collapses toward 1x once they do — the regime\n");
  std::printf("the MI250x sits in at L=1024 (25.08 GB fetched vs the 8.59\n");
  std::printf("GB minimum, Table 3), and the source of the Table 2\n");
  std::printf("effective-vs-total bandwidth split.\n");
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — closing the Julia/HIP kernel gap\n");
  std::printf("==============================================================\n\n");
  part1_occupancy();
  part2_cache_sweep();
  return 0;
}
