// Reproduces paper Figure 7: per-GPU bandwidth distribution of the first
// JIT-compiled run vs. the optimized (warm) kernel on 4,096 GPUs over 20
// simulation steps. The JIT run lands at ~8% of the optimized bandwidth
// (the ~12.5x first-call cost the paper discusses).
#include <cstdio>

#include "common/format.h"
#include "common/stats.h"
#include "perf/weak_scaling.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Figure 7 — Per-GPU effective bandwidth distribution on 4,096\n");
  std::printf("GPUs: first (JIT) launch vs. optimized (warm) kernel\n");
  std::printf("==============================================================\n\n");

  gs::perf::WeakScalingSimulator sim;
  const auto samples = sim.simulate(4096);

  gs::Samples warm, jit;
  for (const auto& s : samples) {
    warm.add(s.warm_bandwidth / 1e9);
    jit.add(s.jit_bandwidth / 1e9);
  }

  std::printf("Optimized kernel bandwidth (GB/s), 4,096 GPUs:\n");
  gs::Histogram hw(warm.min() * 0.995, warm.max() * 1.005, 16);
  hw.add_all(warm.values());
  std::printf("%s", hw.ascii(46).c_str());
  std::printf("  mean %.1f  p5 %.1f  p95 %.1f\n\n", warm.mean(),
              warm.percentile(5), warm.percentile(95));

  std::printf("JIT (first-launch) bandwidth (GB/s), 4,096 GPUs:\n");
  gs::Histogram hj(jit.min() * 0.98, jit.max() * 1.02, 16);
  hj.add_all(jit.values());
  std::printf("%s", hj.ascii(46).c_str());
  std::printf("  mean %.1f  p5 %.1f  p95 %.1f\n\n", jit.mean(),
              jit.percentile(5), jit.percentile(95));

  const double ratio = jit.mean() / warm.mean();
  std::printf("JIT/optimized mean bandwidth ratio: %.3f  (paper: ~0.08,\n",
              ratio);
  std::printf("i.e. the JIT launch costs ~%.1fx one warm kernel)\n",
              1.0 / ratio - 1.0);
  std::printf("Paper reference: warm effective bandwidth ~312 GB/s; JIT\n");
  std::printf("run at ~8%% of optimized.\n");
  return 0;
}
