// Ablation: lossless compression of the output stream — what the
// Figure 8 I/O costs become if the workflow enables the Gorilla XOR
// operator (ADIOS2-operator analog) on the U/V blocks.
//
// Measures real compression ratios on actual solver states at several
// evolution stages (the field's compressibility changes as the pattern
// develops), then re-prices the Figure 8 write sweep with the measured
// ratio.
#include <cstdio>

#include "bp/compress.h"
#include "common/clock.h"
#include "common/format.h"
#include "core/reference.h"
#include "lustre/lustre_model.h"
#include "perf/io_scaling.h"

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — Gorilla XOR compression of the output stream\n");
  std::printf("==============================================================\n\n");

  // Real solver states at several stages of pattern development.
  const std::int64_t L = 48;
  gs::Field3 u({L, L, L}), v({L, L, L});
  gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
  gs::core::GsParams p;
  p.noise = 0.0;

  std::printf("Compression ratio of the U field as the pattern evolves\n");
  std::printf("(%lld^3 cells, noise off):\n\n", (long long)L);
  gs::TableFormatter t({"step", "U ratio", "V ratio", "encode MB/s"});
  double late_ratio = 1.0;
  std::int64_t done = 0;
  for (const std::int64_t upto : {0LL, 50LL, 200LL, 800LL}) {
    gs::core::reference_run(u, v, p, 1, upto - done, L);
    done = upto;
    const auto u_data = u.interior_copy();
    const auto v_data = v.interior_copy();
    gs::WallTimer timer;
    const auto packed = gs::bp::compress_doubles(u_data);
    const double mbps = static_cast<double>(u_data.size() * 8) /
                        timer.seconds() / 1e6;
    const double ur = static_cast<double>(u_data.size() * 8) /
                      static_cast<double>(packed.size());
    const double vr = gs::bp::compression_ratio(v_data);
    late_ratio = ur;
    t.row({std::to_string(upto), gs::format_fixed(ur, 2),
           gs::format_fixed(vr, 2), gs::format_fixed(mbps, 0)});
  }
  std::printf("%s\n", t.str().c_str());

  // Re-price Figure 8 with the late-stage (least compressible) ratio.
  std::printf("Figure 8 write sweep re-priced at the developed-pattern "
              "ratio (%.2fx):\n\n", late_ratio);
  gs::perf::IoScalingSimulator sim;
  const gs::lustre::LustreModel lustre;
  gs::TableFormatter t2({"nodes", "raw write", "compressed write",
                         "saving"});
  for (const auto& pt : sim.sweep(512)) {
    const auto compressed_bytes = static_cast<std::uint64_t>(
        static_cast<double>(pt.bytes_per_node) / late_ratio);
    const double raw = lustre.mean_write_time(pt.nodes, pt.bytes_per_node);
    const double comp = lustre.mean_write_time(pt.nodes, compressed_bytes);
    t2.row({std::to_string(pt.nodes), gs::format_seconds(raw),
            gs::format_seconds(comp),
            gs::format_fixed(100.0 * (1.0 - comp / raw), 1) + " %"});
  }
  std::printf("%s\n", t2.str().c_str());
  std::printf("Caveats the numbers show honestly: once the pattern fills\n");
  std::printf("the domain the ratio settles near %.1fx (mantissa-noise\n",
              late_ratio);
  std::printf("bound for lossless XOR coding of doubles) — enough to\n");
  std::printf("matter for an I/O-dominated campaign, far from the order-\n");
  std::printf("of-magnitude wins lossy compressors (zfp/SZ) trade\n");
  std::printf("accuracy for. Encoding throughput is CPU-side and would\n");
  std::printf("pipeline with the BP5 aggregation in a real deployment.\n");
  return 0;
}
