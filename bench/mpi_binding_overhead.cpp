// Quantifies the Section 5.1/5.3 claim that the high-level bindings add
// near-zero overhead over the underlying transport: compares the full
// typed-datatype exchange path (pack -> message -> unpack, what
// GrayScott.jl's MPI.jl code does) against a hand-rolled raw memcpy of
// the same face plane, using google-benchmark.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "grid/field.h"
#include "grid/halo.h"
#include "mpi/datatype.h"
#include "mpi/runtime.h"

namespace {

constexpr std::int64_t kEdge = 64;
const gs::Index3 kExtent{kEdge + 2, kEdge + 2, kEdge + 2};

std::vector<double> make_field() {
  std::vector<double> f(static_cast<std::size_t>(kExtent.volume()));
  std::iota(f.begin(), f.end(), 0.0);
  return f;
}

/// Baseline: hand-rolled strided gather/scatter of one x-face (the most
/// strided plane), no abstraction.
void BM_RawFaceCopy(benchmark::State& state) {
  auto src = make_field();
  auto dst = make_field();
  const std::int64_t n = kEdge;
  std::vector<double> staging(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    std::size_t out = 0;
    for (std::int64_t k = 1; k <= n; ++k) {
      for (std::int64_t j = 1; j <= n; ++j) {
        staging[out++] = src[static_cast<std::size_t>(
            gs::linear_index({n, j, k}, kExtent))];
      }
    }
    std::size_t in = 0;
    for (std::int64_t k = 1; k <= n; ++k) {
      for (std::int64_t j = 1; j <= n; ++j) {
        dst[static_cast<std::size_t>(
            gs::linear_index({0, j, k}, kExtent))] = staging[in++];
      }
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * n * n * 8);
}
BENCHMARK(BM_RawFaceCopy);

/// The bindings path: committed subarray datatypes, pack + unpack.
void BM_DatatypePackUnpack(benchmark::State& state) {
  auto src = make_field();
  auto dst = make_field();
  const gs::Index3 interior{kEdge, kEdge, kEdge};
  const auto send_t = gs::mpi::Datatype::subarray(
      kExtent, gs::send_plane(interior, {0, +1}), sizeof(double));
  const auto recv_t = gs::mpi::Datatype::subarray(
      kExtent, gs::recv_plane(interior, {0, -1}), sizeof(double));
  std::vector<std::byte> wire(send_t.size());
  for (auto _ : state) {
    send_t.pack(src.data(), wire);
    recv_t.unpack(dst.data(), wire);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(send_t.size()));
}
BENCHMARK(BM_DatatypePackUnpack);

/// Full in-process message path: typed send through a mailbox and typed
/// receive on the other side (1-rank self-exchange, the upper bound on
/// per-message library overhead).
void BM_TypedSendRecvSelf(benchmark::State& state) {
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    auto field = make_field();
    const gs::Index3 interior{kEdge, kEdge, kEdge};
    const auto send_t = gs::mpi::Datatype::subarray(
        kExtent, gs::send_plane(interior, {0, +1}), sizeof(double));
    const auto recv_t = gs::mpi::Datatype::subarray(
        kExtent, gs::recv_plane(interior, {0, -1}), sizeof(double));
    for (auto _ : state) {
      world.send_typed(field.data(), send_t, 0, 1);
      world.recv_typed(field.data(), recv_t, 0, 1);
      benchmark::DoNotOptimize(field.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(send_t.size()));
  });
}
BENCHMARK(BM_TypedSendRecvSelf);

/// Contiguous z-face via datatype (coalesced best case).
void BM_DatatypeContiguousFace(benchmark::State& state) {
  auto src = make_field();
  auto dst = make_field();
  const gs::Index3 interior{kEdge, kEdge, kEdge};
  const auto t = gs::mpi::Datatype::subarray(
      kExtent, gs::send_plane(interior, {2, +1}), sizeof(double));
  std::vector<std::byte> wire(t.size());
  for (auto _ : state) {
    t.pack(src.data(), wire);
    t.unpack(dst.data(), wire);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_DatatypeContiguousFace);

}  // namespace

BENCHMARK_MAIN();
