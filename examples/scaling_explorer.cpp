// Interactive-style exploration of the calibrated performance models:
// answers "what would this run cost on the modeled Frontier?" for any
// rank count, grid size, backend, and output cadence — the planning tool
// a workflow engineer would actually use before burning an allocation.
//
//   $ ./scaling_explorer [ranks] [edge_per_rank] [backend]
//   $ ./scaling_explorer 4096 1024 julia_amdgpu
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/format.h"
#include "perf/io_scaling.h"
#include "perf/weak_scaling.h"

int main(int argc, char** argv) {
  std::int64_t ranks = 512;
  std::int64_t edge = 1024;
  gs::KernelBackend backend = gs::KernelBackend::julia_amdgpu;
  try {
    if (argc > 1) ranks = std::atoll(argv[1]);
    if (argc > 2) edge = std::atoll(argv[2]);
    if (argc > 3) backend = gs::backend_from_string(argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage: %s [ranks] [edge_per_rank] "
                 "[hip|julia_amdgpu]\n%s\n", argv[0], e.what());
    return 1;
  }

  gs::perf::WeakScalingConfig cfg;
  cfg.cells_per_rank_edge = edge;
  cfg.backend = backend;
  gs::perf::WeakScalingSimulator sim(cfg);

  std::printf("Plan: %lld ranks (GCDs), %lld^3 cells each, backend %s\n\n",
              (long long)ranks, (long long)edge, gs::to_string(backend));

  const double p_fail = sim.failure_probability(ranks);
  std::printf("predicted MPI-layer failure probability: %.1f %%%s\n\n",
              100.0 * p_fail,
              p_fail > 0.5 ? "  << DO NOT SUBMIT (see paper Sec. 5.2)" : "");

  std::printf("per-step cost model:\n");
  std::printf("  kernel        %s\n",
              gs::format_seconds(sim.base_kernel_time()).c_str());
  std::printf("  host staging  %s\n",
              gs::format_seconds(sim.base_staging_time_per_step()).c_str());
  std::printf("  MPI halo      %s\n",
              gs::format_seconds(sim.base_halo_time_per_step(ranks)).c_str());
  std::printf("  total/step    %s\n\n",
              gs::format_seconds(sim.base_step_time(ranks)).c_str());

  const auto outcome = sim.run(ranks);
  if (!outcome.completed) {
    std::printf("simulated submission FAILED: %s\n", outcome.failure.c_str());
    return 0;
  }
  const auto times =
      gs::perf::WeakScalingSimulator::wall_times(outcome.samples);
  std::printf("20-step run, per-process wall clock across %zu ranks:\n",
              outcome.samples.size());
  std::printf("  min %.3f s   mean %.3f s   max %.3f s   spread %.1f %%\n\n",
              times.min(), times.mean(), times.max(),
              times.spread_percent());

  // I/O cost of one output step at this scale.
  gs::perf::IoScalingConfig io_cfg;
  io_cfg.cells_per_rank_edge = edge;
  gs::perf::IoScalingSimulator io(io_cfg);
  const std::int64_t nodes = (ranks + io_cfg.ranks_per_node - 1) /
                             io_cfg.ranks_per_node;
  const auto pt = io.simulate(nodes);
  std::printf("one output step (%s total) on the Lustre model:\n",
              gs::format_bytes(pt.bytes_total).c_str());
  std::printf("  write time %.1f s at %s aggregate (%.1f %% of peak)\n",
              pt.seconds, gs::format_bandwidth_gbps(pt.aggregate_bw).c_str(),
              100.0 * pt.peak_fraction);
  return 0;
}
