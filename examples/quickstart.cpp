// Quickstart: the smallest end-to-end Gray-Scott workflow.
//
//   $ ./quickstart
//
// Runs a 32^3 simulation on 4 simulated MPI ranks (one simulated GPU
// each), writes a BP dataset, reads it back, and prints field statistics
// and an ASCII rendering of the center plane.
#include <cstdio>
#include <filesystem>

#include "analysis/analysis.h"
#include "bp/reader.h"
#include "core/workflow.h"
#include "mpi/runtime.h"

int main() {
  // 1. Configure (defaults reproduce the paper's physics constants).
  gs::Settings settings;
  settings.L = 32;
  settings.steps = 40;
  settings.plotgap = 10;
  settings.noise = 0.02;
  settings.output = "quickstart.bp";

  // 2. Run the workflow on 4 ranks (threads), one simulated GCD each.
  std::printf("Running Gray-Scott %lldx%lldx%lld for %lld steps on 4 ranks...\n",
              (long long)settings.L, (long long)settings.L,
              (long long)settings.L, (long long)settings.steps);
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    gs::core::Workflow workflow(settings, world);
    const auto report = workflow.run();
    if (world.rank() == 0) {
      std::printf("  steps: %lld, outputs: %lld, simulated device time: "
                  "%.3f s\n",
                  (long long)report.steps_run,
                  (long long)report.outputs_written,
                  report.device_seconds);
    }
  });

  // 3. Analyze the dataset (the "Jupyter notebook" stage).
  gs::bp::Reader reader(settings.output);
  std::printf("\nDataset provenance (Listing 1 style):\n%s\n",
              gs::bp::dump(reader).c_str());

  const auto last = reader.n_steps() - 1;
  const auto slice = gs::analysis::slice_from_reader(
      reader, "V", last, /*axis=*/2, settings.L / 2);
  std::printf("V center plane at step %lld (min %.3f, max %.3f):\n\n%s\n",
              (long long)reader.read_scalar("step", last), slice.min,
              slice.max, gs::analysis::ascii_render(slice, 48).c_str());

  std::filesystem::remove_all(settings.output);
  std::printf("Done. See examples/gray_scott_workflow.cpp for the full\n"
              "configurable driver and examples/analysis_notebook.cpp for\n"
              "the analysis walk-through.\n");
  return 0;
}
