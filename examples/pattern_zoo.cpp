// A tour of Pearson's pattern classes (Science 1993 — the paper's
// reference [33] and the reason Gray-Scott is the canonical workflow
// demo): sweep (F, k) presets through the full simulated workflow and
// classify the self-organized morphology of V with the pattern metrics.
//
//   $ ./pattern_zoo [steps]
//
// Each preset runs the real solver (4 MPI ranks, simulated GPUs) and
// reports coverage, connected-component counts, the heuristic class, and
// a rendering of the center plane.
#include <cstdio>
#include <cstdlib>

#include "analysis/analysis.h"
#include "analysis/pattern.h"
#include "core/sim.h"
#include "mpi/runtime.h"

namespace {

struct Preset {
  const char* name;
  double F;
  double k;
};

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t steps = argc > 1 ? std::atoll(argv[1]) : 3000;
  const std::int64_t L = 32;

  const Preset presets[] = {
      {"labyrinth (paper defaults)", 0.020, 0.048},
      {"spots / solitons", 0.025, 0.060},
      {"dense stripes", 0.035, 0.058},
      {"decay to trivial state", 0.020, 0.070},
  };

  std::printf("Pearson pattern zoo: %lld^3 cells, %lld steps per preset\n\n",
              (long long)L, (long long)steps);

  for (const auto& preset : presets) {
    gs::Settings s;
    s.L = L;
    s.F = preset.F;
    s.k = preset.k;
    s.noise = 0.0;
    s.steps = steps;
    s.backend = gs::KernelBackend::hip;  // fastest simulated path

    gs::analysis::Slice2D slice;
    gs::mpi::run(4, [&](gs::mpi::Comm& world) {
      gs::core::Simulation sim(s, world);
      sim.run_steps(steps);
      sim.sync_host();
      // Gather the global V through the collective stats path on every
      // rank; rank 0 reconstructs the center plane from its own block
      // plus gathered blocks.
      const auto block = sim.v_host().interior_copy();
      std::vector<double> all;
      world.gather(std::span<const double>(block), all, 0);
      if (world.rank() == 0) {
        std::vector<double> global(
            static_cast<std::size_t>(L * L * L));
        for (int r = 0; r < world.size(); ++r) {
          const gs::Box3 box = sim.decomp().local_box(r);
          const auto n = static_cast<std::size_t>(box.volume());
          gs::unpack_box(global, {L, L, L}, box,
                         std::span<const double>(
                             all.data() + static_cast<std::size_t>(r) * n,
                             n));
        }
        slice = gs::analysis::extract_slice(global, {L, L, L}, 2, L / 2);
      }
    });

    const auto metrics = gs::analysis::analyze_pattern(slice, 0.1);
    const double wavelength = gs::analysis::dominant_wavelength(slice);
    std::printf("--- %s (F=%.3f, k=%.3f) ---\n", preset.name, preset.F,
                preset.k);
    std::printf("coverage %.1f %%, %zu component(s), largest %zu cells, "
                "interface %.1f %% -> class: %s\n",
                100.0 * metrics.covered_fraction, metrics.component_count,
                metrics.largest_component,
                100.0 * metrics.interface_fraction,
                gs::analysis::to_string(
                    gs::analysis::classify_pattern(metrics)));
    if (wavelength > 0.0) {
      std::printf("dominant wavelength: %.1f cells\n", wavelength);
    }
    std::printf("\n");
    std::printf("%s\n", gs::analysis::ascii_render(slice, 48).c_str());
  }
  return 0;
}
