// The full configurable Gray-Scott workflow driver — the C++ equivalent
// of running GrayScott.jl with a settings-files.json (paper Appendix A).
//
//   $ ./gray_scott_workflow [settings.json] [nranks]
//
// With no arguments, uses built-in defaults (64^3, 100 steps, 8 ranks).
// The settings JSON accepts the keys documented in src/config/settings.h,
// e.g.:
//   { "L": 64, "Du": 0.2, "Dv": 0.1, "F": 0.02, "k": 0.048, "dt": 1.0,
//     "noise": 0.1, "steps": 100, "plotgap": 10,
//     "output": "gs.bp", "backend": "julia_amdgpu", "ranks_per_node": 8 }
//
// Prints the per-stage timing report, the rocprof-mini kernel table, and
// writes a Chrome trace alongside the dataset.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/format.h"
#include "core/workflow.h"
#include "mpi/runtime.h"

int main(int argc, char** argv) {
  gs::Settings settings;
  settings.L = 64;
  settings.steps = 100;
  settings.plotgap = 10;
  settings.output = "gs.bp";
  int nranks = 8;

  try {
    if (argc > 1) settings = gs::Settings::from_file(argv[1]);
    if (argc > 2) nranks = std::stoi(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading settings: %s\n", e.what());
    return 1;
  }

  std::printf("Gray-Scott workflow: L=%lld steps=%lld plotgap=%lld "
              "backend=%s ranks=%d\n",
              (long long)settings.L, (long long)settings.steps,
              (long long)settings.plotgap, gs::to_string(settings.backend),
              nranks);
  std::printf("physics: Du=%.3g Dv=%.3g F=%.3g k=%.3g dt=%.3g noise=%.3g\n\n",
              settings.Du, settings.Dv, settings.F, settings.k, settings.dt,
              settings.noise);

  gs::prof::Profiler profiler;  // rank 0's device profile
  try {
    gs::mpi::run(nranks, [&](gs::mpi::Comm& world) {
      gs::core::Workflow workflow(
          settings, world, world.rank() == 0 ? &profiler : nullptr);
      const auto report = workflow.run();
      const auto stats = workflow.simulation().global_stats();
      if (world.rank() == 0) {
        std::printf("--- run report (rank 0) ---\n");
        std::printf("steps run          : %lld\n",
                    (long long)report.steps_run);
        std::printf("outputs written    : %lld -> %s\n",
                    (long long)report.outputs_written,
                    settings.output.c_str());
        std::printf("checkpoints        : %lld\n",
                    (long long)report.checkpoints_written);
        std::printf("restarted          : %s\n",
                    report.restarted ? "yes" : "no");
        std::printf("device time (sim)  : %s\n",
                    gs::format_seconds(report.device_seconds).c_str());
        std::printf("  kernel           : %s\n",
                    gs::format_seconds(report.accumulated.kernel).c_str());
        std::printf("  halo staging     : %s\n",
                    gs::format_seconds(report.accumulated.exchange).c_str());
        std::printf("  JIT warm-up      : %s\n",
                    gs::format_seconds(report.accumulated.jit).c_str());
        std::printf("I/O wall time      : %s (%s from this rank)\n",
                    gs::format_seconds(report.io_seconds).c_str(),
                    gs::format_bytes(report.io_bytes_local).c_str());
        std::printf("\n--- global field state at step %lld ---\n",
                    (long long)workflow.simulation().current_step());
        std::printf("U in [%.6f, %.6f]   V in [%.6f, %.6f]\n", stats.u_min,
                    stats.u_max, stats.v_min, stats.v_max);
      }
    });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "workflow failed: %s\n", e.what());
    return 1;
  }

  std::printf("\n--- rocprof-mini kernel table (rank 0) ---\n%s",
              profiler.report().c_str());
  const std::string trace = settings.output + ".trace.json";
  std::ofstream out(trace);
  out << profiler.chrome_trace_json();
  std::printf("\nChrome trace: %s\nDataset: %s (inspect with the\n"
              "analysis_notebook example)\n",
              trace.c_str(), settings.output.c_str());
  return 0;
}
