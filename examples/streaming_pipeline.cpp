// In-transit streaming workflow — the paper's future-work configuration
// (Sec. 5.3: "in-memory streaming data pipelines"): the simulation
// streams output steps through a bounded in-memory queue to a live
// analysis consumer, bypassing the parallel file system entirely.
//
//   $ ./streaming_pipeline
//
// Producer: 4 simulated MPI ranks running Gray-Scott, one stream step
// every `plotgap` iterations. Consumer: an analysis thread computing
// live statistics and rendering the final pattern. The queue capacity of
// 2 exercises SST-style backpressure.
#include <cstdio>
#include <thread>
#include <vector>

#include "analysis/analysis.h"
#include "bp/stream.h"
#include "common/format.h"
#include "core/sim.h"
#include "mpi/runtime.h"

int main() {
  gs::Settings settings;
  settings.L = 32;
  settings.steps = 60;
  settings.plotgap = 10;
  settings.noise = 0.02;

  gs::bp::Stream stream(/*capacity=*/2);

  std::printf("producer: %lld^3 Gray-Scott on 4 ranks, streaming every "
              "%lld steps\nconsumer: live analysis thread\n\n",
              (long long)settings.L, (long long)settings.plotgap);

  // ---- consumer: runs concurrently with the simulation -----------------
  std::thread consumer([&] {
    gs::bp::StreamReader reader(stream);
    gs::analysis::Slice2D last_slice;
    while (auto step = reader.next_step()) {
      const auto v = step->assemble("V");
      const auto stats = gs::analysis::compute_stats(v);
      std::printf("[consumer] step %4lld  V: mean %.5f  max %.4f  "
                  "(queue depth seen %zu)\n",
                  (long long)step->scalars.at("step"), stats.mean,
                  stats.max, stream.max_depth_seen());
      last_slice = gs::analysis::extract_slice(
          v, step->arrays.at("V").shape, 2, settings.L / 2);
    }
    std::printf("\n[consumer] end of stream — final V center plane:\n\n%s\n",
                gs::analysis::ascii_render(last_slice, 48).c_str());
  });

  // ---- producer: the simulation ranks ----------------------------------
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    gs::core::Simulation sim(settings, world);
    gs::bp::StreamWriter writer(stream, world);
    writer.define_attribute("Du", gs::json::Value(settings.Du));
    writer.define_attribute("Dv", gs::json::Value(settings.Dv));
    while (sim.current_step() < settings.steps) {
      sim.run_steps(settings.plotgap);
      sim.sync_host();
      writer.begin_step();
      writer.put("U", {settings.L, settings.L, settings.L},
                 sim.local_box(), sim.u_host().interior_copy());
      writer.put("V", {settings.L, settings.L, settings.L},
                 sim.local_box(), sim.v_host().interior_copy());
      writer.put_scalar("step", sim.current_step());
      writer.end_step();
      if (world.rank() == 0) {
        std::printf("[producer] streamed step %lld (device time %s)\n",
                    (long long)sim.current_step(),
                    gs::format_seconds(sim.device_time()).c_str());
      }
    }
    writer.close();
  });

  consumer.join();
  std::printf("pipeline complete: no files were written.\n");
  return 0;
}
