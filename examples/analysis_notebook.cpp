// The data-analysis stage of the workflow as a linear "notebook" — the
// C++ stand-in for the paper's JupyterHub + Makie.jl session (Figure 9):
// open the dataset produced by the simulation, inspect its provenance,
// slice the 3-D fields, plot, and export images.
//
//   $ ./analysis_notebook [dataset.bp]
//
// Without an argument it first generates a dataset by running the
// simulation (so the example is self-contained).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "bp/reader.h"
#include "core/workflow.h"
#include "mpi/runtime.h"

namespace {

std::string generate_dataset() {
  gs::Settings settings;
  settings.L = 48;
  settings.steps = 60;
  settings.plotgap = 10;
  settings.noise = 0.02;
  settings.output = "notebook_input.bp";
  std::printf("[cell 0] no dataset given — running a %lld^3 simulation "
              "(%lld steps) first...\n\n",
              (long long)settings.L, (long long)settings.steps);
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    gs::core::Workflow wf(settings, world);
    wf.run();
  });
  return settings.output;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : generate_dataset();

  // [cell 1] Open the dataset and look at what's inside.
  gs::bp::Reader reader(path);
  std::printf("[cell 1] dataset %s — %lld steps\n\n%s\n", path.c_str(),
              (long long)reader.n_steps(), gs::bp::dump(reader).c_str());

  // [cell 2] Physics provenance travels with the data.
  std::printf("[cell 2] physics constants from the dataset attributes:\n");
  for (const char* name : {"Du", "Dv", "F", "k", "dt", "noise"}) {
    std::printf("  %-6s = %g\n", name,
                reader.attribute(name).as_double());
  }

  // [cell 3] Field statistics per output step.
  std::printf("\n[cell 3] evolution of V (max over domain per step):\n");
  std::vector<double> v_max_series;
  for (std::int64_t s = 0; s < reader.n_steps(); ++s) {
    const auto stats = gs::analysis::compute_stats(reader.read_full("V", s));
    v_max_series.push_back(stats.max);
  }
  std::printf("%s\n", gs::analysis::ascii_series(v_max_series, 50, 10).c_str());

  // [cell 4] Slice the last step through the domain center (the Figure
  // 2/9 visualization) and render it.
  const std::int64_t last = reader.n_steps() - 1;
  const auto shape = reader.info("V").shape;
  const auto slice =
      gs::analysis::slice_from_reader(reader, "V", last, 2, shape.k / 2);
  std::printf("[cell 4] V center z-plane at output step %lld "
              "(sim step %lld):\n\n%s\n",
              (long long)last,
              (long long)reader.read_scalar("step", last),
              gs::analysis::ascii_render(slice, 64).c_str());

  // [cell 5] Histogram of U (reaction front shows as a second mode).
  const auto u_last = reader.read_full("U", last);
  std::printf("[cell 5] histogram of U at the last step:\n%s\n",
              gs::analysis::field_histogram(u_last, 12).ascii(40).c_str());

  // [cell 6] Export publication images (PGM grayscale + viridis PPM).
  gs::analysis::write_pgm(slice, "v_slice.pgm");
  gs::analysis::write_ppm(slice, "v_slice.ppm");
  std::printf("[cell 6] wrote v_slice.pgm and v_slice.ppm (viridis)\n");

  if (argc <= 1) std::filesystem::remove_all(path);
  return 0;
}
