// Tests for the SST-style in-memory streaming pipeline: queue semantics
// (FIFO, backpressure, end-of-stream), step assembly/selection, the
// collective StreamWriter gather, and a live producer/consumer workflow.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bp/stream.h"
#include "core/sim.h"
#include "fault/fault.h"
#include "grid/decomp.h"
#include "mpi/runtime.h"

namespace {

using gs::Box3;
using gs::Decomposition;
using gs::Index3;
using gs::bp::Stream;
using gs::bp::StreamReader;
using gs::bp::StreamStep;
using gs::bp::StreamWriter;

StreamStep make_step(std::int64_t seq, double fill = 1.0) {
  StreamStep s;
  s.sequence = seq;
  auto& var = s.arrays["U"];
  var.shape = {2, 2, 2};
  StreamStep::Block b;
  b.box = Box3{{0, 0, 0}, {2, 2, 2}};
  b.data.assign(8, fill);
  var.blocks.push_back(std::move(b));
  return s;
}

// ----------------------------------------------------------------- queue

TEST(Stream, FifoOrder) {
  Stream st(8);
  for (int i = 0; i < 5; ++i) st.push(make_step(i));
  st.close();
  for (int i = 0; i < 5; ++i) {
    const auto s = st.next();
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->sequence, i);
  }
  EXPECT_FALSE(st.next().has_value());
}

TEST(Stream, NextBlocksUntilPush) {
  Stream st(2);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto s = st.next();
    EXPECT_TRUE(s.has_value());
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  st.push(make_step(0));
  consumer.join();
  EXPECT_TRUE(got.load());
  st.close();
}

TEST(Stream, BackpressureBlocksProducer) {
  Stream st(1);
  st.push(make_step(0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    st.push(make_step(1));  // must block until a pop
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(st.next()->sequence, 0);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(st.next()->sequence, 1);
  st.close();
}

TEST(Stream, CloseDrainsThenEnds) {
  Stream st(4);
  st.push(make_step(0));
  st.push(make_step(1));
  st.close();
  EXPECT_TRUE(st.next().has_value());
  EXPECT_TRUE(st.next().has_value());
  EXPECT_FALSE(st.next().has_value());
  EXPECT_FALSE(st.next().has_value());  // stays ended
}

TEST(Stream, PushAfterCloseRejected) {
  Stream st(2);
  st.close();
  EXPECT_THROW(st.push(make_step(0)), gs::Error);
}

TEST(Stream, MaxDepthTracksHighWater) {
  Stream st(4);
  st.push(make_step(0));
  st.push(make_step(1));
  st.push(make_step(2));
  EXPECT_EQ(st.max_depth_seen(), 3u);
  (void)st.next();
  (void)st.next();
  EXPECT_EQ(st.max_depth_seen(), 3u);  // high-water, not current
  EXPECT_EQ(st.pending(), 1u);
  st.close();
}

TEST(Stream, ZeroCapacityRejected) {
  EXPECT_THROW(Stream{0}, gs::Error);
}

TEST(Stream, AbandonUnblocksBlockedProducer) {
  Stream st(1);
  st.push(make_step(0));
  std::atomic<bool> threw{false};
  std::thread producer([&] {
    try {
      st.push(make_step(1));  // blocks: queue is full
    } catch (const gs::IoError&) {
      threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(threw.load());
  st.abandon("test abandon");
  producer.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW(st.push(make_step(2)), gs::IoError);  // stays dead
  EXPECT_FALSE(st.next().has_value());               // consumer sees EOS
}

TEST(Stream, ReaderDtorAfterCleanEndDoesNotAbandon) {
  Stream st(2);
  st.push(make_step(0));
  st.close();
  {
    StreamReader reader(st);
    EXPECT_TRUE(reader.next_step().has_value());
    EXPECT_FALSE(reader.next_step().has_value());  // closed and drained
  }
  EXPECT_FALSE(st.abandoned());
}

TEST(Stream, ConsumerDeathUnblocksProducer) {
  // The satellite scenario: the analysis thread dies mid-stream (fault-
  // injected kill while handling its second step). Destroying its
  // StreamReader must abandon the stream so the producer — blocked on a
  // full queue — unblocks with a clean IoError instead of hanging.
  gs::fault::Plan plan;
  plan.kill_at("test.stream.consume", 1);
  gs::fault::ScopedPlan scoped(plan);

  Stream st(/*capacity=*/1);
  std::thread consumer([&] {
    try {
      StreamReader reader(st);
      while (auto step = reader.next_step()) {
        gs::fault::Injector::instance().check("test.stream.consume");
      }
    } catch (const gs::fault::Kill&) {
      // The consumer thread "crashed"; ~StreamReader already ran.
    }
  });

  bool producer_failed = false;
  std::string reason;
  try {
    for (std::int64_t i = 0; i < 1000; ++i) st.push(make_step(i));
  } catch (const gs::IoError& e) {
    producer_failed = true;
    reason = e.what();
  }
  consumer.join();
  ASSERT_TRUE(producer_failed) << "producer drained 1000 steps into a "
                                  "dead consumer without an error";
  EXPECT_NE(reason.find("abandoned"), std::string::npos) << reason;
  EXPECT_TRUE(st.abandoned());
}

TEST(Stream, AttributesVisibleToConsumer) {
  Stream st(2);
  gs::json::Object attrs;
  attrs["Du"] = gs::json::Value(0.2);
  st.set_attributes(attrs);
  EXPECT_DOUBLE_EQ(st.attributes().at("Du").as_double(), 0.2);
}

// ------------------------------------------------------------ step access

TEST(StreamStep, AssembleFromBlocks) {
  StreamStep s;
  auto& var = s.arrays["U"];
  var.shape = {4, 2, 1};
  StreamStep::Block left, right;
  left.box = Box3{{0, 0, 0}, {2, 2, 1}};
  left.data = {1, 2, 3, 4};
  right.box = Box3{{2, 0, 0}, {2, 2, 1}};
  right.data = {5, 6, 7, 8};
  var.blocks = {left, right};
  const auto full = s.assemble("U");
  // Column-major global: row j=0 is [1,2,5,6], row j=1 is [3,4,7,8].
  EXPECT_EQ(full, (std::vector<double>{1, 2, 5, 6, 3, 4, 7, 8}));
}

TEST(StreamStep, SelectionRead) {
  StreamStep s;
  auto& var = s.arrays["U"];
  var.shape = {4, 2, 1};
  StreamStep::Block b;
  b.box = Box3{{0, 0, 0}, {4, 2, 1}};
  b.data = {1, 2, 3, 4, 5, 6, 7, 8};
  var.blocks.push_back(b);
  const auto sel = s.read("U", Box3{{1, 0, 0}, {2, 2, 1}});
  EXPECT_EQ(sel, (std::vector<double>{2, 3, 6, 7}));
}

TEST(StreamStep, MissingArrayThrows) {
  const StreamStep s;
  EXPECT_THROW(s.assemble("nope"), gs::Error);
}

// ----------------------------------------------------------- StreamWriter

TEST(StreamWriter, CollectiveGatherAssemblesGlobalStep) {
  const std::int64_t L = 8;
  Stream stream(4);
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(L, world.size());
    const Box3 box = d.local_box(world.rank());
    std::vector<double> block(static_cast<std::size_t>(box.volume()));
    std::size_t n = 0;
    for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
      for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
        for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
          block[n++] = static_cast<double>(
              gs::linear_index({i, j, k}, {L, L, L}));
        }
      }
    }
    StreamWriter w(stream, world);
    w.define_attribute("F", gs::json::Value(0.02));
    for (int s = 0; s < 2; ++s) {
      w.begin_step();
      w.put("U", {L, L, L}, box, block);
      w.put_scalar("step", 10 * s);
      w.end_step();
    }
    w.close();
  });

  StreamReader reader(stream);
  EXPECT_DOUBLE_EQ(reader.attributes().at("F").as_double(), 0.02);
  for (int expected = 0; expected < 2; ++expected) {
    const auto step = reader.next_step();
    ASSERT_TRUE(step.has_value());
    EXPECT_EQ(step->sequence, expected);
    EXPECT_EQ(step->scalars.at("step"), 10 * expected);
    ASSERT_EQ(step->arrays.at("U").blocks.size(), 4u);
    const auto full = step->assemble("U");
    for (std::size_t i = 0; i < full.size(); ++i) {
      ASSERT_DOUBLE_EQ(full[i], static_cast<double>(i));
    }
  }
  EXPECT_FALSE(reader.next_step().has_value());
}

TEST(StreamWriter, MisuseRejected) {
  Stream stream(2);
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    StreamWriter w(stream, world);
    std::vector<double> data(8, 0.0);
    EXPECT_THROW(w.put("U", {2, 2, 2}, Box3{{0, 0, 0}, {2, 2, 2}}, data),
                 gs::Error);  // outside a step
    w.begin_step();
    EXPECT_THROW(w.begin_step(), gs::Error);
    EXPECT_THROW(
        w.put("U", {2, 2, 2}, Box3{{0, 0, 0}, {2, 2, 2}},
              std::span<const double>(data.data(), 3)),
        gs::Error);  // size mismatch
    EXPECT_THROW(w.close(), gs::Error);  // open step
    w.end_step();
    w.close();
    EXPECT_THROW(w.begin_step(), gs::Error);  // closed
  });
}

// ------------------------------------------------- live in-situ pipeline

TEST(StreamPipeline, SimulationToLiveConsumer) {
  // The paper's future-work workflow: simulation ranks produce steps into
  // the stream while an analysis thread consumes them concurrently, no
  // file system involved. Consumer verifies physics invariants live.
  const std::int64_t L = 8;
  const int n_outputs = 4;
  Stream stream(/*capacity=*/1);  // maximal backpressure

  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    StreamReader reader(stream);
    std::int64_t expected_seq = 0;
    while (auto step = reader.next_step()) {
      EXPECT_EQ(step->sequence, expected_seq++);
      const auto u = step->assemble("U");
      const auto v = step->assemble("V");
      ASSERT_EQ(u.size(), static_cast<std::size_t>(L * L * L));
      for (const double x : v) {
        EXPECT_GE(x, 0.0);  // V stays non-negative
      }
      ++consumed;
    }
  });

  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    gs::Settings settings;
    settings.L = L;
    settings.steps = 8;
    settings.noise = 0.0;
    settings.backend = gs::KernelBackend::hip;
    gs::core::Simulation sim(settings, world);
    StreamWriter writer(stream, world);
    for (int out = 0; out < n_outputs; ++out) {
      sim.run_steps(2);
      sim.sync_host();
      writer.begin_step();
      writer.put("U", {L, L, L}, sim.local_box(),
                 sim.u_host().interior_copy());
      writer.put("V", {L, L, L}, sim.local_box(),
                 sim.v_host().interior_copy());
      writer.put_scalar("step", sim.current_step());
      writer.end_step();
    }
    writer.close();
  });

  consumer.join();
  EXPECT_EQ(consumed.load(), n_outputs);
  EXPECT_LE(stream.max_depth_seen(), 1u);  // capacity respected
}

}  // namespace
