// Tests for gs::par — the deterministic tiled parallel execution engine.
//
// The load-bearing property is the determinism contract: tile
// decomposition is a pure function of (n, grain, max_tiles) — never of the
// pool size — and parallel_reduce combines per-tile partials in a fixed
// tree order. Every reduction here is checked BITWISE across pool sizes,
// including the degenerate single-lane pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "par/par.h"
#include "par/pool.h"
#include "prof/profiler.h"

namespace {

using gs::Box3;
using gs::Index3;
using gs::par::RegionOptions;
using gs::par::ThreadPool;

// ------------------------------------------------------------------ pool

TEST(Pool, RunsEveryTaskExactlyOnce) {
  for (const std::size_t lanes : {1u, 2u, 3u, 7u}) {
    ThreadPool pool(lanes);
    EXPECT_EQ(pool.lanes(), std::max<std::size_t>(1, lanes));
    const std::size_t n = 153;
    std::vector<std::atomic<int>> hits(n);
    pool.run(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "task " << i << " lanes " << lanes;
    }
  }
}

TEST(Pool, ZeroTasksAndSingleTaskAreInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  const auto caller = std::this_thread::get_id();
  pool.run(1, [&](std::size_t) {
    ++calls;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Pool, NestedRunExecutesInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.run(8, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_region());
    // Nested region: must execute inline on this lane, not deadlock on
    // the (already busy) pool.
    pool.run(5, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 40);
  EXPECT_FALSE(ThreadPool::in_region());
}

TEST(Pool, ConcurrentRegionsFromManyThreadsSerialize) {
  // gs::svc workers share the global pool; concurrent run() calls must
  // serialize, each completing all its own tasks.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < 25; ++r) {
        pool.run(7, [&](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total.load(), 4 * 25 * 7);
}

TEST(Pool, ResizeKeepsWorking) {
  ThreadPool pool(1);
  std::atomic<int> n{0};
  pool.run(10, [&](std::size_t) { n.fetch_add(1); });
  pool.resize(5);
  EXPECT_EQ(pool.lanes(), 5u);
  pool.run(10, [&](std::size_t) { n.fetch_add(1); });
  pool.resize(2);
  pool.run(10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 30);
}

// ------------------------------------------------------------------ tiles

TEST(Tiles, PlanIsPureFunctionOfInputNotPoolSize) {
  RegionOptions opts;
  opts.grain = 10;
  const std::int64_t tiles_before = gs::par::plan_tiles(1000, opts);
  gs::par::set_global_lanes(7);
  EXPECT_EQ(gs::par::plan_tiles(1000, opts), tiles_before);
  gs::par::set_global_lanes(1);
  EXPECT_EQ(gs::par::plan_tiles(1000, opts), tiles_before);
}

TEST(Tiles, GrainForcesSingleTileForSmallInputs) {
  RegionOptions opts;
  opts.grain = 32768;
  EXPECT_EQ(gs::par::plan_tiles(32767, opts), 1);
  EXPECT_EQ(gs::par::plan_tiles(1, opts), 1);
  EXPECT_EQ(gs::par::plan_tiles(0, opts), 0);
  EXPECT_GE(gs::par::plan_tiles(2 * 32768, opts), 2);
}

TEST(Tiles, BoundsPartitionTheRangeExactly) {
  for (const std::int64_t n : {1, 7, 64, 1000, 12345}) {
    RegionOptions opts;
    const std::int64_t n_tiles = gs::par::plan_tiles(n, opts);
    std::int64_t covered = 0;
    for (std::int64_t t = 0; t < n_tiles; ++t) {
      const std::int64_t b = gs::par::tile_begin(n, n_tiles, t);
      const std::int64_t e = gs::par::tile_begin(n, n_tiles, t + 1);
      ASSERT_LE(b, e);
      covered += e - b;
    }
    ASSERT_EQ(covered, n);
    ASSERT_EQ(gs::par::tile_begin(n, n_tiles, 0), 0);
    ASSERT_EQ(gs::par::tile_begin(n, n_tiles, n_tiles), n);
  }
}

TEST(Tiles, ForTilesVisitsEachIndexOnce) {
  gs::par::set_global_lanes(4);
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  gs::par::parallel_for_tiles(
      n, [&](std::int64_t begin, std::int64_t end, std::int64_t) {
        for (std::int64_t i = begin; i < end; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  gs::par::set_global_lanes(1);
}

TEST(Tiles, For3dCoversExtentWithZSlabs) {
  gs::par::set_global_lanes(3);
  const Index3 extent{5, 4, 13};
  std::vector<std::atomic<int>> hits(
      static_cast<std::size_t>(extent.volume()));
  gs::par::parallel_for_3d(extent, [&](const Box3& tile) {
    // Z-slab shape: full X/Y extent, contiguous k range.
    EXPECT_EQ(tile.start.i, 0);
    EXPECT_EQ(tile.start.j, 0);
    EXPECT_EQ(tile.count.i, extent.i);
    EXPECT_EQ(tile.count.j, extent.j);
    for (std::int64_t k = tile.start.k; k < tile.start.k + tile.count.k;
         ++k) {
      for (std::int64_t j = 0; j < extent.j; ++j) {
        for (std::int64_t i = 0; i < extent.i; ++i) {
          hits[static_cast<std::size_t>(
                   gs::linear_index({i, j, k}, extent))]
              .fetch_add(1);
        }
      }
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  gs::par::set_global_lanes(1);
}

// ----------------------------------------------------------------- reduce

/// A sum whose result depends on association order — the adversarial case
/// for the determinism contract.
double nonassociative_payload(std::int64_t i) {
  return (i % 3 == 0 ? 1.0e16 : 1.0) / static_cast<double>(i + 1);
}

double reduce_sum_with_lanes(std::size_t lanes, std::int64_t n) {
  gs::par::set_global_lanes(lanes);
  RegionOptions opts;
  opts.grain = 1;  // force the full tile tree even for small n
  const double out = gs::par::parallel_reduce<double>(
      n,
      [](std::int64_t begin, std::int64_t end) {
        double s = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          s += nonassociative_payload(i);
        }
        return s;
      },
      [](double a, double b) { return a + b; }, opts);
  gs::par::set_global_lanes(1);
  return out;
}

TEST(Reduce, BitwiseIdenticalForAnyPoolSize) {
  const std::int64_t n = 100000;
  const double base = reduce_sum_with_lanes(1, n);
  for (const std::size_t lanes : {2u, 3u, 7u}) {
    const double got = reduce_sum_with_lanes(lanes, n);
    // Compare BITS, not values: NaN-safe and rounding-exact.
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &base, sizeof a);
    std::memcpy(&b, &got, sizeof b);
    ASSERT_EQ(a, b) << "lanes=" << lanes;
  }
}

TEST(Reduce, SingleTileIsExactlyTheSerialAlgorithm) {
  // grain >= n: the reduce must return tile_fn(0, n) verbatim — the
  // pre-gs::par serial code path, bitwise.
  const std::int64_t n = 1000;
  double serial = 0.0;
  for (std::int64_t i = 0; i < n; ++i) serial += nonassociative_payload(i);
  RegionOptions opts;
  opts.grain = n;
  const double got = gs::par::parallel_reduce<double>(
      n,
      [](std::int64_t begin, std::int64_t end) {
        double s = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          s += nonassociative_payload(i);
        }
        return s;
      },
      [](double a, double b) { return a + b; }, opts);
  EXPECT_EQ(serial, got);
}

TEST(Reduce, WorksWithNonDefaultConstructibleTypes) {
  struct Partial {
    std::int64_t count;
    explicit Partial(std::int64_t c) : count(c) {}
  };
  RegionOptions opts;
  opts.grain = 1;
  const Partial total = gs::par::parallel_reduce<Partial>(
      500,
      [](std::int64_t begin, std::int64_t end) {
        return Partial(end - begin);
      },
      [](Partial a, const Partial& b) {
        a.count += b.count;
        return a;
      },
      opts);
  EXPECT_EQ(total.count, 500);
}

// -------------------------------------------------------------------- crc

std::vector<std::byte> random_bytes(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xFF);
  return out;
}

TEST(Crc, CombineMatchesConcatenation) {
  const auto a = random_bytes(1013, 1);
  const auto b = random_bytes(2039, 2);
  std::vector<std::byte> ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(gs::crc32_combine(gs::crc32(a), gs::crc32(b), b.size()),
            gs::crc32(ab));
  // Identity: appending nothing changes nothing.
  EXPECT_EQ(gs::crc32_combine(gs::crc32(a), gs::crc32({}), 0),
            gs::crc32(a));
}

TEST(Crc, ParallelMatchesSerialForAllSizesAndLaneCounts) {
  for (const std::size_t lanes : {1u, 2u, 7u}) {
    gs::par::set_global_lanes(lanes);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{17},
          std::size_t{65535}, std::size_t{65536}, std::size_t{300001}}) {
      const auto data = random_bytes(n, static_cast<unsigned>(n + 7));
      ASSERT_EQ(gs::par::crc32(data), gs::crc32(data))
          << "n=" << n << " lanes=" << lanes;
    }
    // Force the multi-tile path even for small data.
    RegionOptions opts;
    opts.grain = 128;
    const auto data = random_bytes(5000, 42);
    ASSERT_EQ(gs::par::crc32(data, opts), gs::crc32(data))
        << "lanes=" << lanes;
  }
  gs::par::set_global_lanes(1);
}

// ------------------------------------------------------------ observability

TEST(Observability, RegionsRecordPerLaneSpans) {
  gs::par::set_global_lanes(4);
  gs::prof::Profiler profiler;
  RegionOptions opts;
  opts.label = "unit";
  opts.profiler = &profiler;
  opts.grain = 1;
  gs::par::parallel_for_tiles(
      64, [](std::int64_t, std::int64_t, std::int64_t) {}, opts);
  ASSERT_FALSE(profiler.spans().empty());
  std::set<std::uint64_t> lanes_seen;
  for (const auto& s : profiler.spans()) {
    EXPECT_EQ(s.name, "par:unit");
    EXPECT_GE(s.t1, s.t0);
    EXPECT_GE(s.tid, 1u) << "lane ids are 1-based";
    lanes_seen.insert(s.tid);
  }
  // At most one merged span per lane.
  EXPECT_EQ(lanes_seen.size(), profiler.spans().size());
  gs::par::set_global_lanes(1);
}

TEST(Observability, UnlabeledRegionsRecordNothing) {
  gs::prof::Profiler profiler;
  RegionOptions opts;
  opts.profiler = &profiler;  // label left empty
  gs::par::parallel_for_tiles(
      32, [](std::int64_t, std::int64_t, std::int64_t) {}, opts);
  EXPECT_TRUE(profiler.spans().empty());
}

// ----------------------------------------------------------- global pool

TEST(GlobalPool, ConfigureRespectsSettingsAndAuto) {
  // Explicit thread count resizes.
  gs::par::configure_global_pool(3);
  EXPECT_EQ(gs::par::global_pool().lanes(), 3u);
  // 0 = auto: keeps the current size (does NOT clobber a test override).
  gs::par::configure_global_pool(0);
  EXPECT_EQ(gs::par::global_pool().lanes(), 3u);
  gs::par::set_global_lanes(1);
  EXPECT_EQ(gs::par::global_pool().lanes(), 1u);
}

}  // namespace
