// Tests for the analysis module: slicing, statistics, histograms, image
// writers, ASCII rendering — including end-to-end through a BP dataset.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "analysis/analysis.h"
#include "analysis/pattern.h"
#include "core/sim.h"
#include "bp/writer.h"
#include "grid/decomp.h"
#include "mpi/runtime.h"

namespace {

namespace fs = std::filesystem;
using gs::Box3;
using gs::Index3;
using gs::analysis::ascii_render;
using gs::analysis::ascii_series;
using gs::analysis::compute_stats;
using gs::analysis::extract_slice;
using gs::analysis::field_histogram;
using gs::analysis::Slice2D;

std::vector<double> ramp_volume(const Index3& shape) {
  std::vector<double> v(static_cast<std::size_t>(shape.volume()));
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST(Slice, AxisZPlane) {
  const Index3 shape{4, 3, 2};
  const auto data = ramp_volume(shape);
  const Slice2D s = extract_slice(data, shape, 2, 1);
  EXPECT_EQ(s.nx, 4);
  EXPECT_EQ(s.ny, 3);
  // Plane k=1: linear = i + 4j + 12.
  for (std::int64_t y = 0; y < 3; ++y) {
    for (std::int64_t x = 0; x < 4; ++x) {
      EXPECT_DOUBLE_EQ(s.at(x, y), static_cast<double>(x + 4 * y + 12));
    }
  }
  EXPECT_DOUBLE_EQ(s.min, 12.0);
  EXPECT_DOUBLE_EQ(s.max, 23.0);
}

TEST(Slice, AxisXPlane) {
  const Index3 shape{4, 3, 2};
  const auto data = ramp_volume(shape);
  const Slice2D s = extract_slice(data, shape, 0, 2);
  EXPECT_EQ(s.nx, 3);  // j becomes x
  EXPECT_EQ(s.ny, 2);  // k becomes y
  for (std::int64_t y = 0; y < 2; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) {
      EXPECT_DOUBLE_EQ(s.at(x, y), static_cast<double>(2 + 4 * x + 12 * y));
    }
  }
}

TEST(Slice, AxisYPlane) {
  const Index3 shape{4, 3, 2};
  const auto data = ramp_volume(shape);
  const Slice2D s = extract_slice(data, shape, 1, 0);
  EXPECT_EQ(s.nx, 4);  // i
  EXPECT_EQ(s.ny, 2);  // k
  EXPECT_DOUBLE_EQ(s.at(1, 1), 1.0 + 12.0);
}

TEST(Slice, BadArgsRejected) {
  const Index3 shape{4, 3, 2};
  const auto data = ramp_volume(shape);
  EXPECT_THROW(extract_slice(data, shape, 3, 0), gs::Error);
  EXPECT_THROW(extract_slice(data, shape, 2, 2), gs::Error);
  EXPECT_THROW(extract_slice(std::span<const double>(data.data(), 3), shape,
                             0, 0),
               gs::Error);
}

TEST(Stats, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto s = compute_stats(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, HistogramCoversAllValues) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 10);
  const auto h = field_histogram(v, 10);
  EXPECT_EQ(h.total(), 1000u);
  // Uniform-ish across bins.
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 100u) << b;
  }
}

TEST(Stats, HistogramConstantField) {
  const std::vector<double> v(100, 3.0);
  const auto h = field_histogram(v, 4);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.count(0), 100u);
}

TEST(Images, PgmHeaderAndSize) {
  Slice2D s;
  s.nx = 3;
  s.ny = 2;
  s.values = {0, 0.5, 1, 1, 0.5, 0};
  s.min = 0;
  s.max = 1;
  const std::string path = testing::TempDir() + "/gs_test.pgm";
  gs::analysis::write_pgm(s, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  int w, h, maxv;
  in >> w >> h >> maxv;
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxv, 255);
  in.get();  // single whitespace after header
  std::vector<unsigned char> pix(6);
  in.read(reinterpret_cast<char*>(pix.data()), 6);
  EXPECT_EQ(in.gcount(), 6);
  EXPECT_EQ(pix[0], 0);
  EXPECT_EQ(pix[2], 255);
  fs::remove(path);
}

TEST(Images, PpmWritesRgbTriples) {
  Slice2D s;
  s.nx = 2;
  s.ny = 2;
  s.values = {0, 0.3, 0.7, 1};
  s.min = 0;
  s.max = 1;
  const std::string path = testing::TempDir() + "/gs_test.ppm";
  gs::analysis::write_ppm(s, path);
  EXPECT_GT(fs::file_size(path), 12u);  // header + 12 bytes of pixels
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  fs::remove(path);
}

TEST(Ascii, RenderShapeAndRamp) {
  Slice2D s;
  s.nx = 64;
  s.ny = 64;
  s.values.resize(64 * 64);
  for (std::int64_t y = 0; y < 64; ++y) {
    for (std::int64_t x = 0; x < 64; ++x) {
      s.values[static_cast<std::size_t>(x + 64 * y)] =
          static_cast<double>(x);
    }
  }
  s.min = 0;
  s.max = 63;
  const std::string art = ascii_render(s, 32);
  // 32 cols, 16 rows + newlines.
  EXPECT_EQ(art.size(), 16u * 33u);
  // Left edge light, right edge dense.
  EXPECT_EQ(art[0], ' ');
  EXPECT_EQ(art[31], '@');
}

TEST(Ascii, SeriesPlot) {
  std::vector<double> vals;
  for (int i = 0; i < 100; ++i) vals.push_back(std::sin(i * 0.1));
  const std::string plot = ascii_series(vals, 40, 8);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("100 points"), std::string::npos);
  EXPECT_THROW(ascii_series({}, 40, 8), gs::Error);
}

// -------------------------------------------------------------- pattern

gs::analysis::Slice2D make_slice(std::int64_t nx, std::int64_t ny,
                                 double fill = 0.0) {
  gs::analysis::Slice2D s;
  s.nx = nx;
  s.ny = ny;
  s.values.assign(static_cast<std::size_t>(nx * ny), fill);
  s.min = fill;
  s.max = fill;
  return s;
}

void set_cell(gs::analysis::Slice2D& s, std::int64_t x, std::int64_t y,
              double v) {
  s.values[static_cast<std::size_t>(x + s.nx * y)] = v;
  s.max = std::max(s.max, v);
  s.min = std::min(s.min, v);
}

TEST(Pattern, EmptySliceIsUniform) {
  const auto s = make_slice(8, 8, 0.0);
  const auto m = gs::analysis::analyze_pattern(s, 0.1);
  EXPECT_EQ(m.component_count, 0u);
  EXPECT_DOUBLE_EQ(m.covered_fraction, 0.0);
  EXPECT_EQ(gs::analysis::classify_pattern(m),
            gs::analysis::PatternClass::uniform);
}

TEST(Pattern, SingleBlobOneComponent) {
  auto s = make_slice(8, 8);
  for (std::int64_t y = 2; y <= 4; ++y) {
    for (std::int64_t x = 2; x <= 4; ++x) {
      set_cell(s, x, y, 1.0);
    }
  }
  const auto m = gs::analysis::analyze_pattern(s, 0.5);
  EXPECT_EQ(m.component_count, 1u);
  EXPECT_EQ(m.largest_component, 9u);
  EXPECT_NEAR(m.covered_fraction, 9.0 / 64.0, 1e-12);
  // All 9 cells touch the boundary except the center one.
  EXPECT_NEAR(m.interface_fraction, 8.0 / 64.0, 1e-12);
}

TEST(Pattern, DiagonalCellsAreSeparate) {
  // 4-connectivity: diagonal neighbors do NOT merge.
  auto s = make_slice(4, 4);
  set_cell(s, 0, 0, 1.0);
  set_cell(s, 1, 1, 1.0);
  EXPECT_EQ(gs::analysis::count_components(s, 0.5), 2u);
}

TEST(Pattern, ManySpotsClassifiedAsSpots) {
  auto s = make_slice(16, 16);
  for (std::int64_t y = 1; y < 16; y += 3) {
    for (std::int64_t x = 1; x < 16; x += 3) {
      set_cell(s, x, y, 1.0);
    }
  }
  const auto m = gs::analysis::analyze_pattern(s, 0.5);
  EXPECT_EQ(m.component_count, 25u);
  EXPECT_EQ(gs::analysis::classify_pattern(m),
            gs::analysis::PatternClass::spots);
}

TEST(Pattern, LargeConnectedRegionClassifiedAsStripes) {
  auto s = make_slice(16, 16);
  // Horizontal serpentine band covering >15% connectedly.
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      if (y % 4 < 2) set_cell(s, x, y, 1.0);
    }
  }
  // Connect the bands at alternating ends to form one labyrinth.
  for (std::int64_t y = 0; y < 16; ++y) set_cell(s, 0, y, 1.0);
  const auto m = gs::analysis::analyze_pattern(s, 0.5);
  EXPECT_EQ(m.component_count, 1u);
  EXPECT_EQ(gs::analysis::classify_pattern(m),
            gs::analysis::PatternClass::stripes);
}

TEST(Pattern, ThresholdMatters) {
  auto s = make_slice(4, 4);
  set_cell(s, 1, 1, 0.3);
  set_cell(s, 2, 2, 0.8);
  EXPECT_EQ(gs::analysis::count_components(s, 0.5), 1u);
  EXPECT_EQ(gs::analysis::count_components(s, 0.2), 2u);
  EXPECT_EQ(gs::analysis::count_components(s, 0.9), 0u);
}

TEST(Pattern, DominantWavelengthOfAxisStripes) {
  // sin stripes along x with period 8 cells.
  auto s = make_slice(32, 32);
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      set_cell(s, x, y, std::sin(2.0 * M_PI * x / 8.0));
    }
  }
  EXPECT_NEAR(gs::analysis::dominant_wavelength(s), 8.0, 0.01);
}

TEST(Pattern, DominantWavelengthOfDiagonalStripes) {
  // Stripes along the (1,1) diagonal: f = (kx/n, ky/n) = (1/8, 1/8)
  // -> wavelength 8/sqrt(2).
  auto s = make_slice(32, 32);
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      set_cell(s, x, y, std::sin(2.0 * M_PI * (x + y) / 8.0));
    }
  }
  EXPECT_NEAR(gs::analysis::dominant_wavelength(s), 8.0 / std::sqrt(2.0),
              0.01);
}

TEST(Pattern, DominantWavelengthAntiDiagonal) {
  auto s = make_slice(32, 32);
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      set_cell(s, x, y, std::sin(2.0 * M_PI * (x - y) / 8.0));
    }
  }
  EXPECT_NEAR(gs::analysis::dominant_wavelength(s), 8.0 / std::sqrt(2.0),
              0.01);
}

TEST(Pattern, DominantWavelengthUniformIsZero) {
  const auto s = make_slice(16, 16, 3.0);
  EXPECT_DOUBLE_EQ(gs::analysis::dominant_wavelength(s), 0.0);
}

TEST(Pattern, DominantWavelengthOfSpotLattice) {
  // Smooth spots on a pitch-8 square lattice (a delta comb would have
  // all harmonics tied; physical spots are extended, so the fundamental
  // dominates). The strongest lattice mode is at pitch 8 along an axis
  // or 8/sqrt(2) along the diagonal — accept either fundamental.
  auto s = make_slice(32, 32);
  for (std::int64_t cy = 4; cy < 32; cy += 8) {
    for (std::int64_t cx = 4; cx < 32; cx += 8) {
      for (std::int64_t dy = -2; dy <= 2; ++dy) {
        for (std::int64_t dx = -2; dx <= 2; ++dx) {
          const double r2 = static_cast<double>(dx * dx + dy * dy);
          const auto x = cx + dx;
          const auto y = cy + dy;
          set_cell(s, x, y, s.at(x, y) + std::exp(-r2 / 2.0));
        }
      }
    }
  }
  const double wl = gs::analysis::dominant_wavelength(s);
  const bool axis = std::abs(wl - 8.0) < 0.1;
  const bool diag = std::abs(wl - 8.0 / std::sqrt(2.0)) < 0.1;
  EXPECT_TRUE(axis || diag) << "wavelength " << wl;
}

TEST(Pattern, SolverProducesExpectedRegimes) {
  // The physics end-to-end: two (F, k) presets land in different classes
  // (empirically stable regimes of the Pearson diagram for our scheme).
  struct Case {
    double F, k;
    gs::analysis::PatternClass expected;
  };
  const Case cases[] = {
      {0.025, 0.060, gs::analysis::PatternClass::spots},
      {0.020, 0.070, gs::analysis::PatternClass::uniform},
  };
  for (const auto& c : cases) {
    gs::Settings s;
    s.L = 32;
    s.F = c.F;
    s.k = c.k;
    s.noise = 0.0;
    s.steps = 2500;
    s.backend = gs::KernelBackend::host_reference;
    gs::analysis::PatternClass got{};
    gs::mpi::run(1, [&](gs::mpi::Comm& world) {
      gs::core::Simulation sim(s, world);
      sim.run_steps(s.steps);
      sim.sync_host();
      const auto slice = gs::analysis::extract_slice(
          sim.v_host().interior_copy(), {32, 32, 32}, 2, 16);
      got = gs::analysis::classify_pattern(
          gs::analysis::analyze_pattern(slice, 0.1));
    });
    EXPECT_EQ(got, c.expected) << "F=" << c.F << " k=" << c.k;
  }
}

TEST(AnalysisEndToEnd, SliceFromBpDataset) {
  // Write a known volume through the parallel writer, slice it back
  // through the selection-reading path the notebook example uses.
  const std::int64_t L = 8;
  const std::string path = testing::TempDir() + "/gs_analysis.bp";
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const gs::Decomposition d = gs::Decomposition::cube(L, world.size());
    const Box3 box = d.local_box(world.rank());
    const Index3 shape{L, L, L};
    std::vector<double> block(static_cast<std::size_t>(box.volume()));
    std::size_t n = 0;
    for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
      for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
        for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
          block[n++] = static_cast<double>(
              gs::linear_index({i, j, k}, shape));
        }
      }
    }
    gs::bp::Writer w(path, world, 2);
    w.begin_step();
    w.put("U", shape, box, block);
    w.end_step();
    w.close();
  });

  gs::bp::Reader reader(path);
  const auto slice =
      gs::analysis::slice_from_reader(reader, "U", 0, 2, L / 2);
  EXPECT_EQ(slice.nx, L);
  EXPECT_EQ(slice.ny, L);
  for (std::int64_t y = 0; y < L; ++y) {
    for (std::int64_t x = 0; x < L; ++x) {
      EXPECT_DOUBLE_EQ(slice.at(x, y),
                       static_cast<double>(
                           gs::linear_index({x, y, L / 2}, {L, L, L})));
    }
  }
  fs::remove_all(path);
}

}  // namespace
