// Tests for the Gorilla XOR codec and its BP integration: bit I/O,
// exact round-trips (smooth, constant, random, special values),
// compression ratios, transparent decompression through the Reader.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "bp/compress.h"
#include "bp/reader.h"
#include "bp/writer.h"
#include "common/rng.h"
#include "core/reference.h"
#include "grid/decomp.h"
#include "mpi/runtime.h"

namespace {

namespace fs = std::filesystem;
using gs::bp::BitReader;
using gs::bp::BitWriter;
using gs::bp::compress_doubles;
using gs::bp::decompress_doubles;

// ------------------------------------------------------------------ bits

TEST(BitIo, SingleBitsRoundTrip) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true,
                          false, true};  // 9 bits: crosses a byte
  for (const bool b : pattern) w.put_bit(b);
  const auto bytes = w.finish();
  EXPECT_EQ(bytes.size(), 2u);
  BitReader r(bytes);
  for (const bool b : pattern) EXPECT_EQ(r.get_bit(), b);
}

TEST(BitIo, MultiBitFieldsRoundTrip) {
  BitWriter w;
  w.put_bits(0x5, 3);
  w.put_bits(0xABCD, 16);
  w.put_bits(0xFFFFFFFFFFFFFFFFull, 64);
  w.put_bits(0, 1);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(3), 0x5u);
  EXPECT_EQ(r.get_bits(16), 0xABCDu);
  EXPECT_EQ(r.get_bits(64), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.get_bits(1), 0u);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.put_bits(0x3, 2);
  const auto bytes = w.finish();
  BitReader r(bytes);
  r.get_bits(8);  // padded byte still readable
  EXPECT_THROW(r.get_bit(), gs::Error);
}

// ----------------------------------------------------------------- codec

void expect_roundtrip(const std::vector<double>& values) {
  const auto packed = compress_doubles(values);
  const auto back = decompress_doubles(packed);
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Bitwise equality, including signed zeros and NaN payloads.
    std::uint64_t a, b;
    std::memcpy(&a, &values[i], 8);
    std::memcpy(&b, &back[i], 8);
    ASSERT_EQ(a, b) << "index " << i;
  }
}

TEST(Gorilla, EmptyAndSingle) {
  expect_roundtrip({});
  expect_roundtrip({3.14159});
  expect_roundtrip({0.0});
}

TEST(Gorilla, ConstantSeriesCompressesExtremely) {
  const std::vector<double> v(10000, 1.0);
  expect_roundtrip(v);
  // 80 KB -> ~1.26 KB (1 bit per repeated value).
  EXPECT_GT(gs::bp::compression_ratio(v), 50.0);
}

TEST(Gorilla, SmoothFieldCompressesWell) {
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) {
    v.push_back(1.0 + 1e-3 * std::sin(i * 0.01));
  }
  expect_roundtrip(v);
  // XOR coding on doubles whose mantissa churns: modest but real gain.
  EXPECT_GT(gs::bp::compression_ratio(v), 1.1);
}

TEST(Gorilla, RandomDataDegradesGracefully) {
  gs::Rng rng(7);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.uniform01());
  expect_roundtrip(v);
  // Incompressible: must not blow up beyond ~110% of input.
  EXPECT_GT(gs::bp::compression_ratio(v), 0.9);
}

TEST(Gorilla, SpecialValues) {
  expect_roundtrip({0.0, -0.0, 1.0, -1.0,
                    std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::denorm_min(),
                    std::numeric_limits<double>::max(),
                    std::numeric_limits<double>::min()});
}

TEST(Gorilla, AlternatingValues) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 2 == 0 ? 1.0 : 2.0);
  expect_roundtrip(v);
}

TEST(Gorilla, GrayScottFieldRatio) {
  // A real solver state: mostly-background U with a reaction front.
  const std::int64_t L = 16;
  gs::Field3 u({L, L, L}), v({L, L, L});
  gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
  gs::core::GsParams p;
  p.noise = 0.0;
  gs::core::reference_run(u, v, p, 1, 50, L);
  const auto data = u.interior_copy();
  expect_roundtrip(data);
  // The uniform background (bit-identical values) compresses to 1 bit
  // per cell; the front region stays near 64 bits.
  EXPECT_GT(gs::bp::compression_ratio(data), 1.25);
}

TEST(Gorilla, CorruptStreamRejected) {
  // A count far larger than the stream can hold.
  BitWriter w;
  w.put_bits(1ull << 40, 64);
  const auto bytes = w.finish();
  EXPECT_THROW(decompress_doubles(bytes), gs::Error);
}

// ----------------------------------------------------------- BP plumbing

TEST(BpCompression, TransparentRoundTripThroughDataset) {
  const std::int64_t L = 8;
  const std::string path =
      (fs::path(testing::TempDir()) / "compressed.bp").string();
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const gs::Decomposition d = gs::Decomposition::cube(L, world.size());
    const gs::Box3 box = d.local_box(world.rank());
    std::vector<double> block(static_cast<std::size_t>(box.volume()));
    for (std::size_t i = 0; i < block.size(); ++i) {
      block[i] = 1.0 + 1e-6 * static_cast<double>(i);
    }
    gs::bp::Writer w(path, world, 2);
    w.set_compression(true);
    w.begin_step();
    w.put("U", {L, L, L}, box, block);
    w.end_step();
    w.close();
  });

  gs::bp::Reader r(path);
  const auto blocks = r.blocks("U", 0);
  for (const auto& b : blocks) {
    EXPECT_EQ(b.codec, "gorilla");
    EXPECT_LT(b.stored_bytes,
              static_cast<std::uint64_t>(b.box.volume()) * 8);
  }
  const auto full = r.read_full("U", 0);
  // Values reconstruct exactly; spot-check a strided sample.
  EXPECT_DOUBLE_EQ(full[0], 1.0);
  const gs::Decomposition d = gs::Decomposition::cube(L, 4);
  const gs::Box3 box0 = d.local_box(0);
  EXPECT_DOUBLE_EQ(full[1], 1.0 + 1e-6);
  (void)box0;
  fs::remove_all(path);
}

TEST(BpCompression, CrcCoversUncompressedPayload) {
  // Corrupting the COMPRESSED bytes must still be detected (either the
  // decoder fails or the CRC of the decoded payload mismatches).
  const std::string path =
      (fs::path(testing::TempDir()) / "compressed_corrupt.bp").string();
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    std::vector<double> block(512);
    for (std::size_t i = 0; i < block.size(); ++i) {
      block[i] = std::sin(static_cast<double>(i));
    }
    gs::bp::Writer w(path, world, 1);
    w.set_compression(true);
    w.begin_step();
    w.put("U", {8, 8, 8}, gs::Box3{{0, 0, 0}, {8, 8, 8}}, block);
    w.end_step();
    w.close();
  });
  {
    std::fstream f(fs::path(path) / "data.0",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);
    const char c = 0x55;
    f.write(&c, 1);
  }
  gs::bp::Reader r(path);
  EXPECT_THROW(r.read_full("U", 0), gs::Error);
  fs::remove_all(path);
}

TEST(BpCompression, MixedCompressedAndRawSteps) {
  const std::string path =
      (fs::path(testing::TempDir()) / "mixed.bp").string();
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    std::vector<double> block(64, 2.5);
    gs::bp::Writer w(path, world, 1);
    const gs::Box3 box{{0, 0, 0}, {4, 4, 4}};
    w.begin_step();  // raw
    w.put("U", {4, 4, 4}, box, block);
    w.end_step();
    w.set_compression(true);
    w.begin_step();  // compressed
    w.put("U", {4, 4, 4}, box, block);
    w.end_step();
    w.close();
  });
  gs::bp::Reader r(path);
  EXPECT_EQ(r.blocks("U", 0).at(0).codec, "");
  EXPECT_EQ(r.blocks("U", 1).at(0).codec, "gorilla");
  for (std::int64_t s = 0; s < 2; ++s) {
    for (const double v : r.read_full("U", s)) {
      ASSERT_DOUBLE_EQ(v, 2.5);
    }
  }
  fs::remove_all(path);
}

}  // namespace
