// End-to-end workflow tests: simulate -> BP output -> read back; the
// Listing 1 provenance record; checkpoint/restart equivalence.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/analysis.h"
#include "bp/reader.h"
#include "core/workflow.h"
#include "mpi/runtime.h"

namespace {

namespace fs = std::filesystem;
using gs::Settings;
using gs::core::Workflow;

Settings workflow_settings(const std::string& tag, std::int64_t L = 8,
                           std::int64_t steps = 6, std::int64_t plotgap = 2) {
  Settings s;
  s.L = L;
  s.steps = steps;
  s.plotgap = plotgap;
  s.noise = 0.05;
  s.seed = 7;
  s.backend = gs::KernelBackend::hip;  // no JIT noise in timings
  s.output = testing::TempDir() + "/wf_" + tag + ".bp";
  s.checkpoint_output = testing::TempDir() + "/wf_" + tag + "_ckpt.bp";
  s.restart_input = s.checkpoint_output;
  s.ranks_per_node = 2;
  return s;
}

TEST(Workflow, RunWritesExpectedSteps) {
  const Settings s = workflow_settings("basic");
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    const auto report = wf.run();
    EXPECT_EQ(report.steps_run, 6);
    EXPECT_EQ(report.outputs_written, 3);  // steps 2, 4, 6
    EXPECT_EQ(report.checkpoints_written, 0);
    EXPECT_GT(report.device_seconds, 0.0);
    EXPECT_GT(report.io_bytes_local, 0u);
  });

  gs::bp::Reader r(s.output);
  EXPECT_EQ(r.n_steps(), 3);
  EXPECT_EQ(r.read_scalar("step", 0), 2);
  EXPECT_EQ(r.read_scalar("step", 2), 6);
  const auto u = r.info("U");
  EXPECT_EQ(u.shape, (gs::Index3{8, 8, 8}));
  EXPECT_EQ(u.steps, 3);
  fs::remove_all(s.output);
}

TEST(Workflow, ProvenanceMatchesListing1) {
  const Settings s = workflow_settings("prov");
  gs::mpi::run(2, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    wf.run();
  });
  gs::bp::Reader r(s.output);
  EXPECT_DOUBLE_EQ(r.attribute("Du").as_double(), 0.2);
  EXPECT_DOUBLE_EQ(r.attribute("Dv").as_double(), 0.1);
  EXPECT_DOUBLE_EQ(r.attribute("F").as_double(), 0.02);
  EXPECT_DOUBLE_EQ(r.attribute("k").as_double(), 0.048);
  EXPECT_DOUBLE_EQ(r.attribute("dt").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(r.attribute("noise").as_double(), 0.05);
  // Visualization schema attributes (FIDES + VTX readers).
  EXPECT_NO_THROW(r.attribute("Fides_Data_Model"));
  EXPECT_NO_THROW(r.attribute("vtk.xml"));

  const std::string text = gs::bp::dump(s.output);
  EXPECT_NE(text.find("Du"), std::string::npos);
  EXPECT_NE(text.find("Min/Max"), std::string::npos);
  fs::remove_all(s.output);
}

TEST(Workflow, FieldValuesInDatasetMatchSimulation) {
  const Settings s = workflow_settings("values", 8, 4, 4);
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    wf.run();
    // After run(), the simulation state is at step 4 == the last output.
    wf.simulation().sync_host();
    gs::bp::Reader r(s.output);
    const auto u = r.read_full("U", r.n_steps() - 1);
    const auto& host = wf.simulation().u_host();
    std::size_t n = 0;
    for (std::int64_t k = 1; k <= 8; ++k) {
      for (std::int64_t j = 1; j <= 8; ++j) {
        for (std::int64_t i = 1; i <= 8; ++i) {
          ASSERT_EQ(u[n++], host.at(i, j, k));
        }
      }
    }
  });
  fs::remove_all(s.output);
}

TEST(Workflow, CheckpointRestartReproducesUninterruptedRun) {
  // Run A: 6 straight steps. Run B: 3 steps + checkpoint, then restart
  // and finish. Final fields must agree bitwise.
  const Settings full = workflow_settings("full", 8, 6, 6);

  std::vector<double> u_full;
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(full, world);
    wf.run();
  });
  {
    gs::bp::Reader r(full.output);
    u_full = r.read_full("U", r.n_steps() - 1);
  }

  Settings part1 = workflow_settings("part1", 8, 3, 3);
  part1.seed = full.seed;
  part1.checkpoint = true;
  part1.checkpoint_freq = 3;
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(part1, world);
    const auto report = wf.run();
    EXPECT_EQ(report.checkpoints_written, 1);
  });

  Settings part2 = workflow_settings("part2", 8, 6, 6);
  part2.seed = full.seed;
  part2.restart = true;
  part2.restart_input = part1.checkpoint_output;
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(part2, world);
    const auto report = wf.run();
    EXPECT_TRUE(report.restarted);
    EXPECT_EQ(report.first_step, 3);
    EXPECT_EQ(report.steps_run, 3);  // only steps 4..6
  });

  gs::bp::Reader r(part2.output);
  const auto u_restarted = r.read_full("U", r.n_steps() - 1);
  ASSERT_EQ(u_restarted.size(), u_full.size());
  for (std::size_t i = 0; i < u_full.size(); ++i) {
    ASSERT_EQ(u_restarted[i], u_full[i]) << "cell " << i;
  }

  fs::remove_all(full.output);
  fs::remove_all(part1.output);
  fs::remove_all(part1.checkpoint_output);
  fs::remove_all(part2.output);
}

TEST(Workflow, RestartOnDifferentRankCount) {
  // Elastic restart: the checkpoint's block decomposition (4 ranks) is
  // independent of the restarting job's (2 ranks) because each rank does
  // a box-selection read — a capability real BP restart files provide.
  const std::int64_t L = 8;
  Settings full = workflow_settings("elastic_full", L, 6, 6);
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(full, world);
    wf.run();
  });
  std::vector<double> u_full;
  {
    gs::bp::Reader r(full.output);
    u_full = r.read_full("U", r.n_steps() - 1);
  }

  Settings part1 = workflow_settings("elastic_p1", L, 3, 3);
  part1.checkpoint = true;
  part1.checkpoint_freq = 3;
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(part1, world);
    wf.run();
  });

  Settings part2 = workflow_settings("elastic_p2", L, 6, 6);
  part2.restart = true;
  part2.restart_input = part1.checkpoint_output;
  gs::mpi::run(2, [&](gs::mpi::Comm& world) {  // DIFFERENT rank count
    Workflow wf(part2, world);
    const auto report = wf.run();
    EXPECT_TRUE(report.restarted);
    EXPECT_EQ(report.first_step, 3);
  });

  gs::bp::Reader r(part2.output);
  const auto u = r.read_full("U", r.n_steps() - 1);
  ASSERT_EQ(u.size(), u_full.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    ASSERT_EQ(u[i], u_full[i]) << "cell " << i;
  }
  fs::remove_all(full.output);
  fs::remove_all(part1.output);
  fs::remove_all(part1.checkpoint_output);
  fs::remove_all(part2.output);
}

TEST(Workflow, SixRankNonCubicDecomposition) {
  // 6 ranks -> 3x2x1 process grid; L=12 divides as 4/6/12 per axis.
  Settings s = workflow_settings("noncubic", 12, 2, 2);
  gs::mpi::run(6, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    const auto report = wf.run();
    EXPECT_EQ(report.steps_run, 2);
  });
  gs::bp::Reader r(s.output);
  EXPECT_EQ(r.blocks("U", 0).size(), 6u);
  // Blocks tile the domain exactly.
  std::int64_t covered = 0;
  for (const auto& b : r.blocks("U", 0)) covered += b.box.volume();
  EXPECT_EQ(covered, 12 * 12 * 12);
  fs::remove_all(s.output);
}

TEST(Workflow, GpuAwareWorkflowEndToEnd) {
  Settings s = workflow_settings("gpuaware", 8, 4, 2);
  s.gpu_aware_mpi = true;
  s.backend = gs::KernelBackend::julia_amdgpu;
  s.aot = true;
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    const auto report = wf.run();
    EXPECT_EQ(report.steps_run, 4);
    EXPECT_DOUBLE_EQ(report.accumulated.jit, 0.0);  // AOT precompiled
  });
  gs::bp::Reader r(s.output);
  EXPECT_EQ(r.n_steps(), 2);  // outputs at steps 2 and 4
  fs::remove_all(s.output);
}

TEST(Workflow, SinglePrecisionOutputHalvesBytesButKeepsDoubleCheckpoints) {
  Settings s = workflow_settings("single", 8, 3, 3);
  s.precision = "single";
  s.checkpoint = true;
  s.checkpoint_freq = 3;
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    wf.run();
  });
  gs::bp::Reader out(s.output);
  EXPECT_EQ(out.info("U").type, "float");
  std::uint64_t stored = 0;
  for (const auto& b : out.blocks("U", 0)) stored += b.stored_bytes;
  EXPECT_EQ(stored, 8ull * 8 * 8 * 4);  // half of double storage
  // Values track the double state to float precision.
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(workflow_settings("single_ref", 8, 3, 3), world);
    wf.run();
  });
  gs::bp::Reader ref(workflow_settings("single_ref", 8, 3, 3).output);
  const auto a = out.read_full("U", 0);
  const auto b = ref.read_full("U", 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-6);
    ASSERT_EQ(a[i], static_cast<double>(static_cast<float>(b[i])));
  }
  // The checkpoint stays full double for bitwise restart.
  gs::bp::Reader ckpt(s.checkpoint_output);
  EXPECT_EQ(ckpt.info("U").type, "double");
  fs::remove_all(s.output);
  fs::remove_all(s.checkpoint_output);
  fs::remove_all(workflow_settings("single_ref", 8, 3, 3).output);
}

TEST(Workflow, RestartWithoutCheckpointFallsBackToFreshRun) {
  Settings s = workflow_settings("nockpt", 8, 2, 2);
  s.restart = true;
  s.restart_input = testing::TempDir() + "/does_not_exist.bp";
  gs::mpi::run(2, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    const auto report = wf.run();
    EXPECT_FALSE(report.restarted);
    EXPECT_EQ(report.steps_run, 2);
  });
  fs::remove_all(s.output);
}

TEST(Workflow, CompressedOutputReadsBackExactly) {
  Settings plain = workflow_settings("nocomp", 8, 4, 4);
  Settings comp = workflow_settings("comp", 8, 4, 4);
  comp.compress = true;
  for (const Settings* s : {&plain, &comp}) {
    gs::mpi::run(4, [&](gs::mpi::Comm& world) {
      Workflow wf(*s, world);
      wf.run();
    });
  }
  gs::bp::Reader a(plain.output), b(comp.output);
  EXPECT_EQ(b.blocks("U", 0).at(0).codec, "gorilla");
  const auto ua = a.read_full("U", 0);
  const auto ub = b.read_full("U", 0);
  ASSERT_EQ(ua.size(), ub.size());
  for (std::size_t i = 0; i < ua.size(); ++i) {
    ASSERT_EQ(ua[i], ub[i]);  // lossless: bitwise equal
  }
  // Compressed dataset occupies fewer payload bytes.
  std::uint64_t raw_bytes = 0, comp_bytes = 0;
  for (const auto& blk : a.blocks("U", 0)) raw_bytes += blk.stored_bytes;
  for (const auto& blk : b.blocks("U", 0)) comp_bytes += blk.stored_bytes;
  EXPECT_LT(comp_bytes, raw_bytes);
  fs::remove_all(plain.output);
  fs::remove_all(comp.output);
}

TEST(Workflow, DeviceCacheSimDuringFullWorkflow) {
  // The profiler-visible counters stay consistent when the cache sim is
  // enabled mid-workflow (analysis-grade tracing of a production run).
  Settings s = workflow_settings("cachesim", 8, 2, 2);
  s.backend = gs::KernelBackend::julia_amdgpu;
  gs::prof::Profiler prof;
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world, &prof);
    wf.simulation().device().set_cache_sim_enabled(true);
    wf.run();
  });
  const auto stats = prof.kernel_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, 2u);
  EXPECT_GT(stats[0].total.fetch_bytes, 0u);
  EXPECT_GT(stats[0].total.write_bytes, 0u);
  EXPECT_GT(stats[0].total.hit_rate(), 0.5);
  fs::remove_all(s.output);
}

TEST(Workflow, FinalPartialIntervalAlwaysWritten) {
  // steps=5, plotgap=2: outputs at 2, 4, and the final state at 5.
  Settings s = workflow_settings("partial", 8, 5, 2);
  gs::mpi::run(2, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    const auto report = wf.run();
    EXPECT_EQ(report.outputs_written, 3);
  });
  gs::bp::Reader r(s.output);
  ASSERT_EQ(r.n_steps(), 3);
  EXPECT_EQ(r.read_scalar("step", 0), 2);
  EXPECT_EQ(r.read_scalar("step", 1), 4);
  EXPECT_EQ(r.read_scalar("step", 2), 5);
  fs::remove_all(s.output);
}

TEST(Workflow, ZeroStepsProducesEmptyDataset) {
  Settings s = workflow_settings("zerosteps", 8, 0, 2);
  gs::mpi::run(2, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    const auto report = wf.run();
    EXPECT_EQ(report.steps_run, 0);
    EXPECT_EQ(report.outputs_written, 0);
  });
  gs::bp::Reader r(s.output);
  EXPECT_EQ(r.n_steps(), 0);
  // Attributes are still recorded (provenance without data).
  EXPECT_DOUBLE_EQ(r.attribute("Du").as_double(), 0.2);
  EXPECT_NO_THROW(gs::bp::dump(r));
  fs::remove_all(s.output);
}

TEST(Workflow, AnalysisConsumesWorkflowOutput) {
  // The full Figure 1 loop: simulate -> write -> read -> slice -> render.
  const Settings s = workflow_settings("viz", 16, 2, 2);
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    Workflow wf(s, world);
    wf.run();
  });
  gs::bp::Reader r(s.output);
  const auto slice = gs::analysis::slice_from_reader(r, "V", 0, 2, 8);
  EXPECT_EQ(slice.nx, 16);
  EXPECT_EQ(slice.ny, 16);
  // The seeded center perturbation must be visible in V at step 2.
  EXPECT_GT(slice.max, 0.0);
  const std::string art = gs::analysis::ascii_render(slice, 16);
  EXPECT_FALSE(art.empty());
  const auto stats = gs::analysis::compute_stats(r.read_full("U", 0));
  EXPECT_GT(stats.mean, 0.5);
  // Noise can push U slightly above 1 (paper Listing 1 reports a global
  // max of 1.47 over 1,000 steps).
  EXPECT_LE(stats.max, 1.3);
  fs::remove_all(s.output);
}

}  // namespace
