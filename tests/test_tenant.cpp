// gs::tenant — partitions, QOS tiers, usage ledger, preemption with
// checkpoint-backed requeue, job arrays, and the Fleet
// campaign -> publish -> serve loop. The preemption round-trip is gated
// bitwise: an evicted-and-resumed functional job must produce exactly
// the dataset an undisturbed run produces.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bp/reader.h"
#include "common/error.h"
#include "config/settings.h"
#include "sched/campaign.h"
#include "sched/scheduler.h"
#include "svc/query.h"
#include "tenant/fleet.h"
#include "tenant/ledger.h"
#include "tenant/partition.h"
#include "tenant/qos.h"

namespace sched = gs::sched;
namespace tenant = gs::tenant;
using gs::Settings;
using sched::JobSpec;
using sched::JobState;
using sched::PayloadKind;
using sched::Policy;
using sched::Scheduler;
using sched::SchedulerConfig;

namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return (fs::path(testing::TempDir()) / ("tenant_" + name + "." + pid))
      .string();
}

JobSpec fixed_job(const std::string& name, const std::string& user,
                  std::int64_t nodes, double duration, double limit,
                  const std::string& qos = "",
                  const std::string& partition = "") {
  JobSpec s;
  s.name = name;
  s.user = user;
  s.nodes = nodes;
  s.walltime_limit = limit;
  s.qos = qos;
  s.partition = partition;
  s.payload.kind = PayloadKind::fixed;
  s.payload.fixed_duration = duration;
  return s;
}

SchedulerConfig tenant_cluster(Policy policy, std::int64_t nodes = 4) {
  SchedulerConfig cfg;
  cfg.policy = policy;
  cfg.cluster.nodes = nodes;
  cfg.qos = tenant::default_qos_tiers();
  return cfg;
}

Settings functional_settings(const std::string& tag) {
  Settings s;
  s.L = 16;
  s.steps = 6;
  s.plotgap = 3;
  s.backend = gs::KernelBackend::host_reference;
  s.ranks_per_node = 2;
  s.checkpoint = true;
  s.checkpoint_freq = 4;
  s.output = temp_path(tag + "_out") + ".bp";
  s.checkpoint_output = temp_path(tag + "_ck") + ".bp";
  fs::remove_all(s.output);
  fs::remove_all(s.checkpoint_output);
  return s;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

// ------------------------------------------------------------------- qos

TEST(TenantQos, SpecParsingAndDefaults) {
  const auto q = tenant::qos_from_spec("high,weight=2000,preempt,grace=60");
  EXPECT_EQ(q.name, "high");
  EXPECT_DOUBLE_EQ(q.priority_weight, 2000.0);
  EXPECT_TRUE(q.preempt);
  EXPECT_FALSE(q.preemptable);
  EXPECT_DOUBLE_EQ(q.grace_seconds, 60.0);

  const auto caps = tenant::qos_from_spec(
      "scavenger,preemptable,max_running=2,max_node_seconds=3600");
  EXPECT_TRUE(caps.preemptable);
  EXPECT_EQ(caps.max_running_per_tenant, 2);
  EXPECT_DOUBLE_EQ(caps.max_node_seconds, 3600.0);

  EXPECT_THROW(tenant::qos_from_spec("x,bogus_key=1"), gs::ParseError);
  EXPECT_THROW(tenant::qos_from_spec(""), gs::Error);

  const tenant::QosTable table(tenant::default_qos_tiers());
  EXPECT_EQ(table.resolve("").name, "high");  // first tier is the default
  EXPECT_EQ(table.resolve("scavenger").priority_weight, 0.0);
  EXPECT_TRUE(table.resolve("high").preempt);
  EXPECT_THROW(table.resolve("no-such-tier"), gs::ParseError);

  const tenant::QosTable empty;  // pre-tenant behavior: one zero tier
  EXPECT_EQ(empty.resolve("").name, "normal");
  EXPECT_EQ(empty.resolve("normal").priority_weight, 0.0);
}

// ------------------------------------------------------------- partitions

TEST(TenantPartition, CarvingAndValidation) {
  const auto p =
      tenant::partition_from_spec("prod,nodes=48,max_walltime=86400");
  EXPECT_EQ(p.name, "prod");
  EXPECT_EQ(p.nodes, 48);
  EXPECT_DOUBLE_EQ(p.max_walltime, 86400.0);

  std::vector<tenant::PartitionSpec> specs = {
      tenant::partition_from_spec("prod,nodes=3"),
      tenant::partition_from_spec("debug,nodes=1,max_nodes_per_job=1"),
  };
  const tenant::PartitionTable table(specs, 4);
  EXPECT_EQ(table.partitions().size(), 2u);
  EXPECT_EQ(table.resolve("prod").lo, 0);
  EXPECT_EQ(table.resolve("prod").hi, 3);
  EXPECT_EQ(table.resolve("debug").lo, 3);
  EXPECT_EQ(table.resolve("debug").hi, 4);
  EXPECT_EQ(table.index_of(""), 0u);  // first partition is the default
  EXPECT_THROW(table.resolve("nope"), gs::ParseError);

  // Counts must sum to the cluster exactly — no silent idle remainder.
  EXPECT_THROW(tenant::PartitionTable(specs, 5), gs::Error);
  EXPECT_THROW(tenant::PartitionTable(specs, 3), gs::Error);

  // Empty config reproduces the whole-cluster partition.
  const tenant::PartitionTable whole({}, 64);
  EXPECT_EQ(whole.partitions().size(), 1u);
  EXPECT_EQ(whole.resolve("").spec.name, "all");
  EXPECT_EQ(whole.resolve("all").hi, 64);
}

// ----------------------------------------------------------------- ledger

TEST(TenantLedger, DecayHalvesAndReleasePointIsStrict) {
  tenant::UsageLedger ledger(100.0);  // halflife 100 s
  ledger.charge("alice", 800.0, 0.0);
  EXPECT_DOUBLE_EQ(ledger.usage("alice", 0.0), 800.0);
  EXPECT_NEAR(ledger.usage("alice", 100.0), 400.0, 1e-9);
  EXPECT_NEAR(ledger.usage("alice", 300.0), 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(ledger.usage("bob", 50.0), 0.0);

  const double release = ledger.time_to_decay_below("alice", 200.0, 0.0);
  EXPECT_GT(release, 199.0);  // exact half-life point is 200 s
  EXPECT_LT(ledger.usage("alice", release), 200.0);  // strictly below

  // Already below: release is "now". Unreachable targets: +infinity.
  EXPECT_DOUBLE_EQ(ledger.time_to_decay_below("alice", 1e9, 5.0), 5.0);
  tenant::UsageLedger frozen(0.0);  // no decay
  frozen.charge("alice", 10.0, 0.0);
  EXPECT_TRUE(std::isinf(frozen.time_to_decay_below("alice", 5.0, 0.0)));
  EXPECT_DOUBLE_EQ(frozen.usage("alice", 1e9), 10.0);
}

// ------------------------------------------------------ partitions in sched

TEST(TenantSched, PartitionPlacementAndLimits) {
  SchedulerConfig cfg = tenant_cluster(Policy::backfill, 4);
  cfg.partitions = {
      tenant::partition_from_spec("prod,nodes=3"),
      tenant::partition_from_spec("debug,nodes=1,max_walltime=100"),
  };
  Scheduler s(cfg);
  const auto prod = s.submit(fixed_job("p", "alice", 3, 50, 500, "", "prod"));
  const auto dbg = s.submit(fixed_job("d", "bob", 1, 50, 90, "", "debug"));
  // Too wide for its partition and over its walltime cap: cancelled, not
  // left pending forever.
  const auto wide =
      s.submit(fixed_job("wide", "bob", 2, 10, 90, "", "debug"));
  const auto slow =
      s.submit(fixed_job("slow", "bob", 1, 10, 5000, "", "debug"));
  EXPECT_THROW(
      s.submit(fixed_job("x", "bob", 1, 10, 50, "", "no-such-partition")),
      gs::ParseError);
  s.run();

  // Disjoint partitions run concurrently: both started at t=0.
  EXPECT_EQ(s.job(prod).state, JobState::completed);
  EXPECT_EQ(s.job(dbg).state, JobState::completed);
  EXPECT_DOUBLE_EQ(s.job(prod).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(dbg).start_time, 0.0);
  EXPECT_EQ(s.job(wide).state, JobState::cancelled);
  EXPECT_NE(s.job(wide).reason.find("partition 'debug'"), std::string::npos);
  EXPECT_EQ(s.job(slow).state, JobState::cancelled);
  EXPECT_NE(s.job(slow).reason.find("walltime"), std::string::npos);
}

TEST(TenantSched, QosWeightOrdersTheQueue) {
  SchedulerConfig cfg = tenant_cluster(Policy::backfill, 1);
  Scheduler s(cfg);
  // Both eligible at t=0 on one node; scavenger submitted first but the
  // high tier's +2000 weight wins the tie.
  const auto bg = s.submit(fixed_job("bg", "u", 1, 10, 100, "scavenger"));
  const auto hi = s.submit(fixed_job("hi", "u", 1, 10, 100, "high"));
  s.run();
  EXPECT_DOUBLE_EQ(s.job(hi).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(bg).start_time, 10.0);
}

TEST(TenantSched, MaxRunningPerTenantCapHolds) {
  SchedulerConfig cfg;
  cfg.policy = Policy::backfill;
  cfg.cluster.nodes = 4;
  auto capped = tenant::qos_from_spec("capped,max_running=1");
  cfg.qos = {capped};
  Scheduler s(cfg);
  const auto a = s.submit(fixed_job("a", "alice", 1, 30, 100, "capped"));
  const auto b = s.submit(fixed_job("b", "alice", 1, 30, 100, "capped"));
  // A different tenant is not throttled by alice's cap.
  const auto c = s.submit(fixed_job("c", "bob", 1, 30, 100, "capped"));
  s.run();
  EXPECT_DOUBLE_EQ(s.job(a).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(c).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(b).start_time, 30.0);  // after a's job_end
  EXPECT_EQ(s.stats().completed, 3);
}

TEST(TenantSched, UsageCapReleasesAfterDecay) {
  SchedulerConfig cfg;
  cfg.policy = Policy::backfill;
  cfg.cluster.nodes = 4;
  cfg.usage_halflife = 100.0;
  cfg.qos = {tenant::qos_from_spec("metered,max_node_seconds=150")};
  Scheduler s(cfg);
  // First job charges 4 nodes x 50 s = 200 node-seconds, putting alice
  // over the 150 cap; the second must wait for decay to release it
  // (200 -> 150 takes halflife * log2(200/150) ~ 41.5 s).
  const auto a = s.submit(fixed_job("a", "alice", 4, 50, 200, "metered"));
  const auto b = s.submit(fixed_job("b", "alice", 1, 10, 2000, "metered"));
  s.run();
  EXPECT_EQ(s.job(a).state, JobState::completed);
  EXPECT_EQ(s.job(b).state, JobState::completed);
  EXPECT_GT(s.job(b).start_time, 90.0);   // held past a's end (t=50)
  EXPECT_LT(s.job(b).start_time, 93.0);   // released right at decay
  EXPECT_LT(s.ledger().usage("alice", s.job(b).start_time), 150.0);
}

// -------------------------------------------------------------- preemption

TEST(TenantSched, PreemptionRequeuesVictimAndLosesNoJob) {
  SchedulerConfig cfg = tenant_cluster(Policy::backfill, 4);
  Scheduler s(cfg);
  const auto bg = s.submit(fixed_job("bg", "low", 4, 100, 1000, "scavenger"));
  const auto hi =
      s.submit(fixed_job("hi", "ops", 2, 20, 100, "high"), /*submit_at=*/10);
  s.run();

  // The victim was evicted, requeued, re-run, and completed — never lost.
  EXPECT_EQ(s.job(hi).state, JobState::completed);
  EXPECT_EQ(s.job(bg).state, JobState::completed);
  EXPECT_DOUBLE_EQ(s.job(hi).start_time, 10.0);  // preemption was immediate
  EXPECT_EQ(s.job(bg).preemptions, 1);
  EXPECT_EQ(s.job(bg).attempts, 2);
  EXPECT_EQ(s.job(bg).requeues, 0);  // retry budget untouched
  EXPECT_EQ(s.stats().preemptions, 1);
  EXPECT_EQ(s.stats().completed, 2);
  EXPECT_NE(s.event_log().find("PREEMPT"), std::string::npos);
  // Victim restarts only after the preemptor freed its nodes.
  EXPECT_GE(s.job(bg).start_time, 30.0);
}

TEST(TenantSched, GraceWindowBlocksPreemption) {
  SchedulerConfig cfg = tenant_cluster(Policy::backfill, 4);
  Scheduler s(cfg);
  // "normal" tier: preemptable only after 30 s. The high job arrives at
  // t=10 — inside the grace window — so it must wait, not evict.
  const auto bg = s.submit(fixed_job("bg", "low", 4, 25, 1000, "normal"));
  const auto hi =
      s.submit(fixed_job("hi", "ops", 2, 5, 100, "high"), /*submit_at=*/10);
  s.run();
  EXPECT_EQ(s.job(bg).preemptions, 0);
  EXPECT_EQ(s.stats().preemptions, 0);
  EXPECT_DOUBLE_EQ(s.job(hi).start_time, 25.0);  // after bg finished
}

TEST(TenantSched, PreemptedFunctionalJobResumesBitwiseIdentical) {
  // Reference: the same workflow, never preempted.
  Settings clean = functional_settings("clean");
  SchedulerConfig ref_cfg = tenant_cluster(Policy::backfill, 2);
  Scheduler ref(ref_cfg);
  JobSpec victim;
  victim.name = "victim";
  victim.user = "low";
  victim.nodes = 2;
  victim.ranks_per_node = 2;
  victim.walltime_limit = 1e6;
  victim.qos = "scavenger";
  victim.payload.kind = PayloadKind::functional;
  victim.payload.settings = clean;
  const auto ref_id = ref.submit(victim);
  ref.run();
  ASSERT_EQ(ref.job(ref_id).state, JobState::completed);
  const double duration = ref.job(ref_id).duration;
  ASSERT_GT(duration, 0.0);

  // Preempted run: identical workflow (fresh paths); a high-QOS job
  // lands mid-execution and evicts it; it resumes from its checkpoint.
  Settings pre = functional_settings("pre");
  SchedulerConfig cfg = tenant_cluster(Policy::backfill, 2);
  Scheduler s(cfg);
  victim.payload.settings = pre;
  const auto vid = s.submit(victim);
  const auto hid = s.submit(fixed_job("urgent", "ops", 2, 5, 100, "high"),
                            /*submit_at=*/duration / 2.0);
  s.run();

  ASSERT_EQ(s.job(vid).state, JobState::completed);
  ASSERT_EQ(s.job(hid).state, JobState::completed);
  EXPECT_EQ(s.job(vid).preemptions, 1);
  EXPECT_EQ(s.job(vid).attempts, 2);
  EXPECT_EQ(s.stats().preemptions, 1);

  // The resumed trajectory is bitwise the undisturbed one: final
  // checkpoint state and final output step match exactly. (Step counts
  // may differ — the resumed attempt appends — so compare last steps.)
  const gs::bp::Reader ck_a(clean.checkpoint_output);
  const gs::bp::Reader ck_b(pre.checkpoint_output);
  EXPECT_TRUE(bitwise_equal(ck_a.read_full("U", ck_a.n_steps() - 1),
                            ck_b.read_full("U", ck_b.n_steps() - 1)));
  EXPECT_TRUE(bitwise_equal(ck_a.read_full("V", ck_a.n_steps() - 1),
                            ck_b.read_full("V", ck_b.n_steps() - 1)));
  const gs::bp::Reader out_a(clean.output);
  const gs::bp::Reader out_b(pre.output);
  EXPECT_TRUE(bitwise_equal(out_a.read_full("U", out_a.n_steps() - 1),
                            out_b.read_full("U", out_b.n_steps() - 1)));
  EXPECT_TRUE(bitwise_equal(out_a.read_full("V", out_a.n_steps() - 1),
                            out_b.read_full("V", out_b.n_steps() - 1)));

  for (const auto& set : {clean, pre}) {
    fs::remove_all(set.output);
    fs::remove_all(set.checkpoint_output);
  }
}

// ------------------------------------------------------------------ arrays

TEST(TenantSched, ArraysExpandWithDeterministicNames) {
  SchedulerConfig cfg = tenant_cluster(Policy::backfill, 4);
  Scheduler s(cfg);
  JobSpec spec = fixed_job("sweep", "alice", 1, 10, 100);
  spec.array = 4;
  const auto ids = s.submit_array(spec);
  ASSERT_EQ(ids.size(), 4u);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const auto& j = s.job(ids[k]);
    EXPECT_EQ(j.spec.name, "sweep[" + std::to_string(k) + "]");
    EXPECT_EQ(j.array_task, static_cast<std::int64_t>(k));
  }
  s.run();
  EXPECT_EQ(s.stats().completed, 4);
  // All four fit the cluster: they ran concurrently.
  for (const auto id : ids) {
    EXPECT_DOUBLE_EQ(s.job(id).start_time, 0.0);
  }

  // submit() refuses un-expanded array specs.
  JobSpec raw = fixed_job("raw", "alice", 1, 1, 10);
  raw.array = 2;
  EXPECT_THROW(s.submit(raw), gs::Error);
}

TEST(TenantSched, FunctionalArraysRequirePlaceholder) {
  SchedulerConfig cfg = tenant_cluster(Policy::backfill, 4);
  Scheduler s(cfg);
  JobSpec spec;
  spec.name = "fsweep";
  spec.user = "alice";
  spec.nodes = 1;
  spec.ranks_per_node = 2;
  spec.array = 2;
  spec.payload.kind = PayloadKind::functional;
  spec.payload.settings = functional_settings("arr");
  // No %a in the output path: tasks would clobber each other.
  EXPECT_THROW(s.submit_array(spec), gs::Error);

  spec.payload.settings.output = temp_path("arr_%a") + ".bp";
  spec.payload.settings.checkpoint_output = temp_path("arr_ck_%a") + ".bp";
  const auto ids = s.submit_array(spec);
  EXPECT_EQ(s.job(ids[0]).spec.payload.settings.output,
            temp_path("arr_0") + ".bp");
  EXPECT_EQ(s.job(ids[1]).spec.payload.settings.output,
            temp_path("arr_1") + ".bp");
  s.run();
  EXPECT_EQ(s.stats().completed, 2);
  for (const auto id : ids) {
    fs::remove_all(s.job(id).spec.payload.settings.output);
    fs::remove_all(s.job(id).spec.payload.settings.checkpoint_output);
  }
}

TEST(TenantSched, CampaignArrayDependenciesFanOut) {
  gs::json::Value doc = gs::json::parse(R"({
    "name": "arrcamp", "user": "alice",
    "jobs": [
      { "name": "sweep", "kind": "fixed", "nodes": 1, "duration": 10,
        "walltime": 100, "array": 3 },
      { "name": "merge", "kind": "fixed", "nodes": 1, "duration": 5,
        "walltime": 100,
        "depends": [ { "job": "sweep", "type": "afterok" } ] }
    ]
  })");
  const auto campaign = sched::campaign_from_json(doc);
  SchedulerConfig cfg = tenant_cluster(Policy::backfill, 2);
  Scheduler s(cfg);
  const auto ids = sched::submit_campaign(s, campaign);
  ASSERT_EQ(ids.size(), 4u);  // 3 tasks + merge
  s.run();
  EXPECT_EQ(s.stats().completed, 4);
  // merge depends on EVERY task: it starts only after the last one ends.
  double last_task_end = 0.0;
  for (std::size_t k = 0; k < 3; ++k) {
    last_task_end = std::max(last_task_end, s.job(ids[k]).end_time);
  }
  EXPECT_GE(s.job(ids[3]).start_time, last_task_end);
}

// ----------------------------------------------------------- determinism

TEST(TenantSched, TenantRunsAreBitIdenticalAcrossRuns) {
  const auto build = [] {
    SchedulerConfig cfg = tenant_cluster(Policy::fair_share, 4);
    cfg.partitions = {tenant::partition_from_spec("prod,nodes=3"),
                      tenant::partition_from_spec("debug,nodes=1")};
    cfg.usage_halflife = 200.0;
    cfg.faults.node_fail_prob = 0.2;
    cfg.faults.max_failures = 3;
    Scheduler s(cfg);
    s.submit(fixed_job("bg", "low", 3, 120, 1000, "scavenger", "prod"));
    s.submit(fixed_job("hi", "ops", 2, 20, 100, "high", "prod"),
             /*submit_at=*/15);
    s.submit(fixed_job("d", "dev", 1, 40, 400, "normal", "debug"));
    JobSpec arr = fixed_job("arr", "alice", 1, 9, 90, "normal", "prod");
    arr.array = 3;
    s.submit_array(arr, 5.0);
    s.run();
    return s.event_log() + s.sacct();
  };
  EXPECT_EQ(build(), build());
}

// ----------------------------------------------------------------- fleet

TEST(TenantFleet, CampaignPublishesDatasetsAndServesTenants) {
  Settings stage = functional_settings("fleet");
  stage.checkpoint = false;

  sched::Campaign campaign;
  campaign.name = "fleetcamp";
  campaign.user = "ops";
  JobSpec sim;
  sim.name = "sim";
  sim.user = "ops";
  sim.nodes = 2;
  sim.ranks_per_node = 2;
  sim.walltime_limit = 1e6;
  sim.payload.kind = PayloadKind::functional;
  sim.payload.settings = stage;
  JobSpec cleanup = fixed_job("cleanup", "ops", 1, 30, 100);
  cleanup.deps.push_back({0, sched::DepType::afterany});
  campaign.jobs = {sim, cleanup};
  campaign.names = {"sim", "cleanup"};

  tenant::FleetConfig fc;
  fc.sched.policy = Policy::backfill;
  fc.sched.cluster.nodes = 2;
  fc.service.threads = 2;
  fc.service.slo_seconds = 30.0;  // generous: violations stay zero
  fc.query_timeout_seconds = 30.0;

  tenant::Fleet fleet(fc);
  fleet.start(campaign);
  ASSERT_TRUE(fleet.wait_for_datasets(1, 120.0));
  ASSERT_EQ(fleet.datasets().size(), 1u);
  const std::string ds = fleet.datasets()[0];
  EXPECT_EQ(ds, stage.output);

  // Two tenants hammer the published dataset concurrently — possibly
  // while the cleanup stage is still running.
  std::atomic<int> ok_total{0};
  const auto tenant_load = [&](const std::string& who) {
    for (int i = 0; i < 8; ++i) {
      const auto r =
          fleet.query(who, ds, gs::svc::FieldStatsQ{"U", 0});
      if (r.status.ok()) ++ok_total;
    }
  };
  std::thread t1(tenant_load, "alice");
  std::thread t2(tenant_load, "bob");
  t1.join();
  t2.join();
  fleet.wait();
  EXPECT_EQ(ok_total.load(), 16);

  // Client-side per-tenant stats: exact counts, sane percentiles.
  const auto stats = fleet.serving_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at("alice").ok, 8u);
  EXPECT_EQ(stats.at("bob").ok, 8u);
  EXPECT_EQ(stats.at("alice").errors, 0u);
  EXPECT_EQ(stats.at("alice").slo_violations, 0u);
  EXPECT_GE(stats.at("alice").latency_p99, stats.at("alice").latency_p50);

  // Server-side per-tenant metrics agree on the counts.
  const auto m = fleet.service_metrics(ds);
  ASSERT_EQ(m.tenants.size(), 2u);
  EXPECT_EQ(m.tenants.at("alice").completed_ok, 8u);
  EXPECT_EQ(m.tenants.at("bob").submitted, 8u);
  EXPECT_EQ(m.tenants.at("bob").slo_violations, 0u);

  // The scheduler side: both stages completed.
  EXPECT_EQ(fleet.scheduler().stats().completed, 2);

  EXPECT_THROW(fleet.query("alice", "nope.bp", gs::svc::ListVariablesQ{}),
               gs::ParseError);

  fs::remove_all(stage.output);
  fs::remove_all(stage.checkpoint_output);
}
