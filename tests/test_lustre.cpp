// gs::lustre edge cases: degenerate volumes, the single-client case, and
// monotonicity of the modeled bandwidth/time in the node count.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lustre/lustre_model.h"

using gs::lustre::LustreModel;

TEST(LustreModel, ZeroByteWriteCostsExactlyTheOpenLatency) {
  const LustreModel lustre;
  EXPECT_DOUBLE_EQ(lustre.mean_write_time(1, 0),
                   lustre.params().open_latency);
  EXPECT_DOUBLE_EQ(lustre.mean_read_time(1, 0),
                   lustre.params().open_latency);
}

TEST(LustreModel, SingleClientSeesUncontendedStream) {
  const LustreModel lustre;
  // One node's aggregate is its own client bandwidth, bent only by the
  // (negligible at n=1) saturation term.
  const double bw = lustre.aggregate_write_bandwidth(1);
  EXPECT_LE(bw, lustre.params().client_bw);
  EXPECT_GT(bw, 0.99 * lustre.params().client_bw);
}

TEST(LustreModel, AggregateBandwidthMonotoneAndBounded) {
  const LustreModel lustre;
  double prev = 0.0;
  for (std::int64_t n : {1, 8, 64, 512, 4096, 32768}) {
    const double bw = lustre.aggregate_write_bandwidth(n);
    EXPECT_GT(bw, prev) << "more writers must never lower the aggregate";
    EXPECT_LE(bw, lustre.params().peak_write);
    prev = bw;
  }
}

TEST(LustreModel, PerNodeWriteTimeMonotoneInNodeCount) {
  const LustreModel lustre;
  const std::uint64_t bytes = 1ull << 30;  // 1 GiB per node
  double prev = 0.0;
  for (std::int64_t n : {1, 8, 64, 512, 4096}) {
    const double t = lustre.mean_write_time(n, bytes);
    EXPECT_GE(t, prev)
        << "per-node time must not shrink as contention grows";
    prev = t;
  }
}

TEST(LustreModel, ReadBandwidthScaledByPeakRatio) {
  const LustreModel lustre;
  double prev = 0.0;
  for (std::int64_t n : {1, 8, 64, 512}) {
    const double bw = lustre.aggregate_read_bandwidth(n);
    EXPECT_GT(bw, prev);
    EXPECT_LE(bw, lustre.params().peak_read);
    prev = bw;
  }
}

TEST(LustreModel, SimulatedWriteBracketsTheMeanDeterministically) {
  const LustreModel lustre;
  gs::Rng rng_a(7), rng_b(7);
  const auto a = lustre.simulate_write(64, 1ull << 28, rng_a);
  const auto b = lustre.simulate_write(64, 1ull << 28, rng_b);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);  // same seed, same sample
  EXPECT_GT(a.fastest_node, 0.0);
  EXPECT_GE(a.slowest_node, a.fastest_node);
  EXPECT_DOUBLE_EQ(a.seconds, a.slowest_node);
  // The collective (slowest-node) time cannot beat the jitter-free mean
  // by more than the lognormal spread allows; sanity-bracket it.
  const double mean = lustre.mean_write_time(64, 1ull << 28);
  EXPECT_GT(a.seconds, 0.8 * mean);
  EXPECT_LT(a.seconds, 1.5 * mean);
}
