// Tests for src/common: RNG determinism and quality basics, statistics,
// histograms, formatting, clocks, error machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "common/checksum.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/format.h"
#include "common/rng.h"
#include "common/stats.h"

namespace {

using gs::Histogram;
using gs::Rng;
using gs::RunningStats;
using gs::Samples;

// ----------------------------------------------------------------- rng

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.uniform01());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  // Variance of U(0,1) is 1/12.
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-1.0, 1.0);
    ASSERT_GE(u, -1.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBelowIsUnbiasedAcrossSmallRange) {
  Rng r(17);
  std::array<int, 5> counts{};
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    ++counts[r.uniform_below(5)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, UniformBelowZeroAndOne) {
  Rng r(19);
  EXPECT_EQ(r.uniform_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_below(1), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(23);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.03);
  EXPECT_NEAR(s.stddev(), 2.0, 0.03);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(29);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(r.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, SplitProducesDecorrelatedStreams) {
  Rng parent(31);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(37), b(37);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(ca.next_u64(), cb.next_u64());
  }
  // And the parents stayed synchronized too.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, JumpChangesStream) {
  Rng a(41), b(41);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// --------------------------------------------------------------- stats

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng r(43);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.normal(1.0, 3.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, PercentileInterpolation) {
  Samples s;
  for (const double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.spread_percent(), 0.0);
}

TEST(Samples, SpreadPercent) {
  Samples s;
  s.add(90.0);
  s.add(100.0);
  s.add(110.0);
  EXPECT_NEAR(s.spread_percent(), 20.0, 1e-12);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.min(), gs::Error);
  EXPECT_THROW(s.percentile(50), gs::Error);
}

TEST(Samples, PercentileOutOfRangeThrows) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), gs::Error);
  EXPECT_THROW(s.percentile(101), gs::Error);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 62.5);
}

TEST(Histogram, AsciiRenderIncludesBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  h.add(0.75);
  const std::string art = h.ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("10"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), gs::Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), gs::Error);
}

// -------------------------------------------------------------- format

TEST(Format, Bytes) {
  EXPECT_EQ(gs::format_bytes(512), "512 B");
  EXPECT_EQ(gs::format_bytes(2048), "2.00 KB");
  EXPECT_EQ(gs::format_bytes(1ull << 30), "1.00 GB");
}

TEST(Format, BandwidthUsesDecimalGB) {
  EXPECT_EQ(gs::format_bandwidth_gbps(1.6e12), "1600.0 GB/s");
  EXPECT_EQ(gs::format_bandwidth_gbps(4.34e11), "434.0 GB/s");
}

TEST(Format, Seconds) {
  EXPECT_EQ(gs::format_seconds(2.5), "2.500 s");
  EXPECT_EQ(gs::format_seconds(0.02874), "28.74 ms");
  EXPECT_EQ(gs::format_seconds(3.2e-6), "3.20 us");
}

TEST(Format, Count) {
  EXPECT_EQ(gs::format_count(1073741824ull), "1,073,741,824");
  EXPECT_EQ(gs::format_count(999), "999");
  EXPECT_EQ(gs::format_count(1000), "1,000");
}

TEST(Format, TableAlignsColumns) {
  gs::TableFormatter t({"Kernel", "GB/s"});
  t.row({"HIP single variable", "1163"});
  t.row({"Julia", "570"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Kernel"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Both rows start at column 0 and the numbers are aligned to the same col.
  const auto pos1 = out.find("1163");
  const auto pos2 = out.find("570");
  ASSERT_NE(pos1, std::string::npos);
  ASSERT_NE(pos2, std::string::npos);
  const auto col = [&](std::size_t pos) {
    const auto nl = out.rfind('\n', pos);
    return pos - (nl == std::string::npos ? 0 : nl + 1);
  };
  EXPECT_EQ(col(pos1), col(pos2));
}

TEST(Format, TableRowWidthMismatchThrows) {
  gs::TableFormatter t({"a", "b"});
  EXPECT_THROW(t.row({"only one"}), gs::Error);
}

// --------------------------------------------------------------- clock

TEST(SimClock, AdvanceMonotone) {
  gs::SimClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance(-3.0);  // negative deltas ignored
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(1.0);  // going backwards ignored
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(4.0);
  EXPECT_DOUBLE_EQ(c.now(), 4.0);
}

TEST(WallTimer, MeasuresSomethingNonNegative) {
  gs::WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
}

// ------------------------------------------------------------ checksum

std::span<const std::byte> bytes_of(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(Crc32, KnownVectors) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(gs::crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(gs::crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(gs::crc32(bytes_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(gs::crc32(bytes_of("abc")), 0x352441C2u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto all = bytes_of("the quick brown fox");
  const auto part1 = all.subspan(0, 9);
  const auto part2 = all.subspan(9);
  EXPECT_EQ(gs::crc32_update(gs::crc32(part1), part2), gs::crc32(all));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<double> data(100, 1.5);
  const auto before =
      gs::crc32_of(std::span<const double>(data.data(), data.size()));
  auto* raw = reinterpret_cast<unsigned char*>(data.data());
  raw[403] ^= 0x10;
  const auto after =
      gs::crc32_of(std::span<const double>(data.data(), data.size()));
  EXPECT_NE(before, after);
}

// --------------------------------------------------------------- error

TEST(Error, ThrowMacroFormatsMessage) {
  try {
    GS_THROW(gs::IoError, "file " << 42 << " missing");
    FAIL() << "should have thrown";
  } catch (const gs::IoError& e) {
    EXPECT_STREQ(e.what(), "file 42 missing");
  }
}

TEST(Error, RequireMacroThrowsWithContext) {
  const int x = 3;
  try {
    GS_REQUIRE(x > 5, "x=" << x);
    FAIL() << "should have thrown";
  } catch (const gs::Error& e) {
    EXPECT_NE(std::string(e.what()).find("x=3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("x > 5"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw gs::ParseError("p"), gs::Error);
  EXPECT_THROW(throw gs::MpiError("m"), gs::Error);
  EXPECT_THROW(throw gs::GpuError("g"), std::runtime_error);
}

}  // namespace
