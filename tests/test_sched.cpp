// gs::sched — job state machine, cluster, policies, faults, campaigns.
#include <gtest/gtest.h>

#include <filesystem>

#include "bp/reader.h"
#include "config/json.h"
#include "sched/campaign.h"
#include "sched/cluster.h"
#include "sched/payload.h"
#include "sched/scheduler.h"

namespace sched = gs::sched;
using sched::DepType;
using sched::JobSpec;
using sched::JobState;
using sched::PayloadKind;
using sched::Policy;
using sched::Scheduler;
using sched::SchedulerConfig;

namespace {

JobSpec fixed_job(const std::string& name, const std::string& user,
                  std::int64_t nodes, double duration, double limit) {
  JobSpec s;
  s.name = name;
  s.user = user;
  s.nodes = nodes;
  s.walltime_limit = limit;
  s.payload.kind = PayloadKind::fixed;
  s.payload.fixed_duration = duration;
  return s;
}

SchedulerConfig small_cluster(Policy policy, std::int64_t nodes = 4) {
  SchedulerConfig cfg;
  cfg.policy = policy;
  cfg.cluster.nodes = nodes;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------- states

TEST(JobStateMachine, LegalAndIllegalTransitions) {
  EXPECT_TRUE(sched::valid_transition(JobState::pending, JobState::running));
  EXPECT_TRUE(sched::valid_transition(JobState::pending, JobState::cancelled));
  EXPECT_TRUE(sched::valid_transition(JobState::running, JobState::completed));
  EXPECT_TRUE(sched::valid_transition(JobState::running, JobState::failed));
  EXPECT_TRUE(sched::valid_transition(JobState::running, JobState::timeout));
  EXPECT_TRUE(sched::valid_transition(JobState::failed, JobState::requeued));
  EXPECT_TRUE(sched::valid_transition(JobState::requeued, JobState::running));

  EXPECT_FALSE(sched::valid_transition(JobState::pending, JobState::completed));
  EXPECT_FALSE(sched::valid_transition(JobState::completed, JobState::running));
  EXPECT_FALSE(sched::valid_transition(JobState::cancelled, JobState::pending));
  EXPECT_FALSE(sched::valid_transition(JobState::timeout, JobState::requeued));
}

TEST(JobStateMachine, TerminalStates) {
  EXPECT_TRUE(sched::is_terminal(JobState::completed));
  EXPECT_TRUE(sched::is_terminal(JobState::failed));
  EXPECT_TRUE(sched::is_terminal(JobState::timeout));
  EXPECT_TRUE(sched::is_terminal(JobState::cancelled));
  EXPECT_FALSE(sched::is_terminal(JobState::pending));
  EXPECT_FALSE(sched::is_terminal(JobState::running));
  EXPECT_FALSE(sched::is_terminal(JobState::requeued));
}

// --------------------------------------------------------------- cluster

TEST(Cluster, AllocateReleaseRoundTrip) {
  sched::Cluster cluster({.nodes = 4, .gcds_per_node = 8});
  EXPECT_EQ(cluster.free_nodes(0.0), 4);
  const auto alloc = cluster.allocate(3, /*job=*/7, 0.0);
  EXPECT_EQ(alloc.size(), 3u);
  EXPECT_EQ(cluster.free_nodes(0.0), 1);
  EXPECT_EQ(cluster.busy_nodes(), 3);
  cluster.release(alloc);
  EXPECT_EQ(cluster.free_nodes(0.0), 4);
}

TEST(Cluster, DownNodeStaysOutUntilRepair) {
  sched::Cluster cluster({.nodes = 2, .gcds_per_node = 8});
  cluster.mark_down(0, /*up_at=*/50.0);
  EXPECT_EQ(cluster.free_nodes(0.0), 1);
  EXPECT_FALSE(cluster.node_up(0, 49.0));
  EXPECT_TRUE(cluster.node_up(0, 50.0));
  EXPECT_EQ(cluster.free_nodes(50.0), 2);
  EXPECT_DOUBLE_EQ(cluster.next_repair_after(0.0), 50.0);
  EXPECT_EQ(cluster.repair_times(0.0).size(), 1u);
  EXPECT_EQ(cluster.repair_times(50.0).size(), 0u);
}

// ---------------------------------------------------------- dependencies

TEST(SchedulerDeps, AfterokBlocksUntilParentCompleted) {
  Scheduler s(small_cluster(Policy::fifo));
  const auto parent = s.submit(fixed_job("parent", "u", 1, 100.0, 200.0));
  auto child_spec = fixed_job("child", "u", 1, 10.0, 50.0);
  child_spec.deps.push_back({parent, DepType::afterok});
  const auto child = s.submit(child_spec);
  s.run();

  EXPECT_EQ(s.job(parent).state, JobState::completed);
  EXPECT_EQ(s.job(child).state, JobState::completed);
  // The cluster had free nodes the whole time: only the dependency held
  // the child back until the parent's completion at t=100.
  EXPECT_DOUBLE_EQ(s.job(parent).end_time, 100.0);
  EXPECT_DOUBLE_EQ(s.job(child).start_time, 100.0);
}

TEST(SchedulerDeps, AfterokChildCancelledWhenParentTimesOut) {
  Scheduler s(small_cluster(Policy::fifo));
  const auto parent =
      s.submit(fixed_job("parent", "u", 1, /*duration=*/100.0, /*limit=*/20.0));
  auto ok_spec = fixed_job("ok-child", "u", 1, 5.0, 50.0);
  ok_spec.deps.push_back({parent, DepType::afterok});
  const auto ok_child = s.submit(ok_spec);
  auto any_spec = fixed_job("any-child", "u", 1, 5.0, 50.0);
  any_spec.deps.push_back({parent, DepType::afterany});
  const auto any_child = s.submit(any_spec);
  s.run();

  EXPECT_EQ(s.job(parent).state, JobState::timeout);
  EXPECT_EQ(s.job(ok_child).state, JobState::cancelled);
  EXPECT_EQ(s.job(any_child).state, JobState::completed);
  // afterany fires at the parent's terminal time, not before.
  EXPECT_DOUBLE_EQ(s.job(any_child).start_time, 20.0);
}

// --------------------------------------------------------------- timeout

TEST(SchedulerTimeout, JobKilledAtWalltimeLimit) {
  Scheduler s(small_cluster(Policy::fifo));
  const auto id = s.submit(fixed_job("long", "u", 2, 100.0, 40.0));
  s.run();
  EXPECT_EQ(s.job(id).state, JobState::timeout);
  EXPECT_DOUBLE_EQ(s.job(id).end_time - s.job(id).start_time, 40.0);
  EXPECT_EQ(s.stats().timeouts, 1);
}

// -------------------------------------------------------------- backfill

TEST(SchedulerBackfill, SmallJobRunsAheadWithoutDelayingWideJob) {
  // J0 holds 3 of 4 nodes for 100 s; J1 needs all 4 (blocked until 100);
  // J2 needs 1 node for 50 s and fits entirely inside J1's wait.
  const auto submit_all = [](Scheduler& s) {
    s.submit(fixed_job("wide-running", "u", 3, 100.0, 100.0));
    s.submit(fixed_job("wide-blocked", "u", 4, 50.0, 50.0));
    s.submit(fixed_job("small", "u", 1, 50.0, 50.0));
  };

  Scheduler fifo(small_cluster(Policy::fifo));
  submit_all(fifo);
  fifo.run();
  Scheduler bf(small_cluster(Policy::backfill));
  submit_all(bf);
  bf.run();

  // FIFO: the blocked wide job stalls the small one behind it.
  EXPECT_DOUBLE_EQ(fifo.job(1).start_time, 100.0);
  EXPECT_DOUBLE_EQ(fifo.job(2).start_time, 150.0);

  // Backfill: the small job slips into the hole at t=0, and the wide job
  // still starts at exactly the same time as under FIFO (conservative:
  // its reservation was not delayed).
  EXPECT_DOUBLE_EQ(bf.job(2).start_time, 0.0);
  EXPECT_DOUBLE_EQ(bf.job(1).start_time, 100.0);

  EXPECT_LT(bf.stats().makespan, fifo.stats().makespan);
  EXPECT_GT(bf.stats().utilization, fifo.stats().utilization);
}

// ------------------------------------------------------------ fair share

TEST(SchedulerFairShare, HeavyUserYieldsToFreshUser) {
  // alice burns 4,000 node-seconds first; then alice and bob each queue a
  // full-cluster job. alice submitted earlier, bob has no usage: under
  // fair-share bob goes first.
  Scheduler s(small_cluster(Policy::fair_share));
  s.submit(fixed_job("alice-big", "alice", 4, 1000.0, 1000.0));
  const auto alice2 = s.submit(fixed_job("alice-next", "alice", 4, 10.0, 10.0));
  const auto bob1 = s.submit(fixed_job("bob-first", "bob", 4, 10.0, 10.0));
  s.run();

  EXPECT_GT(s.user_usage("alice"), s.user_usage("bob"));
  EXPECT_DOUBLE_EQ(s.job(bob1).start_time, 1000.0);
  EXPECT_DOUBLE_EQ(s.job(alice2).start_time, 1010.0);
  EXPECT_LT(s.job(bob1).start_time, s.job(alice2).start_time);
}

TEST(SchedulerFairShare, FifoWouldOrderBySubmissionInstead) {
  Scheduler s(small_cluster(Policy::fifo));
  s.submit(fixed_job("alice-big", "alice", 4, 1000.0, 1000.0));
  const auto alice2 = s.submit(fixed_job("alice-next", "alice", 4, 10.0, 10.0));
  const auto bob1 = s.submit(fixed_job("bob-first", "bob", 4, 10.0, 10.0));
  s.run();
  EXPECT_LT(s.job(alice2).start_time, s.job(bob1).start_time);
}

// ---------------------------------------------------------------- faults

TEST(SchedulerFaults, NodeFailureRequeuesThenSucceeds) {
  SchedulerConfig cfg = small_cluster(Policy::backfill);
  cfg.faults.node_fail_prob = 1.0;  // first attempt is guaranteed to die
  cfg.faults.max_failures = 1;      // ...and the injection budget is spent
  cfg.faults.repair_time = 60.0;
  Scheduler s(cfg);
  auto spec = fixed_job("victim", "u", 2, 100.0, 150.0);
  spec.max_retries = 2;
  const auto id = s.submit(spec);
  s.run();

  const auto& j = s.job(id);
  EXPECT_EQ(j.state, JobState::completed);
  EXPECT_EQ(j.attempts, 2);
  EXPECT_EQ(j.requeues, 1);
  EXPECT_EQ(s.stats().requeues, 1);
  EXPECT_EQ(s.stats().completed, 1);

  bool saw_fail = false, saw_requeue = false;
  for (const auto& e : s.events()) {
    if (e.event == "NODE_FAIL") saw_fail = true;
    if (e.event == "REQUEUE") saw_requeue = true;
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_requeue);
}

TEST(SchedulerFaults, RetryBudgetExhaustionFailsPermanently) {
  SchedulerConfig cfg = small_cluster(Policy::backfill);
  cfg.faults.node_fail_prob = 1.0;
  cfg.faults.max_failures = 10;  // every attempt dies
  Scheduler s(cfg);
  auto spec = fixed_job("doomed", "u", 1, 50.0, 100.0);
  spec.max_retries = 1;
  const auto id = s.submit(spec);
  s.run();

  EXPECT_EQ(s.job(id).state, JobState::failed);
  EXPECT_EQ(s.job(id).requeues, 1);
  EXPECT_EQ(s.job(id).attempts, 2);
  EXPECT_EQ(s.stats().failed, 1);
}

// ----------------------------------------------------------- determinism

namespace {

Scheduler run_reference_scenario(std::uint64_t seed) {
  SchedulerConfig cfg;
  cfg.policy = Policy::backfill;
  cfg.cluster.nodes = 8;
  cfg.seed = seed;
  cfg.faults.node_fail_prob = 0.4;
  cfg.faults.max_failures = 3;
  Scheduler s(cfg);
  for (int u = 0; u < 3; ++u) {
    const std::string user = "user" + std::to_string(u);
    for (int i = 0; i < 3; ++i) {
      JobSpec spec;
      spec.name = user + ".job" + std::to_string(i);
      spec.user = user;
      spec.nodes = 1 + (u + i) % 4;
      spec.walltime_limit = 4000.0;
      spec.payload.kind = PayloadKind::modeled;
      spec.payload.modeled.steps = 20 + 10 * i;
      spec.payload.modeled.cells_per_rank_edge = 128;
      spec.payload.modeled.output_steps = i;
      s.submit(spec, /*submit_at=*/double(60 * u + 10 * i));
    }
  }
  s.run();
  return s;
}

}  // namespace

TEST(SchedulerDeterminism, AccountingLogBitIdenticalForFixedSeed) {
  const Scheduler a = run_reference_scenario(12345);
  const Scheduler b = run_reference_scenario(12345);
  EXPECT_EQ(a.event_log(), b.event_log());
  EXPECT_EQ(a.sacct(), b.sacct());
  EXPECT_FALSE(a.event_log().empty());
}

TEST(SchedulerDeterminism, DifferentSeedChangesModeledOutcomes) {
  const Scheduler a = run_reference_scenario(12345);
  const Scheduler b = run_reference_scenario(54321);
  EXPECT_NE(a.event_log(), b.event_log());
}

TEST(SchedulerDeterminism, EqualPriorityBreaksTiesBySubmitTimeThenId) {
  // Four identical-priority jobs on a one-node cluster: start order must
  // be earlier submit first, then lower id — never the map/sort whim of
  // a particular run.
  Scheduler s(small_cluster(Policy::backfill, 1));
  const auto late = s.submit(fixed_job("late", "u", 1, 10, 500),
                             /*submit_at=*/5.0);
  const auto a = s.submit(fixed_job("a", "u", 1, 10, 500));
  const auto b = s.submit(fixed_job("b", "u", 1, 10, 500));
  const auto c = s.submit(fixed_job("c", "u", 1, 10, 500));
  s.run();
  // t=0 submissions run in id order (a, b, c), the t=5 one last even
  // though it has the smallest id.
  EXPECT_DOUBLE_EQ(s.job(a).start_time, 0.0);
  EXPECT_DOUBLE_EQ(s.job(b).start_time, 10.0);
  EXPECT_DOUBLE_EQ(s.job(c).start_time, 20.0);
  EXPECT_DOUBLE_EQ(s.job(late).start_time, 30.0);

  // Explicit priority still dominates the tie-break.
  Scheduler t(small_cluster(Policy::fifo, 1));
  JobSpec boosted = fixed_job("boosted", "u", 1, 10, 500);
  boosted.priority = 10.0;
  const auto plain = t.submit(fixed_job("plain", "u", 1, 10, 500));
  const auto hi = t.submit(boosted);
  t.run();
  EXPECT_DOUBLE_EQ(t.job(hi).start_time, 0.0);
  EXPECT_DOUBLE_EQ(t.job(plain).start_time, 10.0);
}

// ----------------------------------------------------------- payloads

TEST(Payload, ModeledDurationMonotoneInNodes) {
  sched::ModeledPayload p;
  p.steps = 50;
  p.cells_per_rank_edge = 256;
  p.output_steps = 2;
  double prev = 0.0;
  for (std::int64_t nodes : {1, 2, 8, 64, 512}) {
    const double d = sched::modeled_mean_duration(p, nodes, 8);
    EXPECT_GT(d, 0.0);
    EXPECT_GE(d, prev) << "duration must not shrink as the job widens";
    prev = d;
  }
}

TEST(Payload, AotRemovesJitCharge) {
  sched::ModeledPayload jit;
  jit.steps = 1;
  sched::ModeledPayload aot = jit;
  aot.aot = true;
  EXPECT_GT(sched::modeled_mean_duration(jit, 1, 8),
            sched::modeled_mean_duration(aot, 1, 8));
}

TEST(Payload, FunctionalJobWritesReadableDataset) {
  const std::string out = "test_sched_func.bp";
  std::filesystem::remove_all(out);

  Scheduler s(small_cluster(Policy::fifo, /*nodes=*/1));
  JobSpec spec;
  spec.name = "func";
  spec.user = "u";
  spec.nodes = 1;
  spec.ranks_per_node = 2;
  spec.walltime_limit = 3600.0;
  spec.payload.kind = PayloadKind::functional;
  spec.payload.settings.L = 16;
  spec.payload.settings.steps = 8;
  spec.payload.settings.plotgap = 4;
  spec.payload.settings.output = out;
  spec.payload.settings.ranks_per_node = 2;
  const auto id = s.submit(spec);
  s.run();

  EXPECT_EQ(s.job(id).state, JobState::completed);
  EXPECT_GT(s.job(id).duration, 0.0);
  EXPECT_GT(s.stats().io_bytes, 0u);

  const gs::bp::Reader reader(out);
  EXPECT_GE(reader.n_steps(), 1);
  const auto info = reader.info("U");
  EXPECT_EQ(info.type, "double");
  std::filesystem::remove_all(out);
}

// ----------------------------------------------------------- campaigns

TEST(Campaign, ParsesDagAndRejectsUnknownKeys) {
  const auto doc = gs::json::parse(R"({
    "name": "c", "user": "u",
    "jobs": [
      { "name": "a", "kind": "fixed", "duration": 10, "walltime": 20 },
      { "name": "b", "kind": "fixed", "duration": 5, "walltime": 20,
        "depends": [ { "job": "a", "type": "afterok" } ] }
    ]
  })");
  const auto c = sched::campaign_from_json(doc);
  ASSERT_EQ(c.jobs.size(), 2u);
  ASSERT_EQ(c.jobs[1].deps.size(), 1u);
  EXPECT_EQ(c.jobs[1].deps[0].job, 0);
  EXPECT_EQ(c.jobs[1].deps[0].type, DepType::afterok);

  EXPECT_THROW(sched::campaign_from_json(gs::json::parse(
                   R"({"name":"c","jobs":[{"name":"a","walltime":1,
                       "typo_key": 3}]})")),
               gs::ParseError);
}

TEST(Campaign, RejectsForwardDependency) {
  EXPECT_THROW(sched::campaign_from_json(gs::json::parse(R"({
    "name": "c",
    "jobs": [
      { "name": "a", "walltime": 10,
        "depends": [ { "job": "later" } ] },
      { "name": "later", "walltime": 10 }
    ]
  })")),
               gs::ParseError);
}

TEST(Campaign, PipelineCampaignRunsInOrder) {
  Scheduler s(small_cluster(Policy::backfill, /*nodes=*/8));
  const auto c = sched::pipeline_campaign("pipe", "u", /*nodes=*/4,
                                          /*steps=*/50, /*output_steps=*/2);
  const auto ids = sched::submit_campaign(s, c);
  ASSERT_EQ(ids.size(), 3u);
  s.run();

  const auto& sim = s.job(ids[0]);
  const auto& analysis = s.job(ids[1]);
  const auto& cleanup = s.job(ids[2]);
  EXPECT_EQ(sim.state, JobState::completed);
  EXPECT_EQ(analysis.state, JobState::completed);
  EXPECT_EQ(cleanup.state, JobState::completed);
  EXPECT_GE(analysis.start_time, sim.end_time);
  EXPECT_GE(cleanup.start_time, analysis.end_time);
}

// -------------------------------------------------------------- reports

TEST(Reports, SqueueAndSacctMentionJobs) {
  Scheduler s(small_cluster(Policy::fifo));
  s.submit(fixed_job("visible", "carol", 1, 10.0, 20.0));
  EXPECT_NE(s.squeue().find("visible"), std::string::npos);
  EXPECT_NE(s.squeue().find("PD"), std::string::npos);
  s.run();
  EXPECT_NE(s.sacct().find("COMPLETED"), std::string::npos);
  EXPECT_NE(s.sacct().find("carol"), std::string::npos);
}

TEST(Reports, UtilizationWithinUnitInterval) {
  const Scheduler s = run_reference_scenario(7);
  const auto st = s.stats();
  EXPECT_GT(st.makespan, 0.0);
  EXPECT_GT(st.utilization, 0.0);
  EXPECT_LE(st.utilization, 1.0);
  EXPECT_EQ(st.queue_waits.count(), s.jobs().size());
}
