// Tests for the from-scratch JSON parser/serializer in src/config/json.h.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "config/json.h"

namespace {

using gs::json::Array;
using gs::json::Object;
using gs::json::parse;
using gs::json::Type;
using gs::json::Value;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.5E-2").as_double(), -0.025);
  EXPECT_EQ(parse("\"hello\"").as_string(), "hello");
}

TEST(JsonParse, IntegerPreservedExactly) {
  // 2^53+1 is not representable as double; int64 storage keeps it exact.
  EXPECT_EQ(parse("9007199254740993").as_int(), 9007199254740993LL);
}

TEST(JsonParse, IntPromotesToDouble) {
  EXPECT_DOUBLE_EQ(parse("7").as_double(), 7.0);
}

TEST(JsonParse, DoubleToIntWhenIntegral) {
  EXPECT_EQ(parse("5.0").as_int(), 5);
  EXPECT_THROW(parse("5.5").as_int(), gs::ParseError);
}

TEST(JsonParse, Whitespace) {
  EXPECT_EQ(parse("  \n\t 1 \r\n ").as_int(), 1);
}

TEST(JsonParse, Arrays) {
  const Value v = parse("[1, 2.5, \"x\", true, null, []]");
  const auto& a = v.as_array();
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(a[1].as_double(), 2.5);
  EXPECT_EQ(a[2].as_string(), "x");
  EXPECT_TRUE(a[3].as_bool());
  EXPECT_TRUE(a[4].is_null());
  EXPECT_TRUE(a[5].as_array().empty());
}

TEST(JsonParse, NestedObjects) {
  const Value v = parse(R"({"a": {"b": {"c": [1, 2, 3]}}, "d": 4})");
  EXPECT_EQ(v.at("a").at("b").at("c").as_array()[2].as_int(), 3);
  EXPECT_EQ(v.at("d").as_int(), 4);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse(R"("a\nb\tc")").as_string(), "a\nb\tc");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, SurrogatePair) {
  // U+1F600 as a surrogate pair.
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, UnpairedSurrogateFails) {
  EXPECT_THROW(parse(R"("\ud83d")"), gs::ParseError);
  EXPECT_THROW(parse(R"("\ude00")"), gs::ParseError);
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(parse(""), gs::ParseError);
  EXPECT_THROW(parse("{"), gs::ParseError);
  EXPECT_THROW(parse("[1,]"), gs::ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), gs::ParseError);
  EXPECT_THROW(parse("{\"a\": 1,}"), gs::ParseError);
  EXPECT_THROW(parse("tru"), gs::ParseError);
  EXPECT_THROW(parse("01x"), gs::ParseError);
  EXPECT_THROW(parse("1 2"), gs::ParseError);
  EXPECT_THROW(parse("\"unterminated"), gs::ParseError);
  EXPECT_THROW(parse("{1: 2}"), gs::ParseError);
  EXPECT_THROW(parse("[1 2]"), gs::ParseError);
  EXPECT_THROW(parse("-"), gs::ParseError);
  EXPECT_THROW(parse("1."), gs::ParseError);
  EXPECT_THROW(parse("1e"), gs::ParseError);
}

TEST(JsonParse, ErrorMessageHasLineColumn) {
  try {
    parse("{\n  \"a\": ???\n}");
    FAIL();
  } catch (const gs::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos);
  }
}

TEST(JsonParse, RawControlCharacterInStringFails) {
  EXPECT_THROW(parse("\"a\nb\""), gs::ParseError);
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string doc =
      R"({"arr":[1,2.5,"s"],"flag":true,"nested":{"x":null}})";
  const Value v = parse(doc);
  EXPECT_EQ(parse(v.dump()), v);
  EXPECT_EQ(v.dump(), doc);
}

TEST(JsonDump, PrettyRoundTrip) {
  const Value v = parse(R"({"a": [1, {"b": 2}], "c": "d"})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

TEST(JsonDump, DoubleRoundTripsExactly) {
  Object o;
  o["x"] = Value(0.1);
  o["y"] = Value(1.0 / 3.0);
  o["z"] = Value(1.5e300);
  const Value v{o};
  const Value re = parse(v.dump());
  EXPECT_DOUBLE_EQ(re.at("x").as_double(), 0.1);
  EXPECT_DOUBLE_EQ(re.at("y").as_double(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(re.at("z").as_double(), 1.5e300);
}

TEST(JsonDump, EscapesControlAndQuotes) {
  const Value v{std::string("a\"b\\c\nd\x01")};
  const std::string out = v.dump();
  EXPECT_EQ(parse(out).as_string(), v.as_string());
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
}

TEST(JsonValue, TypeQueries) {
  EXPECT_EQ(Value().type(), Type::null);
  EXPECT_EQ(Value(true).type(), Type::boolean);
  EXPECT_EQ(Value(1.5).type(), Type::number);
  EXPECT_EQ(Value(1).type(), Type::number);
  EXPECT_EQ(Value("s").type(), Type::string);
  EXPECT_EQ(Value(Array{}).type(), Type::array);
  EXPECT_EQ(Value(Object{}).type(), Type::object);
}

TEST(JsonValue, TypeMismatchThrows) {
  EXPECT_THROW(Value(1).as_string(), gs::ParseError);
  EXPECT_THROW(Value("s").as_int(), gs::ParseError);
  EXPECT_THROW(Value(true).as_array(), gs::ParseError);
  EXPECT_THROW(Value().at("k"), gs::ParseError);
}

TEST(JsonValue, GetOrDefaults) {
  const Value v = parse(R"({"i": 3, "d": 2.5, "s": "x", "b": false})");
  EXPECT_EQ(v.get_or("i", std::int64_t{9}), 3);
  EXPECT_EQ(v.get_or("missing", std::int64_t{9}), 9);
  EXPECT_DOUBLE_EQ(v.get_or("d", 0.0), 2.5);
  EXPECT_EQ(v.get_or("s", std::string("y")), "x");
  EXPECT_EQ(v.get_or("missing", std::string("y")), "y");
  EXPECT_EQ(v.get_or("b", true), false);
  EXPECT_EQ(v.get_or("missing", true), true);
}

TEST(JsonValue, SetBuildsObjects) {
  Value v;
  v.set("a", Value(1)).set("b", Value("x"));
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").as_string(), "x");
}

TEST(JsonFile, ParseFileAndMissingFile) {
  const std::string path = testing::TempDir() + "/gs_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"L": 64})";
  }
  EXPECT_EQ(gs::json::parse_file(path).at("L").as_int(), 64);
  std::remove(path.c_str());
  EXPECT_THROW(gs::json::parse_file(path), gs::IoError);
}

TEST(JsonParse, DeepNestingWithinLimitParses) {
  const int depth = 150;
  std::string doc(depth, '[');
  doc += "1";
  doc += std::string(depth, ']');
  const Value v = parse(doc);
  const Value* p = &v;
  for (int i = 0; i < depth; ++i) p = &p->as_array()[0];
  EXPECT_EQ(p->as_int(), 1);
}

TEST(JsonParse, HostileNestingRejectedNotCrashed) {
  // A 100k-deep document must fail with a ParseError, not a stack
  // overflow (md.idx files come from disk and could be hostile).
  const int depth = 100000;
  std::string doc(depth, '[');
  doc += "1";
  doc += std::string(depth, ']');
  EXPECT_THROW(parse(doc), gs::ParseError);
  std::string obj_doc;
  for (int i = 0; i < depth; ++i) obj_doc += "{\"a\":";
  obj_doc += "1";
  obj_doc += std::string(depth, '}');
  EXPECT_THROW(parse(obj_doc), gs::ParseError);
}

TEST(JsonDump, ObjectKeysSortedDeterministically) {
  const Value v = parse(R"({"zebra":1,"alpha":2,"mid":3})");
  const std::string out = v.dump();
  EXPECT_LT(out.find("alpha"), out.find("mid"));
  EXPECT_LT(out.find("mid"), out.find("zebra"));
}

}  // namespace
