// Tests for the rocprof-mini profiler: span recording, aggregation,
// Chrome-trace export, report rendering, timeline art.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "config/json.h"
#include "prof/profiler.h"

namespace {

using gs::prof::CounterSet;
using gs::prof::Profiler;
using gs::prof::Span;
using gs::prof::SpanKind;

Span make_span(const std::string& name, SpanKind kind, double t0, double t1,
               std::uint64_t fetch = 0) {
  Span s;
  s.name = name;
  s.kind = kind;
  s.t0 = t0;
  s.t1 = t1;
  s.counters.fetch_bytes = fetch;
  return s;
}

TEST(Profiler, RecordsAndAccumulates) {
  Profiler p;
  EXPECT_TRUE(p.empty());
  p.record(make_span("k1", SpanKind::kernel, 0.0, 0.5));
  p.record(make_span("k1", SpanKind::kernel, 0.6, 1.0));
  p.record(make_span("copy", SpanKind::memcpy_h2d, 0.5, 0.6));
  EXPECT_EQ(p.spans().size(), 3u);
  EXPECT_DOUBLE_EQ(p.total_time(SpanKind::kernel), 0.9);
  EXPECT_DOUBLE_EQ(p.total_time(SpanKind::memcpy_h2d), 0.1);
  EXPECT_DOUBLE_EQ(p.total_time(SpanKind::io_write), 0.0);
}

TEST(Profiler, RejectsBackwardsSpan) {
  Profiler p;
  EXPECT_THROW(p.record(make_span("bad", SpanKind::kernel, 1.0, 0.5)),
               gs::Error);
}

TEST(Profiler, KernelStatsAggregatePerName) {
  Profiler p;
  p.record(make_span("a", SpanKind::kernel, 0.0, 1.0, 100));
  p.record(make_span("b", SpanKind::kernel, 1.0, 1.5, 50));
  p.record(make_span("a", SpanKind::kernel, 2.0, 5.0, 300));
  p.record(make_span("copy", SpanKind::memcpy_d2h, 5.0, 6.0));  // ignored

  const auto stats = p.kernel_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[0].calls, 2u);
  EXPECT_DOUBLE_EQ(stats[0].total_time, 4.0);
  EXPECT_DOUBLE_EQ(stats[0].avg_time(), 2.0);
  EXPECT_DOUBLE_EQ(stats[0].min_time, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].max_time, 3.0);
  EXPECT_EQ(stats[0].total.fetch_bytes, 400u);
  EXPECT_EQ(stats[1].name, "b");
  EXPECT_EQ(stats[1].calls, 1u);
}

TEST(Profiler, CounterSetMerge) {
  CounterSet a;
  a.fetch_bytes = 10;
  a.tcc_hits = 3;
  a.tcc_misses = 1;
  CounterSet b;
  b.fetch_bytes = 5;
  b.tcc_hits = 1;
  b.tcc_misses = 3;
  b.workgroup_size = 512;
  a += b;
  EXPECT_EQ(a.fetch_bytes, 15u);
  EXPECT_EQ(a.tcc_hits, 4u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.5);
  EXPECT_EQ(a.workgroup_size, 512u);
}

TEST(Profiler, HitRateEmptyCountersIsZero) {
  EXPECT_DOUBLE_EQ(CounterSet{}.hit_rate(), 0.0);
}

TEST(Profiler, ChromeTraceIsValidJson) {
  Profiler p;
  p.record(make_span("stencil", SpanKind::kernel, 0.0, 0.111, 1000));
  p.record(make_span("d2h:u", SpanKind::memcpy_d2h, 0.111, 0.2));
  const auto doc = gs::json::parse(p.chrome_trace_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "stencil");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(events[0].at("dur").as_double(), 111000.0);  // us
  EXPECT_EQ(events[0].at("args").at("fetch_bytes").as_int(), 1000);
  EXPECT_EQ(events[1].at("cat").as_string(), "memcpy_d2h");
}

TEST(Profiler, ReportContainsTable3Columns) {
  Profiler p;
  Span s = make_span("_kernel_gs_2var", SpanKind::kernel, 0.0, 0.111);
  s.counters.fetch_bytes = 50ull << 30;
  s.counters.write_bytes = 16ull << 30;
  s.counters.tcc_hits = 24600000;
  s.counters.tcc_misses = 17190000;
  s.counters.workgroup_size = 512;
  s.counters.lds_bytes = 29184;
  s.counters.scratch_bytes = 8192;
  p.record(std::move(s));
  const std::string rep = p.report();
  for (const char* col : {"FETCH_SIZE", "WRITE_SIZE", "TCC_HIT", "TCC_MISS",
                          "wgr", "lds", "scr", "AvgDur"}) {
    EXPECT_NE(rep.find(col), std::string::npos) << col;
  }
  EXPECT_NE(rep.find("_kernel_gs_2var"), std::string::npos);
  EXPECT_NE(rep.find("512"), std::string::npos);
  EXPECT_NE(rep.find("29184"), std::string::npos);
}

TEST(Profiler, AsciiTimelineShowsLanes) {
  Profiler p;
  p.record(make_span("k", SpanKind::kernel, 0.0, 0.4));
  p.record(make_span("c", SpanKind::memcpy_d2h, 0.4, 0.5));
  const std::string art = p.ascii_timeline(40);
  EXPECT_NE(art.find("kernel"), std::string::npos);
  EXPECT_NE(art.find("memcpy_d2h"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  // No lane for kinds with no spans.
  EXPECT_EQ(art.find("io_write"), std::string::npos);
}

TEST(Profiler, EmptyTimeline) {
  Profiler p;
  EXPECT_NE(p.ascii_timeline().find("empty"), std::string::npos);
}

TEST(Profiler, ClearEmpties) {
  Profiler p;
  p.record(make_span("k", SpanKind::kernel, 0.0, 1.0));
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(p.kernel_stats().empty());
}

TEST(Profiler, RecordIsThreadSafeAndLanesAreDistinct) {
  Profiler p;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&p, t] {
      for (int i = 0; i < kPerThread; ++i) {
        p.record(make_span("t" + std::to_string(t), SpanKind::kernel,
                           i * 1.0, i * 1.0 + 0.5));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(p.spans().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Each recording thread gets a stable, nonzero lane, and different
  // threads get different lanes.
  std::map<std::string, std::set<std::uint64_t>> lanes_by_name;
  for (const auto& s : p.spans()) {
    EXPECT_NE(s.tid, 0u);
    lanes_by_name[s.name].insert(s.tid);
  }
  std::set<std::uint64_t> all_lanes;
  for (const auto& [name, lanes] : lanes_by_name) {
    EXPECT_EQ(lanes.size(), 1u) << name << " used multiple lanes";
    all_lanes.insert(*lanes.begin());
  }
  EXPECT_EQ(all_lanes.size(), static_cast<std::size_t>(kThreads));
}

TEST(Profiler, ChromeTraceCarriesRecordingThreadLane) {
  Profiler p;
  Span s = make_span("svc.FieldStats", SpanKind::io_read, 0.0, 0.1);
  s.tid = 7;  // explicit lane is preserved verbatim
  p.record(std::move(s));
  p.record(make_span("k", SpanKind::kernel, 0.1, 0.2));  // lane auto-filled
  const auto doc = gs::json::parse(p.chrome_trace_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("tid").as_int(), 7);
  EXPECT_GT(events[1].at("tid").as_int(), 0);
}

}  // namespace
