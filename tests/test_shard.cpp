// Tests for gs::shard — the sharded serving cluster. The consistent-hash
// ring must place deterministically and reshuffle minimally, the shard
// map must round-trip and keep its placement CRC independent of
// endpoints, health tracking must apply hysteresis in both directions,
// and — the core correctness invariant the router relies on — the exact
// merge machinery (ExactSum/ExactStats/Histogram, svc::merge) must be
// order-independent and bitwise-identical across ANY shard partitioning
// of the same data. End-to-end: a 3-shard cluster behind a Router must
// answer byte-identically to a single daemon, survive a shard kill via
// failover, and degrade explicitly (never silently) without failover.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bp/writer.h"
#include "common/stats.h"
#include "fault/fault.h"
#include "grid/decomp.h"
#include "mpi/runtime.h"
#include "rpc/pool.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "shard/health.h"
#include "shard/map.h"
#include "shard/reshard.h"
#include "shard/router.h"
#include "svc/merge.h"
#include "svc/service.h"

namespace {

namespace fs = std::filesystem;
using gs::Box3;
using gs::Decomposition;
using gs::ExactStats;
using gs::ExactSum;
using gs::Index3;
namespace shard = gs::shard;
namespace svc = gs::svc;
namespace rpc = gs::rpc;

constexpr std::int64_t kL = 16;
constexpr int kSteps = 3;

std::string temp_path(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return (fs::path(testing::TempDir()) / (name + "." + pid)).string();
}

double cell_value(const Index3& g, const Index3& shape, std::int64_t step) {
  return static_cast<double>(gs::linear_index(g, shape)) +
         1e6 * static_cast<double>(step);
}

/// Writes kSteps of L^3 "U" and "V" with 8 writers (8 blocks per step —
/// enough placement granularity for a 3-shard split).
std::string write_dataset(const std::string& name) {
  const std::string path = temp_path(name) + ".bp";
  fs::remove_all(path);
  gs::mpi::run(8, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(kL, world.size());
    const Box3 box = d.local_box(world.rank());
    const Index3 shape{kL, kL, kL};
    gs::bp::Writer w(path, world, 2);
    for (int s = 0; s < kSteps; ++s) {
      std::vector<double> block(static_cast<std::size_t>(box.volume()));
      std::size_t n = 0;
      for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
        for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
          for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
            block[n++] = cell_value({i, j, k}, shape, s);
          }
        }
      }
      w.begin_step();
      w.put("U", shape, box, block);
      w.put("V", shape, box, block);
      w.put_scalar("step", 10 * s);
      w.end_step();
    }
    w.close();
  });
  return path;
}

const std::string& dataset() {
  static const std::string path = write_dataset("shard_shared");
  return path;
}

shard::ShardMap make_map(std::size_t n, std::uint64_t epoch = 1,
                         std::size_t vnodes = 64) {
  std::vector<shard::ShardInfo> shards;
  for (std::size_t i = 0; i < n; ++i) {
    shards.push_back(shard::ShardInfo{"s" + std::to_string(i),
                                      "127.0.0.1:" + std::to_string(7000 + i)});
  }
  return shard::ShardMap(epoch, vnodes, std::move(shards));
}

// ---- consistent-hash ring ------------------------------------------------

TEST(ShardRing, OwnerIsDeterministicAndCoversEveryKey) {
  const shard::ShardMap map = make_map(4);
  const shard::Ring a(map);
  const shard::Ring b(map);
  std::map<std::string, int> hits;
  for (int blk = 0; blk < 64; ++blk) {
    const std::string key = shard::Ring::block_key("U", 1, blk);
    const std::string& owner = a.owner(key);
    EXPECT_EQ(owner, b.owner(key)) << key;
    ASSERT_NE(map.find(owner), nullptr) << key;
    ++hits[owner];
  }
  // With 64 vnodes per shard every shard should own a share of 64 keys.
  EXPECT_GE(hits.size(), 3u);
}

TEST(ShardRing, ChainStartsAtOwnerAndIsDistinct) {
  const shard::ShardMap map = make_map(5);
  const shard::Ring ring(map);
  const std::string key = shard::Ring::block_key("V", 2, 3);
  const auto chain = ring.chain(key, 5);
  ASSERT_EQ(chain.size(), 5u);
  EXPECT_EQ(chain[0], ring.owner(key));
  std::vector<std::string> sorted = chain;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ShardRing, AddingOneShardMovesOnlyAFraction) {
  const shard::ShardMap four = make_map(4);
  const shard::ShardMap five = make_map(5);
  const shard::Ring before(four);
  const shard::Ring after(five);
  int moved = 0;
  const int keys = 512;
  for (int i = 0; i < keys; ++i) {
    const std::string key = shard::Ring::block_key("U", i % 8, i);
    if (before.owner(key) != after.owner(key)) ++moved;
  }
  // Theory says ~1/5 of keys move to the new shard; anything close to a
  // full reshuffle means the ring is broken (modulo placement would move
  // ~4/5).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, keys * 2 / 5) << "ring reshuffles too much";
  // And every moved key moved TO the new shard, never between old ones.
  for (int i = 0; i < keys; ++i) {
    const std::string key = shard::Ring::block_key("U", i % 8, i);
    if (before.owner(key) != after.owner(key)) {
      EXPECT_EQ(after.owner(key), "s4") << key;
    }
  }
}

// ---- shard map -----------------------------------------------------------

TEST(ShardMap, JsonRoundTripPreservesEverything) {
  const shard::ShardMap map = make_map(3, /*epoch=*/7, /*vnodes=*/32);
  const shard::ShardMap back = shard::ShardMap::from_json(map.to_json());
  EXPECT_EQ(back.epoch(), 7u);
  EXPECT_EQ(back.vnodes(), 32u);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.shards()[1].id, "s1");
  EXPECT_EQ(back.shards()[1].endpoint, "127.0.0.1:7001");
  EXPECT_EQ(back.ring_crc(), map.ring_crc());
}

TEST(ShardMap, RingCrcIgnoresEndpointsButNotMembership) {
  const shard::ShardMap a = make_map(3);
  std::vector<shard::ShardInfo> moved;
  for (const auto& s : a.shards()) {
    moved.push_back(shard::ShardInfo{s.id, "unix:/tmp/elsewhere-" + s.id});
  }
  const shard::ShardMap b(1, 64, std::move(moved));
  EXPECT_EQ(a.ring_crc(), b.ring_crc())
      << "moving a daemon must not reshuffle placement";
  EXPECT_NE(a.ring_crc(), make_map(4).ring_crc());
  EXPECT_NE(a.ring_crc(), make_map(3, /*epoch=*/2).ring_crc());
}

TEST(ShardMap, RejectsBadMemberships) {
  using Shards = std::vector<shard::ShardInfo>;
  const Shards none;
  const Shards one = {{"a", "x"}};
  const Shards dup = {{"a", "x"}, {"a", "y"}};
  const Shards pipe = {{"a|b", "x"}};
  const Shards blank = {{"", "x"}};
  EXPECT_THROW(shard::ShardMap(1, 64, none), gs::Error);
  EXPECT_THROW(shard::ShardMap(1, 0, one), gs::Error);
  EXPECT_THROW(shard::ShardMap(1, 64, dup), gs::Error);
  EXPECT_THROW(shard::ShardMap(1, 64, pipe), gs::Error);
  EXPECT_THROW(shard::ShardMap(1, 64, blank), gs::Error);
}

// ---- health hysteresis ---------------------------------------------------

TEST(ShardHealth, HysteresisInBothDirections) {
  shard::HealthTracker h({"a", "b"}, shard::HealthConfig{2, 3});
  EXPECT_TRUE(h.alive("a"));

  h.record_failure("a");
  EXPECT_TRUE(h.alive("a")) << "one failure must not kill a shard";
  h.record_success("a");  // resets the failure run
  h.record_failure("a");
  EXPECT_TRUE(h.alive("a"));
  h.record_failure("a");
  EXPECT_FALSE(h.alive("a")) << "two consecutive failures flip to dead";
  EXPECT_TRUE(h.alive("b")) << "health is per shard";

  h.record_success("a");
  h.record_success("a");
  EXPECT_FALSE(h.alive("a")) << "two successes are not yet three";
  h.record_failure("a");  // resets the success run
  h.record_success("a");
  h.record_success("a");
  h.record_success("a");
  EXPECT_TRUE(h.alive("a")) << "three consecutive successes revive";

  const auto snap = h.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].went_dead, 1u);
  EXPECT_EQ(snap[0].went_live, 1u);
  EXPECT_EQ(h.dead_shards().size(), 0u);
}

// ---- exact merge invariants (the router's core correctness claim) --------

TEST(ExactMerge, SumSurvivesCatastrophicCancellation) {
  ExactSum s;
  s.add(1e16);
  s.add(1.0);
  s.add(-1e16);
  EXPECT_EQ(s.value(), 1.0);  // double addition would lose the 1.0
}

TEST(ExactMerge, StatsAreBitwiseIdenticalAcrossAnyPartitioning) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  std::vector<double> data(4096);
  for (double& x : data) x = value(rng);

  ExactStats whole;
  for (const double x : data) whole.add(x);
  const auto reference = gs::analysis::stats_from_exact(whole);

  for (int trial = 0; trial < 10; ++trial) {
    // Random partition into up to 8 "shards"...
    std::uniform_int_distribution<int> pick(0, 7);
    std::vector<ExactStats> parts(8);
    for (const double x : data) parts[static_cast<std::size_t>(pick(rng))].add(x);
    // ...merged in a shuffled order.
    std::shuffle(parts.begin(), parts.end(), rng);
    ExactStats merged;
    for (const auto& p : parts) merged.merge(p);

    EXPECT_TRUE(merged == whole) << "trial " << trial;
    const auto stats = gs::analysis::stats_from_exact(merged);
    EXPECT_EQ(stats.mean, reference.mean);
    EXPECT_EQ(stats.stddev, reference.stddev);
    EXPECT_EQ(stats.min, reference.min);
    EXPECT_EQ(stats.max, reference.max);
    EXPECT_EQ(stats.count, reference.count);
  }

  // And the public entry point agrees: compute_stats IS the exact path.
  const auto direct = gs::analysis::compute_stats(data);
  EXPECT_EQ(direct.mean, reference.mean);
  EXPECT_EQ(direct.stddev, reference.stddev);
}

TEST(ExactMerge, RunningStatsExactFieldsMatchButWelfordMomentsNeedNot) {
  // RunningStats (Welford) merges count/min/max exactly but its merged
  // mean can drift in the last ulp depending on the partition — which is
  // precisely why the serving tier carries ExactStats on the wire. This
  // test documents the contrast that motivated the design.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> value(0.0, 1.0);
  gs::RunningStats whole;
  gs::RunningStats left, right;
  ExactStats exact_whole, exact_left, exact_right;
  for (int i = 0; i < 1000; ++i) {
    const double x = value(rng);
    whole.add(x);
    exact_whole.add(x);
    if (i % 3 == 0) {
      left.add(x);
      exact_left.add(x);
    } else {
      right.add(x);
      exact_right.add(x);
    }
  }
  gs::RunningStats merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);

  ExactStats exact_merged = exact_left;
  exact_merged.merge(exact_right);
  EXPECT_EQ(exact_merged.mean(), exact_whole.mean())
      << "the exact path must not drift at all";
}

TEST(ExactMerge, HistogramMergeIsOrderIndependent) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> value(-3.0, 3.0);
  std::vector<double> data(2048);
  for (double& x : data) x = value(rng);

  gs::Histogram whole(-3.0, 3.0, 32);
  for (const double x : data) whole.add(x);

  for (int trial = 0; trial < 10; ++trial) {
    std::uniform_int_distribution<int> pick(0, 4);
    std::vector<gs::Histogram> parts(5, gs::Histogram(-3.0, 3.0, 32));
    for (const double x : data) parts[static_cast<std::size_t>(pick(rng))].add(x);
    std::shuffle(parts.begin(), parts.end(), rng);
    gs::Histogram merged(-3.0, 3.0, 32);
    for (const auto& p : parts) merged.merge(p);
    ASSERT_EQ(merged.total(), whole.total());
    for (std::size_t b = 0; b < 32; ++b) {
      ASSERT_EQ(merged.count(b), whole.count(b)) << "bin " << b;
    }
  }
}

TEST(ExactMerge, ListVariablesMergeDetectsDisagreement) {
  svc::ListVariablesR a;
  a.n_steps = 3;
  a.variables.push_back(svc::VarEntry{"U", "double", {16, 16, 16}, 3, 0, 1});
  svc::ListVariablesR b = a;
  std::vector<svc::ListVariablesR> agree = {a, b};
  EXPECT_EQ(svc::merge::merge_list_variables(agree).variables.size(), 1u);
  b.variables[0].max = 2.0;
  const std::vector<svc::ListVariablesR> clash = {a, b};
  EXPECT_THROW(svc::merge::merge_list_variables(clash), gs::Error);
  const std::vector<svc::ListVariablesR> empty;
  EXPECT_THROW(svc::merge::merge_list_variables(empty), gs::Error);
}

// ---- wire protocol extensions --------------------------------------------

TEST(ShardWire, SelectorAndPartialMetaRoundTrip) {
  svc::Request request;
  request.body = svc::HistogramQ{"U", 1, 16, true, -2.5, 7.5};
  request.shard = svc::ShardSelector{9, 0xdeadbeef, "s2"};
  const auto req_bytes = rpc::encode_request(request);
  const svc::Request req_back = rpc::decode_request(req_bytes);
  ASSERT_TRUE(req_back.shard.has_value());
  EXPECT_EQ(req_back.shard->epoch, 9u);
  EXPECT_EQ(req_back.shard->ring_crc, 0xdeadbeefu);
  EXPECT_EQ(req_back.shard->act_as, "s2");
  const auto& q = std::get<svc::HistogramQ>(req_back.body);
  EXPECT_TRUE(q.has_range);
  EXPECT_EQ(q.lo, -2.5);
  EXPECT_EQ(q.hi, 7.5);

  ExactStats stats;
  stats.add(1e16);
  stats.add(1.0);
  stats.add(-3.5);
  svc::Response response;
  response.verb = svc::Verb::field_stats;
  response.body = svc::FieldStatsR{gs::analysis::stats_from_exact(stats)};
  response.partial = svc::PartialMeta{9, 5, 8, {Box3{{0, 0, 0}, {4, 4, 4}}},
                                      stats};
  const auto bytes = rpc::encode_response(response);
  const svc::Response back = rpc::decode_response(bytes);
  ASSERT_TRUE(back.partial.has_value());
  EXPECT_EQ(back.partial->epoch, 9u);
  EXPECT_EQ(back.partial->covered_blocks, 5u);
  EXPECT_EQ(back.partial->total_blocks, 8u);
  ASSERT_EQ(back.partial->coverage.size(), 1u);
  EXPECT_EQ(back.partial->coverage[0].count.i, 4);
  ASSERT_TRUE(back.partial->stats.has_value());
  EXPECT_TRUE(*back.partial->stats == stats)
      << "the exact accumulator must survive the wire bit-for-bit";
}

TEST(ShardWire, PlainFramesStayCompatible) {
  // A request without a selector and a response without partial metadata
  // must decode exactly as before the shard extension.
  svc::Request request;
  request.body = svc::FieldStatsQ{"U", 1};
  const svc::Request back = rpc::decode_request(rpc::encode_request(request));
  EXPECT_FALSE(back.shard.has_value());

  svc::Response response;
  response.verb = svc::Verb::field_stats;
  response.body = svc::FieldStatsR{};
  const svc::Response rback =
      rpc::decode_response(rpc::encode_response(response));
  EXPECT_FALSE(rback.partial.has_value());
}

// ---- client pool ---------------------------------------------------------

TEST(ClientPool, ReusesReturnedConnectionsAndDropsDiscarded) {
  svc::Service service(dataset(), svc::ServiceConfig{});
  rpc::ServerConfig server_config;
  server_config.listen = "unix:" + temp_path("pool") + ".sock";
  rpc::Server server(service, server_config);

  rpc::ClientPool pool(server.endpoint(), rpc::ClientConfig{}, 4);
  {
    auto lease = pool.acquire();
    lease->ping();
  }
  EXPECT_EQ(pool.stats().created, 1u);
  EXPECT_EQ(pool.stats().idle, 1u);
  {
    auto lease = pool.acquire();
    lease->ping();
    auto second = pool.acquire();  // idle list empty -> new dial
    second->ping();
  }
  EXPECT_EQ(pool.stats().created, 2u);
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().idle, 2u);
  {
    auto lease = pool.acquire();
    lease.discard();
  }
  EXPECT_EQ(pool.stats().discarded, 1u);
  EXPECT_EQ(pool.stats().idle, 1u);
}

// ---- partial execution on the daemon -------------------------------------

class ShardPartial : public ::testing::Test {
 protected:
  void SetUp() override {
    map_ = std::make_shared<const shard::ShardMap>(make_map(3));
    svc::ServiceConfig config;
    config.shard_map = map_;
    service_ = std::make_unique<svc::Service>(dataset(), std::move(config));
  }

  svc::Response partial_call(svc::QueryBody body, const std::string& act_as) {
    svc::Request request;
    request.body = std::move(body);
    request.shard =
        svc::ShardSelector{map_->epoch(), map_->ring_crc(), act_as};
    return service_->call(std::move(request));
  }

  std::shared_ptr<const shard::ShardMap> map_;
  std::unique_ptr<svc::Service> service_;
};

TEST_F(ShardPartial, PartialsCoverEveryBlockExactlyOnce) {
  ExactStats merged;
  std::uint64_t covered = 0;
  std::uint64_t total = 0;
  for (const auto& info : map_->shards()) {
    const svc::Response r = partial_call(svc::FieldStatsQ{"U", 1}, info.id);
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    ASSERT_TRUE(r.partial.has_value());
    ASSERT_TRUE(r.partial->stats.has_value());
    merged.merge(*r.partial->stats);
    covered += r.partial->covered_blocks;
    total = r.partial->total_blocks;
  }
  EXPECT_EQ(covered, total);
  EXPECT_EQ(total, 8u);  // 8 writers -> 8 blocks per step

  // The merged partials are bitwise the whole-dataset answer.
  svc::Service single(dataset(), svc::ServiceConfig{});
  svc::Request whole;
  whole.body = svc::FieldStatsQ{"U", 1};
  const svc::Response expect = single.call(std::move(whole));
  const auto& got = gs::analysis::stats_from_exact(merged);
  const auto& want = std::get<svc::FieldStatsR>(expect.body).stats;
  EXPECT_EQ(got.mean, want.mean);
  EXPECT_EQ(got.stddev, want.stddev);
  EXPECT_EQ(got.count, want.count);
}

TEST_F(ShardPartial, EpochMismatchIsRefusedLoudly) {
  // An epoch the daemon does not serve is RETRYABLE stale_epoch (the
  // expected transient of a staggered flip), not bad_request.
  svc::Request request;
  request.body = svc::FieldStatsQ{"U", 1};
  request.shard = svc::ShardSelector{99, map_->ring_crc(), "s0"};
  const svc::Response r = service_->call(std::move(request));
  EXPECT_EQ(r.status.code, svc::StatusCode::stale_epoch);
  EXPECT_NE(r.status.message.find("epoch"), std::string::npos);

  svc::Request bad_crc;
  bad_crc.body = svc::FieldStatsQ{"U", 1};
  bad_crc.shard = svc::ShardSelector{map_->epoch(), 1, "s0"};
  EXPECT_EQ(service_->call(std::move(bad_crc)).status.code,
            svc::StatusCode::bad_request);

  svc::Request unknown;
  unknown.body = svc::FieldStatsQ{"U", 1};
  unknown.shard =
      svc::ShardSelector{map_->epoch(), map_->ring_crc(), "nobody"};
  EXPECT_EQ(service_->call(std::move(unknown)).status.code,
            svc::StatusCode::bad_request);
}

TEST_F(ShardPartial, NonMemberDaemonRefusesSubQueries) {
  svc::Service plain(dataset(), svc::ServiceConfig{});
  svc::Request request;
  request.body = svc::FieldStatsQ{"U", 1};
  request.shard = svc::ShardSelector{1, map_->ring_crc(), "s0"};
  EXPECT_EQ(plain.call(std::move(request)).status.code,
            svc::StatusCode::bad_request);
}

// ---- end-to-end: cluster behind a router ---------------------------------

/// N in-process daemons (Service + rpc::Server on unix sockets) plus a
/// Router over them — the whole cluster in one test process.
struct Cluster {
  explicit Cluster(std::size_t n, shard::RouterConfig router_config = {},
                   const std::string& tag = "c") {
    std::vector<shard::ShardInfo> infos;
    for (std::size_t i = 0; i < n; ++i) {
      infos.push_back(shard::ShardInfo{
          "s" + std::to_string(i),
          "unix:" + temp_path("cluster-" + tag + std::to_string(i)) +
              ".sock"});
    }
    map = std::make_shared<const shard::ShardMap>(1, 64, std::move(infos));
    for (std::size_t i = 0; i < n; ++i) {
      svc::ServiceConfig config;
      config.shard_map = map;
      services.push_back(
          std::make_unique<svc::Service>(dataset(), std::move(config)));
      rpc::ServerConfig server_config;
      server_config.listen = map->shards()[i].endpoint;
      servers.push_back(
          std::make_unique<rpc::Server>(*services[i], server_config));
    }
    router_config.probe_interval_ms = 50;
    router = std::make_unique<shard::Router>(map, router_config);
  }

  void kill_shard(std::size_t i) {
    servers[i]->shutdown();
    services[i]->shutdown();
  }

  std::shared_ptr<const shard::ShardMap> map;
  std::vector<std::unique_ptr<svc::Service>> services;
  std::vector<std::unique_ptr<rpc::Server>> servers;
  std::unique_ptr<shard::Router> router;
};

std::vector<svc::QueryBody> all_verbs() {
  return {
      svc::ListVariablesQ{},
      svc::FieldStatsQ{"U", 1},
      svc::FieldStatsQ{"V", 2},
      svc::HistogramQ{"U", 1, 16},
      svc::Slice2DQ{"U", 1, 2, 8},
      svc::ReadBoxQ{"V", 1, Box3{{2, 3, 4}, {7, 6, 5}}},
  };
}

void expect_identical_answers(shard::Router& router, svc::Service& single,
                              const char* context) {
  for (const auto& body : all_verbs()) {
    svc::Request via_router;
    via_router.body = body;
    const svc::Response routed = router.call(std::move(via_router));
    svc::Request direct;
    direct.body = body;
    const svc::Response expect = single.call(std::move(direct));
    ASSERT_TRUE(routed.status.ok())
        << context << ": " << routed.status.message;
    EXPECT_FALSE(routed.degraded) << context;
    EXPECT_FALSE(routed.partial.has_value())
        << context << ": partial metadata must not leak to clients";
    EXPECT_EQ(rpc::encode_answer_identity(routed),
              rpc::encode_answer_identity(expect))
        << context << " verb " << svc::to_string(routed.verb);
  }
}

TEST(ShardRouter, AnswersAreByteIdenticalToSingleDaemon) {
  Cluster cluster(3, {}, "ident");
  svc::Service single(dataset(), svc::ServiceConfig{});
  expect_identical_answers(*cluster.router, single, "3-shard");
}

TEST(ShardRouter, FailoverKeepsAnswersExactAfterShardKill) {
  Cluster cluster(3, {}, "kill");
  svc::Service single(dataset(), svc::ServiceConfig{});
  expect_identical_answers(*cluster.router, single, "before kill");

  cluster.kill_shard(1);
  // Replicas open the same dataset, so every verb keeps its exact bytes.
  expect_identical_answers(*cluster.router, single, "after kill");
  EXPECT_GT(cluster.router->stats().failovers, 0u);
}

TEST(ShardRouter, NoFailoverDegradesExplicitlyNeverSilently) {
  shard::RouterConfig config;
  config.failover = false;
  // One fast connect attempt per candidate: the dead shard's socket file
  // is gone, so dials fail immediately.
  config.attempts = 1;
  config.client.retries = 1;
  config.client.connect_timeout_ms = 500;
  Cluster cluster(3, config, "nofo");
  cluster.kill_shard(2);

  svc::Request stats;
  stats.body = svc::FieldStatsQ{"U", 1};
  const svc::Response r = cluster.router->call(std::move(stats));
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  EXPECT_TRUE(r.degraded) << "missing blocks must be flagged";
  EXPECT_GT(r.bad_blocks, 0u);
  EXPECT_NE(r.status.message.find("missing shard(s) s2"), std::string::npos)
      << "got: " << r.status.message;

  // list_variables needs only one live daemon: still exact.
  svc::Request ls;
  ls.body = svc::ListVariablesQ{};
  const svc::Response lsr = cluster.router->call(std::move(ls));
  ASSERT_TRUE(lsr.status.ok());
  EXPECT_FALSE(lsr.degraded);

  // The health tracker marks the dead shard after consecutive failures.
  for (int i = 0; i < 3; ++i) {
    svc::Request again;
    again.body = svc::FieldStatsQ{"U", 1};
    cluster.router->call(std::move(again));
  }
  EXPECT_FALSE(cluster.router->health().alive("s2"));
}

TEST(ShardRouter, BadRequestPropagatesNamingTheShard) {
  Cluster cluster(2, {}, "badreq");
  svc::Request request;
  request.body = svc::FieldStatsQ{"NOPE", 0};
  const svc::Response r = cluster.router->call(std::move(request));
  EXPECT_EQ(r.status.code, svc::StatusCode::bad_request);
  EXPECT_NE(r.status.message.find("shard s"), std::string::npos)
      << "got: " << r.status.message;
}

TEST(ShardRouter, StatsJsonReportsDatasetAndPerShardHealth) {
  Cluster cluster(2, {}, "stats");
  svc::Request warm;
  warm.body = svc::FieldStatsQ{"U", 0};
  ASSERT_TRUE(cluster.router->call(std::move(warm)).status.ok());

  const gs::json::Value v = cluster.router->stats_json();
  EXPECT_EQ(v.at("dataset").as_string(), dataset());
  const auto& router = v.at("router");
  EXPECT_GE(router.at("queries").as_int(), 1);
  const auto& shards = router.at("shards").as_array();
  ASSERT_EQ(shards.size(), 2u);
  for (const auto& s : shards) {
    EXPECT_EQ(s.at("state").as_string(), "live");
    EXPECT_GE(s.at("calls").as_int(), 1);
  }
}

TEST(ShardRouter, SingleShardClusterIsJustAProxy) {
  Cluster cluster(1, {}, "one");
  svc::Service single(dataset(), svc::ServiceConfig{});
  expect_identical_answers(*cluster.router, single, "1-shard");
}

// ---- epoch handover: candidate validation --------------------------------

/// Runs `fn`, returning the gs::Error message it threw ("" = no throw).
std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const gs::Error& e) {
    return e.what();
  }
  return {};
}

TEST(Reshard, ValidateSuccessorGivesDistinctOneLineReasons) {
  const shard::ShardMap serving = make_map(3);

  // A real grow and a vnode retune are both fine successors.
  EXPECT_NO_THROW(shard::validate_successor(serving, make_map(4, 2)));
  EXPECT_NO_THROW(
      shard::validate_successor(serving, make_map(3, 2, /*vnodes=*/32)));

  EXPECT_NE(error_of([&] {
              shard::validate_successor(serving, make_map(4, 1));
            }).find("epoch must increase"),
            std::string::npos)
      << "equal epoch must be refused by name";
  EXPECT_NE(error_of([&] {
              shard::validate_successor(make_map(3, 5), make_map(4, 2));
            }).find("epoch must increase"),
            std::string::npos)
      << "going backwards must be refused by name";
  EXPECT_NE(error_of([&] {
              shard::validate_successor(serving, make_map(3, 2));
            }).find("no-op"),
            std::string::npos)
      << "same membership + same vnodes under a new epoch is an operator "
         "mistake";

  std::vector<shard::ShardInfo> strangers;
  for (int i = 0; i < 3; ++i) {
    strangers.push_back(shard::ShardInfo{"t" + std::to_string(i), "x"});
  }
  EXPECT_NE(error_of([&] {
              shard::validate_successor(
                  serving, shard::ShardMap(2, 64, std::move(strangers)));
            }).find("retains no serving shard"),
            std::string::npos)
      << "replacing every shard at once leaves nothing to serve the flip";
}

TEST(Reshard, DiffMapsClassifiesEveryMembershipChange) {
  const shard::ShardMap from = make_map(3);  // s0 s1 s2
  std::vector<shard::ShardInfo> next = {
      {"s0", "127.0.0.1:7000"},       // untouched
      {"s1", "unix:/tmp/elsewhere"},  // endpoint moved
      {"s3", "127.0.0.1:7003"},       // new
  };
  const shard::MapDiff diff =
      shard::diff_maps(from, shard::ShardMap(2, 64, std::move(next)));
  EXPECT_EQ(diff.added, std::vector<std::string>{"s3"});
  EXPECT_EQ(diff.removed, std::vector<std::string>{"s2"});
  EXPECT_EQ(diff.moved, std::vector<std::string>{"s1"});
  EXPECT_EQ(diff.retained, std::vector<std::string>{"s0"});
}

TEST(Reshard, FromJsonRejectsMangledMapFilesByName) {
  const auto parse = [](const char* text) {
    shard::ShardMap::from_json(gs::json::parse(text));
  };
  const auto reason = [&](const char* text) {
    return error_of([&] { parse(text); });
  };
  const char* ok =
      R"({"epoch": 3, "vnodes": 8, "shards": [{"id": "a", "endpoint": "x"}]})";
  EXPECT_NO_THROW(parse(ok));

  EXPECT_NE(
      reason(R"({"epoch": 0, "shards": [{"id": "a", "endpoint": "x"}]})")
          .find("epoch must be >= 1"),
      std::string::npos);
  EXPECT_NE(
      reason(R"({"epoch": -7, "shards": [{"id": "a", "endpoint": "x"}]})")
          .find("epoch must be >= 1"),
      std::string::npos);
  EXPECT_NE(
      reason(
          R"({"vnodes": 0, "shards": [{"id": "a", "endpoint": "x"}]})")
          .find("vnodes must be >= 1"),
      std::string::npos);
  EXPECT_NE(reason(R"({"shards": [{"id": "a", "endpoint": ""}]})")
                .find("empty endpoint"),
            std::string::npos);
  EXPECT_NE(reason(R"({"shards": [{"id": "a"}]})").find("empty endpoint"),
            std::string::npos)
      << "a missing endpoint is the same operator error as an empty one";
  EXPECT_NE(reason(R"({"shards": []})").find("no shards"), std::string::npos);
  // No shards array at all / not JSON: any exception, never a crash —
  // from_file wraps these with the path.
  EXPECT_THROW(parse(R"({"epoch": 2})"), std::exception);

  const std::string path = temp_path("mangled_map") + ".json";
  std::ofstream(path) << "{definitely not json";
  EXPECT_NE(error_of([&] { shard::ShardMap::from_file(path); }).find(path),
            std::string::npos)
      << "file-level rejections must name the file";
  fs::remove(path);
}

// ---- epoch handover: crash-consistent commit -----------------------------

TEST(Reshard, CommitMapSurvivesTornWritesAndMidCommitKills) {
  const std::string path = temp_path("commit_map") + ".json";
  fs::remove(path);
  fs::remove(path + ".staging");

  shard::commit_map(make_map(3), path);
  EXPECT_EQ(shard::ShardMap::from_file(path).epoch(), 1u);

  // Torn write: the corruption reaches the committed file (that is the
  // modeled failure), and every reader must then REJECT it loudly instead
  // of serving from garbage.
  {
    gs::fault::Plan plan;
    plan.corrupt_at("shard.reload", 0);
    gs::fault::ScopedPlan scoped(plan);
    shard::commit_map(make_map(4, 2), path);
  }
  EXPECT_THROW(shard::ShardMap::from_file(path), gs::Error);

  // A clean commit heals the file in place.
  shard::commit_map(make_map(4, 2), path);
  EXPECT_EQ(shard::ShardMap::from_file(path).epoch(), 2u);

  // Kill between the staging write and the rename: the staging file is
  // left behind, but the COMMITTED map is still (exactly) the old epoch.
  {
    gs::fault::Plan plan;
    plan.kill_at("shard.reload", 1);
    gs::fault::ScopedPlan scoped(plan);
    EXPECT_THROW(shard::commit_map(make_map(5, 3), path), gs::fault::Kill);
  }
  EXPECT_TRUE(fs::exists(path + ".staging"));
  EXPECT_EQ(shard::ShardMap::from_file(path).epoch(), 2u)
      << "a crash mid-commit must leave exactly one committed epoch";

  // Recovery removes the orphan; a second recovery is a no-op.
  EXPECT_TRUE(shard::recover_map(path));
  EXPECT_FALSE(fs::exists(path + ".staging"));
  EXPECT_FALSE(shard::recover_map(path));

  // And the next commit after the "restart" goes through normally.
  shard::commit_map(make_map(5, 3), path);
  EXPECT_EQ(shard::ShardMap::from_file(path).epoch(), 3u);
  fs::remove(path);
}

TEST(Reshard, CommitMapKilledAtTheSyncPointsKeepsExactlyOneEpoch) {
  const std::string path = temp_path("commit_sync") + ".json";
  fs::remove(path);
  fs::remove(path + ".staging");
  shard::commit_map(make_map(3), path);

  // "shard.sync" ops 0 (staging fsynced) and 1 (staging dirent fsynced):
  // the bytes of the candidate are durable, but the rename has not
  // happened — the COMMITTED map must still be exactly the old epoch,
  // with the staging orphan left for recover_map.
  for (const std::uint64_t op : {0u, 1u}) {
    gs::fault::Plan plan;
    plan.kill_at("shard.sync", op);
    gs::fault::ScopedPlan scoped(plan);
    EXPECT_THROW(shard::commit_map(make_map(4, 2), path), gs::fault::Kill);
    EXPECT_TRUE(fs::exists(path + ".staging"))
        << "sync op " << op << ": staging must survive the kill";
    EXPECT_EQ(shard::ShardMap::from_file(path).epoch(), 1u)
        << "sync op " << op << ": old epoch must stay committed";
  }
  EXPECT_TRUE(shard::recover_map(path));

  // Op 2 (after the rename, before the final dir sync): the atomic
  // rename has promoted the candidate — the NEW epoch is committed and
  // there is no orphan to recover.
  {
    gs::fault::Plan plan;
    plan.kill_at("shard.sync", 2);
    gs::fault::ScopedPlan scoped(plan);
    EXPECT_THROW(shard::commit_map(make_map(4, 2), path), gs::fault::Kill);
  }
  EXPECT_FALSE(fs::exists(path + ".staging"));
  EXPECT_EQ(shard::ShardMap::from_file(path).epoch(), 2u)
      << "a kill after the rename must leave the new epoch committed";
  EXPECT_FALSE(shard::recover_map(path));

  // A transient fsync failure (fail, not kill) surfaces as IoError-family
  // and, at the pre-rename points, also leaves the old epoch committed.
  {
    gs::fault::Plan plan;
    plan.fail_at("shard.sync", 0);
    gs::fault::ScopedPlan scoped(plan);
    EXPECT_THROW(shard::commit_map(make_map(5, 3), path),
                 gs::fault::InjectedFault);
  }
  EXPECT_EQ(shard::ShardMap::from_file(path).epoch(), 2u);

  // The next clean commit recovers the orphan and goes through.
  shard::commit_map(make_map(5, 3), path);
  EXPECT_EQ(shard::ShardMap::from_file(path).epoch(), 3u);
  EXPECT_FALSE(fs::exists(path + ".staging"));
  fs::remove(path);
}

// ---- epoch handover: the watcher -----------------------------------------

TEST(Reshard, MapWatcherAppliesTriggersAndRejectsBadMapsLoudly) {
  const std::string path = temp_path("watcher_map") + ".json";
  fs::remove(path);
  shard::commit_map(make_map(3), path);

  std::uint64_t applied_epoch = 0;
  std::uint64_t applies = 0;
  const auto apply = [&](shard::ShardMap next) {
    applied_epoch = next.epoch();
    ++applies;
    gs::json::Object o;
    o["epoch"] = gs::json::Value(static_cast<std::int64_t>(next.epoch()));
    return gs::json::Value(std::move(o));
  };
  // Polling disabled: trigger() runs the check inline (the SIGHUP path of
  // a daemon with --watch-ms 0).
  shard::MapWatcher watcher(path, apply, shard::WatcherConfig{0});

  shard::commit_map(make_map(4, 2), path);
  watcher.trigger();
  EXPECT_EQ(applies, 1u);
  EXPECT_EQ(applied_epoch, 2u);
  EXPECT_EQ(watcher.stats().applied, 1u);
  EXPECT_EQ(watcher.stats().rejected, 0u);

  // The admin-RPC path returns apply's report synchronously.
  const gs::json::Value report = watcher.reload_now();
  EXPECT_EQ(report.at("epoch").as_int(), 2);
  EXPECT_EQ(watcher.stats().applied, 2u);

  // A torn/garbled file is a counted rejection with the parse reason —
  // and the apply callback (the serving epoch) is never touched.
  std::ofstream(path) << "{torn to bits";
  watcher.trigger();
  EXPECT_EQ(applies, 2u);
  EXPECT_EQ(watcher.stats().rejected, 1u);
  EXPECT_FALSE(watcher.stats().last_error.empty());

  // An apply that throws (validation failure) counts the same way, and
  // reload_now surfaces it to the admin RPC.
  shard::commit_map(make_map(4, 2), path);
  shard::MapWatcher refusing(
      path,
      [](shard::ShardMap) -> gs::json::Value {
        GS_THROW(gs::Error, "candidate refused by validation");
      },
      shard::WatcherConfig{0});
  EXPECT_THROW(refusing.reload_now(), gs::Error);
  EXPECT_EQ(refusing.stats().rejected, 1u);
  EXPECT_NE(refusing.stats().last_error.find("refused"), std::string::npos);
  fs::remove(path);
}

TEST(Reshard, MapWatcherPollThreadPicksUpACommit) {
  const std::string path = temp_path("watcher_poll") + ".json";
  fs::remove(path);
  shard::commit_map(make_map(3), path);

  std::atomic<std::uint64_t> applied_epoch{0};
  shard::MapWatcher watcher(
      path,
      [&](shard::ShardMap next) {
        applied_epoch = next.epoch();
        return gs::json::Value(gs::json::Object{});
      },
      shard::WatcherConfig{10});

  shard::commit_map(make_map(4, 2), path);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (applied_epoch.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(applied_epoch.load(), 2u)
      << "the mtime poll alone must notice an atomically committed map";
  fs::remove(path);
}

// ---- epoch handover: the daemon's grace window ---------------------------

TEST(Reshard, ServiceKeepsPreviousEpochAnswerableThroughGraceOnly) {
  const auto map1 = std::make_shared<const shard::ShardMap>(make_map(3));
  svc::ServiceConfig config;
  config.shard_map = map1;
  config.shard_id = "s0";
  config.reload_grace_seconds = 0.5;
  svc::Service service(dataset(), std::move(config));

  const auto sub_query = [&](std::uint64_t epoch, std::uint32_t crc) {
    svc::Request request;
    request.body = svc::FieldStatsQ{"U", 1};
    request.shard = svc::ShardSelector{epoch, crc, "s0"};
    return service.call(std::move(request));
  };
  ASSERT_TRUE(sub_query(map1->epoch(), map1->ring_crc()).status.ok());

  // Shrink 3 -> 2: s0 inherits some of s2's blocks and must warm them.
  const auto map2 = std::make_shared<const shard::ShardMap>(make_map(2, 2));
  const shard::ReplacementStats stats = service.reload_shard_map(map2);
  EXPECT_EQ(stats.epoch_from, 1u);
  EXPECT_EQ(stats.epoch_to, 2u);
  EXPECT_EQ(stats.blocks_moved, stats.blocks_planned);
  EXPECT_EQ(stats.blocks_failed, 0u);
  EXPECT_EQ(service.reshard_stats().epoch_to, 2u);

  // Both epochs answer during the grace window (the routers' staggered
  // flip): the new one immediately, the old one until it expires.
  EXPECT_TRUE(sub_query(map2->epoch(), map2->ring_crc()).status.ok());
  EXPECT_TRUE(sub_query(map1->epoch(), map1->ring_crc()).status.ok())
      << "the previous epoch must stay answerable within the grace window";

  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  const svc::Response late = sub_query(map1->epoch(), map1->ring_crc());
  EXPECT_EQ(late.status.code, svc::StatusCode::stale_epoch)
      << "past the grace window the old epoch is refused as retryable";
  EXPECT_TRUE(sub_query(map2->epoch(), map2->ring_crc()).status.ok());
  EXPECT_GE(service.metrics().stale_epoch, 1u);

  // A non-increasing candidate is rejected and changes nothing.
  EXPECT_THROW(service.reload_shard_map(map2), gs::Error);
  EXPECT_TRUE(sub_query(map2->epoch(), map2->ring_crc()).status.ok());
}

// ---- epoch handover: the router flip -------------------------------------

TEST(ShardRouter, ReloadMapFlipsEpochCarriesPoolsAndStaysExact) {
  Cluster cluster(3, {}, "reload");
  svc::Service single(dataset(), svc::ServiceConfig{});
  expect_identical_answers(*cluster.router, single, "before flip");

  // Same membership, retuned vnodes: every shard retained, placement
  // changes, pools and health must carry over.
  std::vector<shard::ShardInfo> infos(cluster.map->shards().begin(),
                                      cluster.map->shards().end());
  const auto next =
      std::make_shared<const shard::ShardMap>(2, 32, std::move(infos));
  for (auto& service : cluster.services) service->reload_shard_map(next);
  const shard::HandoverStats stats = cluster.router->reload_map(next);
  EXPECT_EQ(stats.epoch_from, 1u);
  EXPECT_EQ(stats.epoch_to, 2u);
  EXPECT_EQ(stats.shards_retained, 3u);
  EXPECT_EQ(stats.shards_added, 0u);
  EXPECT_EQ(stats.shards_removed, 0u);
  EXPECT_EQ(stats.shards_moved, 0u);
  EXPECT_TRUE(stats.drained) << "no pinned queries: the drain is instant";
  EXPECT_EQ(stats.inflight_abandoned, 0u);

  EXPECT_EQ(cluster.router->map()->epoch(), 2u);
  expect_identical_answers(*cluster.router, single, "after flip");

  // Retained shards kept their per-shard state across the flip: the
  // pre-flip calls are still counted under the new epoch.
  const gs::json::Value v = cluster.router->stats_json();
  for (const auto& s : v.at("router").at("shards").as_array()) {
    EXPECT_GE(s.at("calls").as_int(), 1) << "pool/state not carried over";
  }
  EXPECT_EQ(v.at("router").at("handover").at("epoch_to").as_int(), 2);

  // A bad candidate (non-increasing epoch) is rejected loudly and the
  // serving epoch keeps answering exactly.
  EXPECT_THROW(cluster.router->reload_map(next), gs::Error);
  EXPECT_EQ(cluster.router->map()->epoch(), 2u);
  expect_identical_answers(*cluster.router, single, "after rejected flip");
}

TEST(ShardRouter, ReloadMapGrowsTheClusterLive) {
  Cluster cluster(3, {}, "grow");
  svc::Service single(dataset(), svc::ServiceConfig{});

  std::vector<shard::ShardInfo> infos(cluster.map->shards().begin(),
                                      cluster.map->shards().end());
  infos.push_back(shard::ShardInfo{
      "s3", "unix:" + temp_path("cluster-grow3") + ".sock"});
  const auto next =
      std::make_shared<const shard::ShardMap>(2, 64, std::move(infos));

  // The joining daemon starts on the successor map directly; the serving
  // three flip first (their grace covers the old-epoch router), the
  // router flips last — the same order the live cluster uses.
  svc::ServiceConfig config;
  config.shard_map = next;
  cluster.services.push_back(
      std::make_unique<svc::Service>(dataset(), std::move(config)));
  rpc::ServerConfig server_config;
  server_config.listen = next->shards()[3].endpoint;
  cluster.servers.push_back(
      std::make_unique<rpc::Server>(*cluster.services[3], server_config));
  for (std::size_t i = 0; i < 3; ++i) {
    cluster.services[i]->reload_shard_map(next);
  }
  const shard::HandoverStats stats = cluster.router->reload_map(next);
  EXPECT_EQ(stats.shards_added, 1u);
  EXPECT_EQ(stats.shards_retained, 3u);

  EXPECT_EQ(cluster.router->map()->epoch(), 2u);
  expect_identical_answers(*cluster.router, single, "grown 3 -> 4");
  EXPECT_EQ(cluster.router->stats_json()
                .at("router")
                .at("shards")
                .as_array()
                .size(),
            4u);
}

TEST(ShardRouter, NonAckingShardDegradesNamedNeverWrong) {
  shard::RouterConfig config;
  config.failover = false;
  config.attempts = 1;
  config.client.retries = 1;
  Cluster cluster(3, config, "noack");

  std::vector<shard::ShardInfo> infos(cluster.map->shards().begin(),
                                      cluster.map->shards().end());
  const auto next =
      std::make_shared<const shard::ShardMap>(2, 32, std::move(infos));
  // s1 never acknowledges the new epoch; everyone else flips.
  cluster.services[0]->reload_shard_map(next);
  cluster.services[2]->reload_shard_map(next);
  cluster.router->reload_map(next);

  svc::Request stats;
  stats.body = svc::FieldStatsQ{"U", 1};
  const svc::Response r = cluster.router->call(std::move(stats));
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  EXPECT_TRUE(r.degraded)
      << "a shard refusing the pinned epoch is degraded, never wrong";
  EXPECT_GT(r.bad_blocks, 0u);
  EXPECT_NE(r.status.message.find("missing shard(s) s1"), std::string::npos)
      << "got: " << r.status.message;

  // The moment s1 acks, the same router heals to exact answers.
  cluster.services[1]->reload_shard_map(next);
  svc::Service single(dataset(), svc::ServiceConfig{});
  expect_identical_answers(*cluster.router, single, "after late ack");
}

}  // namespace
