// Tests for the IR memory-op tracing (paper Listing 4): the kernels touch
// exactly the minimal set of global-memory locations per cell.
#include <gtest/gtest.h>

#include <vector>

#include "core/kernels.h"
#include "ir/memtrace.h"

namespace {

using gs::Index3;
using gs::core::GsParams;
using gs::ir::MemTrace;
using gs::ir::TracedView3;

/// Runs the fused 2-variable kernel body for one interior cell against
/// tracing views over real storage.
MemTrace trace_grayscott_cell() {
  const Index3 ext{4, 4, 4};
  std::vector<double> u(64, 1.0), v(64, 0.5), ut(64), vt(64);
  MemTrace trace;
  const TracedView3 uv("u", u.data(), ext, &trace);
  const TracedView3 vv("v", v.data(), ext, &trace);
  const TracedView3 utv("u_temp", ut.data(), ext, &trace);
  const TracedView3 vtv("v_temp", vt.data(), ext, &trace);
  gs::core::grayscott_cell(uv, vv, utv, vtv, 2, 2, 2, GsParams{}, 0.1);
  return trace;
}

TEST(IrTrace, GrayScottKernelHas14UniqueLoadsAnd2Stores) {
  const MemTrace t = trace_grayscott_cell();
  // Listing 4: 14 unique loads (7 stencil points x 2 variables, with the
  // center value register-reused) and 2 stores.
  EXPECT_EQ(t.unique_loads(), 14u);
  EXPECT_EQ(t.unique_stores(), 2u);
}

TEST(IrTrace, GrayScottKernelExecutes16LoadInstructions) {
  const MemTrace t = trace_grayscott_cell();
  // Section 5.1: "16 loads and 2 stores" at the access-operation level —
  // the center cell of each variable is read once for the Laplacian and
  // once for the reaction term (the compiler later folds these).
  EXPECT_EQ(t.total_loads(), 16u);
  EXPECT_EQ(t.total_stores(), 2u);
}

TEST(IrTrace, DiffusionKernelHas7LoadsOneStore) {
  const Index3 ext{4, 4, 4};
  std::vector<double> u(64, 1.0), ut(64);
  MemTrace trace;
  const TracedView3 uv("u", u.data(), ext, &trace);
  const TracedView3 utv("u_temp", ut.data(), ext, &trace);
  gs::core::diffusion_cell(uv, utv, 2, 2, 2, 0.2, 1.0);
  EXPECT_EQ(trace.unique_loads(), 7u);
  EXPECT_EQ(trace.unique_stores(), 1u);
}

TEST(IrTrace, LoadsTouchOnlyTheSevenPointStencil) {
  const MemTrace t = trace_grayscott_cell();
  const Index3 center{2, 2, 2};
  for (const auto& op : t.ops()) {
    const Index3 d = op.index - center;
    const std::int64_t manhattan =
        std::abs(d.i) + std::abs(d.j) + std::abs(d.k);
    EXPECT_LE(manhattan, 1) << "access outside 7-point stencil at "
                            << op.index;
  }
}

TEST(IrTrace, StoresGoToTempBuffersOnly) {
  const MemTrace t = trace_grayscott_cell();
  for (const auto& op : t.ops()) {
    if (op.is_store) {
      EXPECT_TRUE(op.buffer == "u_temp" || op.buffer == "v_temp");
      EXPECT_EQ(op.index, (Index3{2, 2, 2}));
    } else {
      EXPECT_TRUE(op.buffer == "u" || op.buffer == "v");
    }
  }
}

TEST(IrTrace, TracedExecutionComputesRealValues) {
  const Index3 ext{4, 4, 4};
  std::vector<double> u(64, 1.0), v(64, 0.0), ut(64), vt(64);
  MemTrace trace;
  const TracedView3 uv("u", u.data(), ext, &trace);
  const TracedView3 vv("v", v.data(), ext, &trace);
  const TracedView3 utv("u_temp", ut.data(), ext, &trace);
  const TracedView3 vtv("v_temp", vt.data(), ext, &trace);
  // Uniform steady state with zero noise: u stays 1, v stays 0.
  GsParams p;
  gs::core::grayscott_cell(uv, vv, utv, vtv, 2, 2, 2, p, 0.0);
  const auto lin = static_cast<std::size_t>(
      gs::linear_index({2, 2, 2}, ext));
  EXPECT_DOUBLE_EQ(ut[lin], 1.0);
  EXPECT_DOUBLE_EQ(vt[lin], 0.0);
}

TEST(IrTrace, ListingRendersLoadsAndStores) {
  MemTrace t;
  // Record center-relative offsets like the listing consumers do.
  t.record("u", {-1, 0, 0}, false);
  t.record("u", {0, 0, 0}, false);
  t.record("u_temp", {0, 0, 0}, true);
  const std::string ir = t.llvm_like_listing();
  EXPECT_NE(ir.find("load double"), std::string::npos);
  EXPECT_NE(ir.find("store double"), std::string::npos);
  EXPECT_NE(ir.find("addrspace(1)"), std::string::npos);
  EXPECT_NE(ir.find("%u_im1"), std::string::npos);
  EXPECT_NE(ir.find("%u_c"), std::string::npos);
  EXPECT_NE(ir.find("%u_temp_c"), std::string::npos);
}

TEST(IrTrace, UniqueOpsDeduplicatePreservingOrder) {
  MemTrace t;
  t.record("u", {0, 0, 0}, false);
  t.record("v", {0, 0, 0}, false);
  t.record("u", {0, 0, 0}, false);  // dup
  const auto u = t.unique_ops();
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u[0].buffer, "u");
  EXPECT_EQ(u[1].buffer, "v");
  EXPECT_EQ(t.total_loads(), 3u);
  EXPECT_EQ(t.unique_loads(), 2u);
}

TEST(IrTrace, ClearResets) {
  MemTrace t;
  t.record("u", {0, 0, 0}, false);
  t.clear();
  EXPECT_EQ(t.total_loads(), 0u);
  EXPECT_TRUE(t.ops().empty());
}

}  // namespace
