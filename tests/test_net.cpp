// gs::net edge cases: degenerate message sizes, the single-rank job, and
// monotonicity of the modeled cost in message size and job scale.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/network_model.h"

using gs::net::LinkParams;
using gs::net::NetworkModel;

TEST(NetworkModel, ZeroByteMessageCostsExactlyTheLatency) {
  const NetworkModel net;
  EXPECT_DOUBLE_EQ(net.message_time(0), net.link().latency);
}

TEST(NetworkModel, SingleRankJobHasNoContention) {
  const NetworkModel net;
  EXPECT_DOUBLE_EQ(net.contention_factor(1), 1.0);
}

TEST(NetworkModel, ContentionFactorMonotoneInRanks) {
  const NetworkModel net;
  double prev = 0.0;
  for (std::int64_t p : {1, 2, 8, 64, 512, 4096, 32768}) {
    const double f = net.contention_factor(p);
    EXPECT_GE(f, 1.0);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(NetworkModel, MessageTimeMonotoneInBytes) {
  const NetworkModel net;
  double prev = -1.0;
  for (std::uint64_t bytes : {0ull, 1ull, 1024ull, 1ull << 20, 1ull << 30}) {
    const double t = net.message_time(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(NetworkModel, HaloTimeMonotoneInRanks) {
  const NetworkModel net;
  const gs::Index3 local{64, 64, 64};
  double prev = 0.0;
  for (std::int64_t p : {1, 8, 64, 512, 4096}) {
    const double t = net.halo_time(local, /*nvars=*/2, p);
    EXPECT_GT(t, 0.0);
    EXPECT_GE(t, prev) << "halo cost must not shrink as the job grows";
    prev = t;
  }
}

TEST(NetworkModel, JitterSigmaMonotoneAndCalibrated) {
  const NetworkModel net;
  // Below the knee the paper's 2-3% regime applies uniformly...
  EXPECT_DOUBLE_EQ(net.jitter_sigma(1), net.jitter_sigma(512));
  // ...and sigma only grows from there to the 4,096-rank regime.
  double prev = 0.0;
  for (std::int64_t p : {1, 512, 1024, 2048, 4096}) {
    const double s = net.jitter_sigma(p);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(net.jitter_sigma(4096), net.jitter().large_scale_sigma);
}

TEST(NetworkModel, JitterMultiplierIsPositiveAndMeanIsNearOne) {
  const NetworkModel net;
  gs::Rng rng(99);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double m = net.jitter_multiplier(4096, rng);
    EXPECT_GT(m, 0.0);
    sum += m;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}
