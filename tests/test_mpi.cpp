// Tests for the simmpi substrate: matching semantics, datatypes,
// collectives against serial references, topology, failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "grid/decomp.h"
#include "grid/field.h"
#include "mpi/cart.h"
#include "mpi/comm.h"
#include "mpi/datatype.h"
#include "mpi/runtime.h"

namespace {

using gs::Box3;
using gs::Index3;
using gs::mpi::CartComm;
using gs::mpi::Comm;
using gs::mpi::Datatype;
using gs::mpi::kAnySource;
using gs::mpi::kAnyTag;
using gs::mpi::ReduceOp;
using gs::mpi::Request;
using gs::mpi::Status;

// ------------------------------------------------------------- datatype

TEST(Datatype, BasicPacksOneElement) {
  const auto t = Datatype::basic(8);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.extent_bytes(), 8u);
  const double v = 3.5;
  const auto bytes = t.pack(&v);
  double out = 0;
  t.unpack(&out, bytes);
  EXPECT_DOUBLE_EQ(out, 3.5);
}

TEST(Datatype, ContiguousCoalesces) {
  const auto t = Datatype::contiguous(4, Datatype::basic(8));
  EXPECT_EQ(t.size(), 32u);
  std::array<double, 4> src{1, 2, 3, 4};
  std::array<double, 4> dst{};
  t.unpack(dst.data(), t.pack(src.data()));
  EXPECT_EQ(dst, src);
}

TEST(Datatype, VectorStridedPack) {
  // 3 blocks of 2 doubles, stride 4 doubles: picks 0,1, 4,5, 8,9.
  const auto t = Datatype::vector(3, 2, 4, Datatype::basic(8));
  EXPECT_EQ(t.size(), 48u);
  std::array<double, 12> src{};
  std::iota(src.begin(), src.end(), 0.0);
  const auto bytes = t.pack(src.data());
  std::array<double, 6> packed{};
  std::memcpy(packed.data(), bytes.data(), bytes.size());
  EXPECT_EQ(packed, (std::array<double, 6>{0, 1, 4, 5, 8, 9}));
}

TEST(Datatype, VectorUnpackScatters) {
  const auto t = Datatype::vector(2, 1, 3, Datatype::basic(8));
  std::array<double, 2> payload{7.0, 9.0};
  std::array<std::byte, 16> bytes;
  std::memcpy(bytes.data(), payload.data(), 16);
  std::array<double, 6> dst{};
  t.unpack(dst.data(), bytes);
  EXPECT_DOUBLE_EQ(dst[0], 7.0);
  EXPECT_DOUBLE_EQ(dst[3], 9.0);
  EXPECT_DOUBLE_EQ(dst[1], 0.0);
}

TEST(Datatype, VectorOverlapRejected) {
  EXPECT_THROW(Datatype::vector(2, 4, 2, Datatype::basic(8)), gs::Error);
}

TEST(Datatype, SubarrayMatchesPackBox) {
  const Index3 extent{4, 4, 4};
  const Box3 box{{1, 1, 1}, {2, 2, 2}};
  std::vector<double> src(64);
  std::iota(src.begin(), src.end(), 0.0);

  const auto t = Datatype::subarray(extent, box, sizeof(double));
  EXPECT_EQ(t.size(), 8u * sizeof(double));

  std::vector<double> viaPackBox(8);
  gs::pack_box(src, extent, box, viaPackBox);

  const auto bytes = t.pack(src.data());
  std::vector<double> viaType(8);
  std::memcpy(viaType.data(), bytes.data(), bytes.size());
  EXPECT_EQ(viaType, viaPackBox);
}

TEST(Datatype, SubarrayFacePlaneStrided) {
  // x-face of a 4x4x4 array: blocklength 1, genuinely strided.
  const Index3 extent{4, 4, 4};
  const Box3 face{{0, 0, 0}, {1, 4, 4}};
  const auto t = Datatype::subarray(extent, face, sizeof(double));
  EXPECT_EQ(t.size(), 16u * sizeof(double));
  std::vector<double> src(64);
  std::iota(src.begin(), src.end(), 0.0);
  const auto bytes = t.pack(src.data());
  std::vector<double> packed(16);
  std::memcpy(packed.data(), bytes.data(), bytes.size());
  // Elements at i=0: linear 0, 4, 8, ..., 60.
  for (int n = 0; n < 16; ++n) {
    EXPECT_DOUBLE_EQ(packed[static_cast<std::size_t>(n)], 4.0 * n);
  }
}

TEST(Datatype, SubarrayBoundsChecked) {
  EXPECT_THROW(
      Datatype::subarray({4, 4, 4}, {{3, 0, 0}, {2, 1, 1}}, 8),
      gs::Error);
  EXPECT_THROW(
      Datatype::subarray({4, 4, 4}, {{0, 0, 0}, {0, 1, 1}}, 8),
      gs::Error);
}

TEST(Datatype, PackBufferTooSmallRejected) {
  const auto t = Datatype::basic(8);
  std::array<std::byte, 4> tiny;
  double v = 0;
  EXPECT_THROW(t.pack(&v, tiny), gs::Error);
  EXPECT_THROW(t.unpack(&v, tiny), gs::Error);
}

// ------------------------------------------------------------------ p2p

TEST(Mpi, WorldSizeAndRanks) {
  std::atomic<int> visited{0};
  gs::mpi::run(4, [&](Comm& world) {
    EXPECT_EQ(world.size(), 4);
    EXPECT_GE(world.rank(), 0);
    EXPECT_LT(world.rank(), 4);
    ++visited;
  });
  EXPECT_EQ(visited.load(), 4);
}

TEST(Mpi, PingPong) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const double x = 42.0;
      world.send_value(x, 1, 5);
      const double echoed = world.recv_value<double>(1, 6);
      EXPECT_DOUBLE_EQ(echoed, 43.0);
    } else {
      const double got = world.recv_value<double>(0, 5);
      world.send_value(got + 1.0, 0, 6);
    }
  });
}

TEST(Mpi, StatusReportsSourceTagBytes) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const std::array<double, 3> data{1, 2, 3};
      world.send(std::span<const double>(data), 1, 9);
    } else {
      std::array<double, 3> buf{};
      const Status st = world.recv(std::span<double>(buf), kAnySource,
                                   kAnyTag);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(st.bytes, 24u);
      EXPECT_DOUBLE_EQ(buf[2], 3.0);
    }
  });
}

TEST(Mpi, NonOvertakingSameSourceSameTag) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < 100; ++i) world.send_value(i, 1, 7);
    } else {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(world.recv_value<int>(0, 7), i);
      }
    }
  });
}

TEST(Mpi, TagSelectivity) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.send_value(1, 1, 10);
      world.send_value(2, 1, 20);
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      EXPECT_EQ(world.recv_value<int>(0, 20), 2);
      EXPECT_EQ(world.recv_value<int>(0, 10), 1);
    }
  });
}

TEST(Mpi, AnySourceReceivesFromAll) {
  gs::mpi::run(4, [](Comm& world) {
    if (world.rank() == 0) {
      std::set<int> sources;
      for (int n = 0; n < 3; ++n) {
        std::array<int, 1> buf{};
        const Status st = world.recv(std::span<int>(buf), kAnySource, 3);
        sources.insert(st.source);
        EXPECT_EQ(buf[0], st.source * 100);
      }
      EXPECT_EQ(sources.size(), 3u);
    } else {
      world.send_value(world.rank() * 100, 0, 3);
    }
  });
}

TEST(Mpi, TypedSendRecvFacePlane) {
  // Send an x-face plane via a strided subarray datatype, the pattern of
  // the paper's Listing 3.
  gs::mpi::run(2, [](Comm& world) {
    const Index3 extent{4, 3, 3};
    std::vector<double> field(36, 0.0);
    const Box3 send_face{{3, 0, 0}, {1, 3, 3}};  // high-x interiorish plane
    const Box3 recv_face{{0, 0, 0}, {1, 3, 3}};  // low-x ghost plane
    const auto send_t = Datatype::subarray(extent, send_face, 8);
    const auto recv_t = Datatype::subarray(extent, recv_face, 8);
    if (world.rank() == 0) {
      std::iota(field.begin(), field.end(), 100.0);
      world.send_typed(field.data(), send_t, 1, 1);
    } else {
      world.recv_typed(field.data(), recv_t, 0, 1);
      // Received cells: i=0 plane gets values from sender's i=3 plane.
      for (std::int64_t k = 0; k < 3; ++k) {
        for (std::int64_t j = 0; j < 3; ++j) {
          const auto src_lin = gs::linear_index({3, j, k}, extent);
          const auto dst_lin =
              static_cast<std::size_t>(gs::linear_index({0, j, k}, extent));
          EXPECT_DOUBLE_EQ(field[dst_lin], 100.0 + src_lin);
        }
      }
    }
  });
}

TEST(Mpi, TypedSizeMismatchThrows) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const double v = 1.0;
      world.send_typed(&v, Datatype::basic(8), 1, 1);
    } else {
      std::array<double, 2> buf{};
      EXPECT_THROW(
          world.recv_typed(buf.data(),
                           Datatype::contiguous(2, Datatype::basic(8)), 0, 1),
          gs::Error);
    }
  });
}

TEST(Mpi, SendToInvalidRankThrows) {
  gs::mpi::run(1, [](Comm& world) {
    const int v = 0;
    EXPECT_THROW(world.send_value(v, 5, 0), gs::Error);
    EXPECT_THROW(world.send_value(v, -1, 0), gs::Error);
  });
}

TEST(Mpi, NegativeUserTagRejected) {
  gs::mpi::run(1, [](Comm& world) {
    const int v = 0;
    EXPECT_THROW(world.send_value(v, 0, -3), gs::Error);
  });
}

TEST(Mpi, SendRecvSelf) {
  gs::mpi::run(1, [](Comm& world) {
    world.send_value(3.14, 0, 1);
    EXPECT_DOUBLE_EQ(world.recv_value<double>(0, 1), 3.14);
  });
}

TEST(Mpi, SendrecvExchangeRing) {
  gs::mpi::run(3, [](Comm& world) {
    const int right = (world.rank() + 1) % 3;
    const int left = (world.rank() + 2) % 3;
    const double mine = world.rank() * 10.0;
    double incoming = -1.0;
    world.sendrecv_bytes(
        std::as_bytes(std::span<const double>(&mine, 1)), right, 2,
        std::as_writable_bytes(std::span<double>(&incoming, 1)), left, 2);
    EXPECT_DOUBLE_EQ(incoming, left * 10.0);
  });
}

TEST(Mpi, IrecvWaitCompletes) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      std::array<double, 2> buf{};
      Request r = world.irecv(std::span<double>(buf), 1, 4);
      Status st;
      r.wait(&st);
      EXPECT_EQ(st.bytes, 16u);
      EXPECT_DOUBLE_EQ(buf[1], 2.0);
    } else {
      const std::array<double, 2> data{1.0, 2.0};
      world.send(std::span<const double>(data), 0, 4);
    }
  });
}

TEST(Mpi, IrecvTestPollsWithoutBlocking) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      int buf = 0;
      Request r = world.irecv(std::span<int>(&buf, 1), 1, 4);
      // Tell the peer we have posted, then poll.
      world.send_value(1, 1, 5);
      while (!r.test()) {
      }
      EXPECT_EQ(buf, 77);
    } else {
      world.recv_value<int>(0, 5);
      world.send_value(77, 0, 4);
    }
  });
}

TEST(Mpi, WaitAllMixedRequests) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      std::array<int, 3> bufs{};
      std::array<Request, 3> reqs;
      for (int i = 0; i < 3; ++i) {
        reqs[static_cast<std::size_t>(i)] =
            world.irecv(std::span<int>(&bufs[static_cast<std::size_t>(i)], 1),
                        1, 10 + i);
      }
      Comm::wait_all(reqs);
      EXPECT_EQ(bufs[0], 0);
      EXPECT_EQ(bufs[1], 1);
      EXPECT_EQ(bufs[2], 2);
    } else {
      // Send in scrambled order; matching is by tag.
      world.send_value(2, 0, 12);
      world.send_value(0, 0, 10);
      world.send_value(1, 0, 11);
    }
  });
}

TEST(Mpi, IprobeSeesPendingMessage) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.send_value(5, 1, 8);
      world.send_value(0, 1, 9);  // "done" marker
    } else {
      world.recv_value<int>(0, 9);
      Status st;
      EXPECT_TRUE(world.iprobe(0, 8, &st));
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_FALSE(world.iprobe(0, 999));
      EXPECT_EQ(world.recv_value<int>(0, 8), 5);
      EXPECT_FALSE(world.iprobe(0, 8));
    }
  });
}

// ------------------------------------------------------------ collectives

class MpiCollectives : public testing::TestWithParam<int> {};

TEST_P(MpiCollectives, BarrierCompletes) {
  gs::mpi::run(GetParam(), [](Comm& world) {
    for (int i = 0; i < 3; ++i) world.barrier();
  });
}

TEST_P(MpiCollectives, BcastFromEveryRoot) {
  const int n = GetParam();
  gs::mpi::run(n, [n](Comm& world) {
    for (int root = 0; root < n; ++root) {
      std::array<double, 4> data{};
      if (world.rank() == root) {
        data = {1.0 * root, 2.0 * root, 3.0, 4.0};
      }
      world.bcast(std::span<double>(data), root);
      EXPECT_DOUBLE_EQ(data[0], 1.0 * root);
      EXPECT_DOUBLE_EQ(data[1], 2.0 * root);
      EXPECT_DOUBLE_EQ(data[3], 4.0);
    }
  });
}

TEST_P(MpiCollectives, AllreduceSumMinMax) {
  const int n = GetParam();
  gs::mpi::run(n, [n](Comm& world) {
    const double mine = world.rank() + 1.0;
    EXPECT_DOUBLE_EQ(world.allreduce(mine, ReduceOp::sum),
                     n * (n + 1) / 2.0);
    EXPECT_DOUBLE_EQ(world.allreduce(mine, ReduceOp::min), 1.0);
    EXPECT_DOUBLE_EQ(world.allreduce(mine, ReduceOp::max),
                     static_cast<double>(n));
  });
}

TEST_P(MpiCollectives, ReduceToNonZeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  gs::mpi::run(n, [n](Comm& world) {
    const std::int64_t v = world.rank();
    const std::int64_t r = world.reduce(v, ReduceOp::sum, 1);
    if (world.rank() == 1) {
      EXPECT_EQ(r, static_cast<std::int64_t>(n) * (n - 1) / 2);
    }
  });
}

TEST_P(MpiCollectives, GatherCollectsInRankOrder) {
  const int n = GetParam();
  gs::mpi::run(n, [n](Comm& world) {
    const std::array<int, 2> mine{world.rank(), world.rank() * 2};
    std::vector<int> all;
    world.gather(std::span<const int>(mine), all, 0);
    if (world.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * n));
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], 2 * r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(MpiCollectives, AllgatherEveryoneSeesAll) {
  const int n = GetParam();
  gs::mpi::run(n, [n](Comm& world) {
    const auto all = world.allgather(world.rank() * 3);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3);
    }
  });
}

TEST_P(MpiCollectives, AlltoallTransposesBlocks) {
  const int n = GetParam();
  gs::mpi::run(n, [n](Comm& world) {
    // Block sent from s to d carries value 100*s + d.
    std::vector<int> send(static_cast<std::size_t>(n));
    std::vector<int> recv(static_cast<std::size_t>(n), -1);
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(d)] = 100 * world.rank() + d;
    }
    world.alltoall_bytes(std::as_bytes(std::span<const int>(send)),
                         std::as_writable_bytes(std::span<int>(recv)));
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s)], 100 * s + world.rank());
    }
  });
}

TEST_P(MpiCollectives, GathervUnequalContributions) {
  const int n = GetParam();
  gs::mpi::run(n, [n](Comm& world) {
    // Rank r contributes r+1 ints with value 10*r.
    std::vector<int> mine(static_cast<std::size_t>(world.rank() + 1),
                          10 * world.rank());
    std::vector<int> all;
    std::vector<std::size_t> offsets;
    world.gatherv(std::span<const int>(mine), all, offsets, 0);
    if (world.rank() == 0) {
      ASSERT_EQ(offsets.size(), static_cast<std::size_t>(n));
      ASSERT_EQ(all.size(),
                static_cast<std::size_t>(n) * (n + 1) / 2);
      for (int r = 0; r < n; ++r) {
        for (int e = 0; e <= r; ++e) {
          EXPECT_EQ(all[offsets[static_cast<std::size_t>(r)] +
                        static_cast<std::size_t>(e)],
                    10 * r);
        }
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(MpiCollectives, ScatterDistributesBlocks) {
  const int n = GetParam();
  gs::mpi::run(n, [n](Comm& world) {
    std::vector<double> send;
    if (world.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        send.push_back(100.0 + r);
        send.push_back(200.0 + r);
      }
    }
    std::array<double, 2> mine{};
    world.scatter_bytes(std::as_bytes(std::span<const double>(send)),
                        std::as_writable_bytes(std::span<double>(mine)), 0);
    EXPECT_DOUBLE_EQ(mine[0], 100.0 + world.rank());
    EXPECT_DOUBLE_EQ(mine[1], 200.0 + world.rank());
  });
}

TEST_P(MpiCollectives, AllreduceInplaceElementwise) {
  const int n = GetParam();
  gs::mpi::run(n, [n](Comm& world) {
    std::array<double, 3> vals = {1.0 * world.rank(),
                                  -1.0 * world.rank(), 1.0};
    world.allreduce_inplace(std::span<double>(vals), ReduceOp::sum);
    EXPECT_DOUBLE_EQ(vals[0], n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(vals[1], -n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(vals[2], static_cast<double>(n));

    std::array<double, 2> mm = {1.0 * world.rank(), -1.0 * world.rank()};
    world.allreduce_inplace(std::span<double>(mm), ReduceOp::max);
    EXPECT_DOUBLE_EQ(mm[0], n - 1.0);
    EXPECT_DOUBLE_EQ(mm[1], 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpiCollectives,
                         testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Mpi, CollectivesDoNotDisturbPendingUserMessages) {
  gs::mpi::run(2, [](Comm& world) {
    if (world.rank() == 0) world.send_value(11, 1, 2);
    const double s = world.allreduce(1.0, ReduceOp::sum);
    EXPECT_DOUBLE_EQ(s, 2.0);
    world.barrier();
    if (world.rank() == 1) {
      EXPECT_EQ(world.recv_value<int>(0, 2), 11);
    }
  });
}

// ------------------------------------------------------- comm management

TEST(Mpi, DupIsolatesTraffic) {
  gs::mpi::run(2, [](Comm& world) {
    Comm dup = world.dup();
    if (world.rank() == 0) {
      world.send_value(1, 1, 3);
      dup.send_value(2, 1, 3);
    } else {
      // Same (src, tag) but different communicators must not cross-match.
      EXPECT_EQ(dup.recv_value<int>(0, 3), 2);
      EXPECT_EQ(world.recv_value<int>(0, 3), 1);
    }
  });
}

TEST(Mpi, SplitByParity) {
  gs::mpi::run(6, [](Comm& world) {
    const int color = world.rank() % 2;
    Comm sub = world.split(color, world.rank());
    EXPECT_EQ(sub.size(), 3);
    // New ranks ordered by key (= old rank).
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    // Sum within the subgroup to verify isolation and membership.
    const int sum = sub.allreduce(world.rank(), ReduceOp::sum);
    EXPECT_EQ(sum, color == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(Mpi, SplitWithReversedKeysReordersRanks) {
  gs::mpi::run(4, [](Comm& world) {
    Comm sub = world.split(0, -world.rank());
    EXPECT_EQ(sub.rank(), 3 - world.rank());
  });
}

TEST(Mpi, NodeSplitLikeIoAggregation) {
  // 8 ranks, 4 per "node": the split used by the BP writer.
  gs::mpi::run(8, [](Comm& world) {
    const int node = world.rank() / 4;
    Comm node_comm = world.split(node, world.rank());
    EXPECT_EQ(node_comm.size(), 4);
    EXPECT_EQ(node_comm.rank(), world.rank() % 4);
  });
}

// ---------------------------------------------------------------- cart

TEST(Cart, DimsMustCoverSize) {
  gs::mpi::run(4, [](Comm& world) {
    EXPECT_THROW(CartComm(world, {3, 1, 1}, {false, false, false}),
                 gs::Error);
  });
}

TEST(Cart, CoordsRoundTrip) {
  gs::mpi::run(8, [](Comm& world) {
    CartComm cart(world, {2, 2, 2}, {false, false, false});
    const Index3 c = cart.coords();
    EXPECT_EQ(cart.cart_rank(c), cart.rank());
  });
}

TEST(Cart, ShiftMatchesDecompositionNeighbors) {
  gs::mpi::run(8, [](Comm& world) {
    CartComm cart(world, {2, 2, 2}, {false, false, false});
    const gs::Decomposition d({8, 8, 8}, {2, 2, 2});
    for (int axis = 0; axis < 3; ++axis) {
      const auto [src, dst] = cart.shift(axis);
      EXPECT_EQ(dst, static_cast<int>(d.neighbor(cart.rank(), axis, +1)));
      EXPECT_EQ(src, static_cast<int>(d.neighbor(cart.rank(), axis, -1)));
    }
  });
}

TEST(Cart, PeriodicShiftWraps) {
  gs::mpi::run(4, [](Comm& world) {
    CartComm cart(world, {4, 1, 1}, {true, false, false});
    const auto [src, dst] = cart.shift(0);
    EXPECT_EQ(dst, (cart.rank() + 1) % 4);
    EXPECT_EQ(src, (cart.rank() + 3) % 4);
  });
}

TEST(Cart, NonPeriodicEdgesAreProcNull) {
  gs::mpi::run(4, [](Comm& world) {
    CartComm cart(world, {4, 1, 1}, {false, false, false});
    const auto [src, dst] = cart.shift(0);
    if (cart.rank() == 0) {
      EXPECT_EQ(src, gs::mpi::kProcNull);
    }
    if (cart.rank() == 3) {
      EXPECT_EQ(dst, gs::mpi::kProcNull);
    }
    if (cart.rank() == 1) {
      EXPECT_EQ(src, 0);
      EXPECT_EQ(dst, 2);
    }
  });
}

TEST(Cart, NeighborExchangeRing) {
  // Each rank sends its rank to +x neighbor (periodic); everyone must
  // receive rank-1 mod n.
  gs::mpi::run(4, [](Comm& world) {
    CartComm cart(world, {4, 1, 1}, {true, false, false});
    const auto [src, dst] = cart.shift(0);
    const int mine = cart.rank();
    int incoming = -1;
    cart.comm().sendrecv_bytes(
        std::as_bytes(std::span<const int>(&mine, 1)), dst, 1,
        std::as_writable_bytes(std::span<int>(&incoming, 1)), src, 1);
    EXPECT_EQ(incoming, (cart.rank() + 3) % 4);
  });
}

// -------------------------------------------------------------- failure

TEST(Mpi, RankExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(gs::mpi::run(2,
                            [](Comm& world) {
                              if (world.rank() == 0) {
                                throw gs::Error("rank 0 exploded");
                              }
                              // Rank 1 blocks forever unless aborted.
                              world.recv_value<int>(0, 1);
                            }),
               gs::Error);
}

TEST(Mpi, RunRejectsNonPositiveSize) {
  EXPECT_THROW(gs::mpi::run(0, [](Comm&) {}), gs::Error);
}

TEST(Mpi, RandomMessageStormDeliversExactlyOnce) {
  // Property: under a randomized all-to-all storm with mixed tags, every
  // message is delivered exactly once with intact content.
  const int n = 6;
  const int per_pair = 25;
  gs::mpi::run(n, [&](Comm& world) {
    // Send per_pair messages to every rank (incl. self), random tag order.
    for (int d = 0; d < n; ++d) {
      for (int m = 0; m < per_pair; ++m) {
        const std::int64_t payload =
            world.rank() * 1000000 + d * 1000 + m;
        world.send_value(payload, d, /*tag=*/m);
      }
    }
    // Receive per_pair messages from every source; tags arrive in any
    // source order but FIFO per (src, tag).
    std::set<std::int64_t> seen;
    for (int s = 0; s < n; ++s) {
      for (int m = 0; m < per_pair; ++m) {
        const auto v = world.recv_value<std::int64_t>(s, m);
        EXPECT_EQ(v, s * 1000000 + world.rank() * 1000 + m);
        EXPECT_TRUE(seen.insert(v).second) << "duplicate delivery";
      }
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n * per_pair));
    // Nothing left over.
    EXPECT_FALSE(world.iprobe(kAnySource, kAnyTag));
  });
}

TEST(Mpi, ManyRanksStress) {
  // 32 rank-threads on one core: exercises scheduling robustness.
  gs::mpi::run(32, [](Comm& world) {
    const int sum = world.allreduce(1, ReduceOp::sum);
    EXPECT_EQ(sum, 32);
    world.barrier();
    const auto all = world.allgather(world.rank());
    EXPECT_EQ(all.size(), 32u);
  });
}

}  // namespace
