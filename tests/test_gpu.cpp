// Tests for the simulated GPU: occupancy model, cache simulator,
// buffers/copies, launch semantics, JIT warm-up, profiler plumbing.
#include <gtest/gtest.h>

#include <numeric>

#include "core/kernels.h"
#include "gpu/cache_sim.h"
#include "gpu/device.h"
#include "gpu/device_props.h"
#include "par/pool.h"

namespace {

using gs::Box3;
using gs::Index3;
using gs::gpu::BackendProfile;
using gs::gpu::CacheSim;
using gs::gpu::compute_occupancy;
using gs::gpu::Device;
using gs::gpu::DeviceProps;
using gs::gpu::KernelInfo;

// ----------------------------------------------------------- occupancy

TEST(Occupancy, HipBackendRunsAtFullOccupancy) {
  const DeviceProps dev;
  const auto occ = compute_occupancy(dev, gs::gpu::hip_backend());
  // wgr 256 -> 4 waves/wg; no LDS limit; 32/4 = 8 workgroups -> 32 waves.
  EXPECT_EQ(occ.waves_per_workgroup, 4u);
  EXPECT_EQ(occ.workgroups_per_cu, 8u);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, JuliaBackendIsLdsLimitedToHalf) {
  const DeviceProps dev;
  const auto occ = compute_occupancy(dev, gs::gpu::julia_amdgpu_backend());
  // wgr 512 -> 8 waves/wg; LDS 29184 -> floor(65536/29184) = 2 workgroups
  // -> 16 of 32 waves = 50%: the paper's ~2x bandwidth gap.
  EXPECT_EQ(occ.waves_per_workgroup, 8u);
  EXPECT_EQ(occ.workgroups_per_cu, 2u);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.5);
}

TEST(Occupancy, OversizedLdsRejected) {
  const DeviceProps dev;
  BackendProfile b = gs::gpu::julia_amdgpu_backend();
  b.lds_per_workgroup = 100000;  // > 64 KiB per CU
  EXPECT_THROW(compute_occupancy(dev, b), gs::Error);
}

TEST(Bandwidth, HipMatchesPaperTable2) {
  const DeviceProps dev;
  const double bw =
      gs::gpu::achieved_bandwidth(dev, gs::gpu::hip_backend(), false);
  // Table 2: HIP total bandwidth 1,163 GB/s.
  EXPECT_NEAR(bw / 1e9, 1163.0, 5.0);
}

TEST(Bandwidth, JuliaIsAboutHalfOfHip) {
  const DeviceProps dev;
  const double hip =
      gs::gpu::achieved_bandwidth(dev, gs::gpu::hip_backend(), false);
  const double julia = gs::gpu::achieved_bandwidth(
      dev, gs::gpu::julia_amdgpu_backend(), false);
  EXPECT_NEAR(julia / hip, 0.5, 0.02);
}

TEST(Bandwidth, RngPenaltyOnlyWithRng) {
  const DeviceProps dev;
  const auto b = gs::gpu::julia_amdgpu_backend();
  const double no_rng = gs::gpu::achieved_bandwidth(dev, b, false);
  const double rng = gs::gpu::achieved_bandwidth(dev, b, true);
  EXPECT_LT(rng, no_rng);
  EXPECT_NEAR(rng / no_rng, b.rng_bandwidth_penalty, 1e-12);
}

// ------------------------------------------------------------ cache sim

TEST(CacheSim, ColdMissesThenHits) {
  CacheSim c(64 * 1024, 64, 16);
  std::vector<double> data(64);
  const auto addr = reinterpret_cast<std::uintptr_t>(data.data());
  c.read(addr, 8);
  EXPECT_EQ(c.counters().tcc_misses, 1u);
  EXPECT_EQ(c.counters().fetch_bytes, 64u);
  c.read(addr, 8);
  c.read(addr + 8, 8);  // same line
  EXPECT_EQ(c.counters().tcc_hits, 2u);
  EXPECT_EQ(c.counters().tcc_misses, 1u);
}

TEST(CacheSim, StraddlingAccessTouchesTwoLines) {
  CacheSim c(64 * 1024, 64, 16);
  c.read(60, 8);  // crosses the 64-byte boundary
  EXPECT_EQ(c.counters().tcc_misses, 2u);
  EXPECT_EQ(c.counters().fetch_bytes, 128u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // Direct-mapped-ish: 1 way, 2 sets, line 64 -> capacity 128.
  CacheSim c(128, 64, 1);
  c.read(0, 8);     // set 0
  c.read(128, 8);   // set 0, evicts line 0
  c.read(0, 8);     // miss again
  EXPECT_EQ(c.counters().tcc_misses, 3u);
  EXPECT_EQ(c.counters().tcc_hits, 0u);
}

TEST(CacheSim, AssociativityPreventsConflict) {
  // 2 ways, 1 set: both conflicting lines fit.
  CacheSim c(128, 64, 2);
  c.read(0, 8);
  c.read(128, 8);
  c.read(0, 8);
  c.read(128, 8);
  EXPECT_EQ(c.counters().tcc_misses, 2u);
  EXPECT_EQ(c.counters().tcc_hits, 2u);
}

TEST(CacheSim, DirtyEvictionWritesBack) {
  CacheSim c(128, 64, 1);
  c.write(0, 8);    // dirty line in set 0
  EXPECT_EQ(c.counters().write_bytes, 0u);
  c.read(128, 8);   // evicts dirty line -> writeback
  EXPECT_EQ(c.counters().write_bytes, 64u);
}

TEST(CacheSim, FlushWritesBackAllDirty) {
  CacheSim c(64 * 1024, 64, 16);
  std::vector<double> data(32);  // 256 B -> 4 lines
  const auto addr = reinterpret_cast<std::uintptr_t>(data.data());
  for (int i = 0; i < 32; ++i) {
    c.write(addr + static_cast<std::uintptr_t>(i) * 8, 8);
  }
  c.flush();
  // All four (or five, if the allocation straddles) dirty lines written.
  EXPECT_GE(c.counters().write_bytes, 4u * 64u);
  EXPECT_LE(c.counters().write_bytes, 5u * 64u);
  // After flush the cache is cold again.
  const auto misses_before = c.counters().tcc_misses;
  c.read(addr, 8);
  EXPECT_EQ(c.counters().tcc_misses, misses_before + 1);
}

TEST(CacheSim, InvalidGeometryRejected) {
  EXPECT_THROW(CacheSim(100, 64, 16), gs::Error);      // not divisible
  EXPECT_THROW(CacheSim(64 * 2 * 3, 64, 2), gs::Error);  // 3 sets: not pow2
  EXPECT_THROW(CacheSim(0, 64, 16), gs::Error);
  EXPECT_THROW(CacheSim(1024, 48, 4), gs::Error);      // line not pow2
}

// The experiment behind Table 2's effective-vs-total gap: a 7-point
// stencil sweep fetches each cell ~3x when three k-planes exceed the
// cache, ~1x when they fit.
TEST(CacheSim, StencilFetchAmplificationDependsOnPlaneFit) {
  const Index3 ext{48, 48, 12};
  std::vector<double> grid(static_cast<std::size_t>(ext.volume()));
  const auto base = reinterpret_cast<std::uintptr_t>(grid.data());
  const auto addr = [&](std::int64_t i, std::int64_t j, std::int64_t k) {
    return base + static_cast<std::uintptr_t>(
                      gs::linear_index({i, j, k}, ext) * 8);
  };

  auto sweep = [&](CacheSim& c) {
    for (std::int64_t k = 1; k < ext.k - 1; ++k) {
      for (std::int64_t j = 1; j < ext.j - 1; ++j) {
        for (std::int64_t i = 1; i < ext.i - 1; ++i) {
          c.read(addr(i - 1, j, k), 8);
          c.read(addr(i + 1, j, k), 8);
          c.read(addr(i, j - 1, k), 8);
          c.read(addr(i, j + 1, k), 8);
          c.read(addr(i, j, k - 1), 8);
          c.read(addr(i, j, k + 1), 8);
          c.read(addr(i, j, k), 8);
        }
      }
    }
    c.flush();
  };

  const double minimal =
      static_cast<double>(ext.volume()) * 8.0;  // each cell once

  // Small cache: one k-plane is 48*48*8 = 18,432 B > 16 KiB cache.
  CacheSim small(16 * 1024, 64, 16);
  sweep(small);
  const double amp_small =
      static_cast<double>(small.counters().fetch_bytes) / minimal;
  EXPECT_GT(amp_small, 2.0);
  EXPECT_LT(amp_small, 3.6);

  // Large cache: whole grid fits (48*48*12*8 = 216 KiB < 1 MiB).
  CacheSim large(1024 * 1024, 64, 16);
  sweep(large);
  const double amp_large =
      static_cast<double>(large.counters().fetch_bytes) / minimal;
  EXPECT_LT(amp_large, 1.2);
}

// ---------------------------------------------------------------- device

TEST(Device, AllocAccountingAndOom) {
  DeviceProps props;
  props.memory_bytes = 1024;  // 128 doubles
  Device dev(props);
  auto b1 = dev.alloc(64, "a");
  EXPECT_EQ(dev.allocated_bytes(), 512u);
  {
    auto b2 = dev.alloc(64, "b");
    EXPECT_EQ(dev.allocated_bytes(), 1024u);
    EXPECT_THROW(dev.alloc(1, "c"), gs::Error);
  }
  // b2 freed on scope exit.
  EXPECT_EQ(dev.allocated_bytes(), 512u);
  auto b3 = dev.alloc(64, "c");
  EXPECT_EQ(dev.allocated_bytes(), 1024u);
}

TEST(Device, MemcpyRoundTripAndClockAdvance) {
  Device dev;
  auto buf = dev.alloc(1000, "x");
  std::vector<double> src(1000);
  std::iota(src.begin(), src.end(), 0.0);
  const double t0 = dev.clock().now();
  dev.memcpy_h2d(buf, src);
  EXPECT_GT(dev.clock().now(), t0);
  std::vector<double> dst(1000, -1.0);
  dev.memcpy_d2h(dst, buf);
  EXPECT_EQ(dst, src);
  // 8000 B at 36 GB/s plus 10 us latency each way.
  const double expected = 2 * (10e-6 + 8000.0 / 36e9);
  EXPECT_NEAR(dev.clock().now() - t0, expected, 1e-9);
}

TEST(Device, MemcpyBoundsChecked) {
  Device dev;
  auto buf = dev.alloc(10, "x");
  std::vector<double> big(11);
  EXPECT_THROW(dev.memcpy_h2d(buf, big), gs::Error);
  std::vector<double> out(5);
  EXPECT_THROW(dev.memcpy_d2h(out, buf, 6), gs::Error);
  EXPECT_NO_THROW(dev.memcpy_d2h(out, buf, 5));
}

TEST(Device, BoxCopiesMoveOnlyTheBox) {
  Device dev;
  const Index3 ext{4, 4, 4};
  auto buf = dev.alloc(64, "f");
  std::vector<double> host(64, 0.0);
  // Fill device with known pattern via full h2d.
  std::vector<double> pattern(64);
  std::iota(pattern.begin(), pattern.end(), 100.0);
  dev.memcpy_h2d(buf, pattern);

  const Box3 box{{1, 1, 1}, {2, 2, 2}};
  dev.memcpy_d2h_box(host, buf, ext, box);
  for (std::int64_t k = 0; k < 4; ++k) {
    for (std::int64_t j = 0; j < 4; ++j) {
      for (std::int64_t i = 0; i < 4; ++i) {
        const auto lin = static_cast<std::size_t>(
            gs::linear_index({i, j, k}, ext));
        if (box.contains({i, j, k})) {
          EXPECT_DOUBLE_EQ(host[lin], pattern[lin]);
        } else {
          EXPECT_DOUBLE_EQ(host[lin], 0.0);
        }
      }
    }
  }

  // And back: modify host box, upload, read device.
  for (auto& v : host) v += 1000.0;
  dev.memcpy_h2d_box(buf, host, ext, box);
  std::vector<double> out(64);
  dev.memcpy_d2h(out, buf);
  for (std::int64_t k = 0; k < 4; ++k) {
    for (std::int64_t j = 0; j < 4; ++j) {
      for (std::int64_t i = 0; i < 4; ++i) {
        const auto lin = static_cast<std::size_t>(
            gs::linear_index({i, j, k}, ext));
        if (box.contains({i, j, k})) {
          EXPECT_DOUBLE_EQ(out[lin], pattern[lin] + 1000.0);
        } else {
          EXPECT_DOUBLE_EQ(out[lin], pattern[lin]);
        }
      }
    }
  }
}

TEST(Device, LaunchCoversAllItemsOnce) {
  Device dev;
  const Index3 items{10, 7, 5};
  auto buf = dev.alloc(static_cast<std::size_t>(items.volume()), "c");
  auto view = dev.view(buf, items);
  KernelInfo info;
  info.name = "count";
  dev.launch(info, gs::gpu::hip_backend(), items, [&](const Index3& idx) {
    view.store(idx.i, idx.j, idx.k,
               view.load(idx.i, idx.j, idx.k) + 1.0);
  });
  std::vector<double> out(static_cast<std::size_t>(items.volume()));
  dev.memcpy_d2h(out, buf);
  for (const double v : out) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(Device, LaunchAdvancesClockProportionallyToWork) {
  Device dev;
  KernelInfo info;
  info.name = "k";
  info.est_bytes_per_item = 64.0;
  auto run = [&](std::int64_t n) {
    const double t0 = dev.clock().now();
    dev.launch(info, gs::gpu::hip_backend(), {n, 1, 1},
               [](const Index3&) {});
    return dev.clock().now() - t0;
  };
  const double t_small = run(1000);
  const double t_big = run(100000);
  EXPECT_GT(t_big, t_small);
}

TEST(Device, JitPaidOnceForJuliaBackendOnly) {
  gs::prof::Profiler prof;
  Device dev(DeviceProps{}, 1, &prof);
  KernelInfo info;
  info.name = "stencil";
  const auto julia = gs::gpu::julia_amdgpu_backend();

  const auto r1 = dev.launch(info, julia, {8, 8, 8}, [](const Index3&) {});
  EXPECT_GT(r1.jit_time, 0.0);
  // Calibrated around 1.28 s mean: generous bounds.
  EXPECT_GT(r1.jit_time, 0.3);
  EXPECT_LT(r1.jit_time, 5.0);

  const auto r2 = dev.launch(info, julia, {8, 8, 8}, [](const Index3&) {});
  EXPECT_DOUBLE_EQ(r2.jit_time, 0.0);

  // A different kernel symbol pays its own compile.
  KernelInfo other;
  other.name = "stencil_1var";
  const auto r3 = dev.launch(other, julia, {8, 8, 8}, [](const Index3&) {});
  EXPECT_GT(r3.jit_time, 0.0);

  // HIP never JITs.
  const auto r4 = dev.launch(info, gs::gpu::hip_backend(), {8, 8, 8},
                             [](const Index3&) {});
  EXPECT_DOUBLE_EQ(r4.jit_time, 0.0);

  // Profiler saw exactly two jit spans.
  int jit_spans = 0;
  for (const auto& s : prof.spans()) {
    if (s.kind == gs::prof::SpanKind::jit_compile) ++jit_spans;
  }
  EXPECT_EQ(jit_spans, 2);
}

TEST(Device, CacheSimProducesCountersInLaunch) {
  Device dev;
  dev.set_cache_sim_enabled(true);
  const Index3 items{16, 16, 16};
  auto buf = dev.alloc(static_cast<std::size_t>(items.volume()), "g");
  auto view = dev.view(buf, items);
  KernelInfo info;
  info.name = "touch";
  const auto r = dev.launch(info, gs::gpu::hip_backend(), items,
                            [&](const Index3& idx) {
                              view.store(idx.i, idx.j, idx.k, 1.0);
                            });
  // Store-only kernel: no read-for-ownership fetches, only writebacks.
  EXPECT_EQ(r.counters.fetch_bytes, 0u);
  EXPECT_GT(r.counters.write_bytes, 0u);   // end-of-kernel flush
  EXPECT_EQ(r.counters.stores, static_cast<std::uint64_t>(items.volume()));
  // All 4096 cells * 8 B written back, line-rounded.
  EXPECT_NEAR(static_cast<double>(r.counters.write_bytes),
              static_cast<double>(items.volume()) * 8.0,
              static_cast<double>(items.volume()) * 8.0 * 0.1);
}

TEST(Device, DurationScalesInverselyWithOccupancy) {
  // Same traffic, julia backend (50% occupancy) should take ~2x longer
  // than hip (100%).
  Device dev;
  KernelInfo info;
  info.name = "k";
  info.est_bytes_per_item = 64.0;
  info.flops_per_item = 1.0;  // stay memory-bound
  const auto rh = dev.launch(info, gs::gpu::hip_backend(), {4096, 1, 1},
                             [](const Index3&) {});
  const auto rj = dev.launch(info, gs::gpu::julia_amdgpu_backend(),
                             {4096, 1, 1}, [](const Index3&) {});
  // Subtract launch overhead before comparing.
  const double oh = dev.props().launch_overhead;
  EXPECT_NEAR((rj.duration - oh) / (rh.duration - oh), 2.0, 0.1);
}

TEST(Device, PeerTransferAdvancesClockAtFabricRate) {
  gs::prof::Profiler prof;
  Device dev(DeviceProps{}, 1, &prof);
  const double t0 = dev.clock().now();
  dev.peer_transfer(50'000'000'000ull, "halo");  // 1 s at 50 GB/s
  EXPECT_NEAR(dev.clock().now() - t0, 1.0 + dev.props().peer_latency,
              1e-9);
  ASSERT_EQ(prof.spans().size(), 1u);
  EXPECT_EQ(prof.spans()[0].name, "peer:halo");
}

TEST(Device, PrecompileReplacesJit) {
  Device dev;
  KernelInfo info;
  info.name = "k";
  const auto julia = gs::gpu::julia_amdgpu_backend();
  const double load = dev.precompile(info, julia);
  // Image load: a small fraction of the 1.28 s JIT mean.
  EXPECT_NEAR(load, 0.05 * julia.jit_compile_mean, 1e-12);
  // Second precompile is a no-op; subsequent launch pays nothing.
  EXPECT_DOUBLE_EQ(dev.precompile(info, julia), 0.0);
  const auto r = dev.launch(info, julia, {8, 8, 8}, [](const Index3&) {});
  EXPECT_DOUBLE_EQ(r.jit_time, 0.0);
  // AOT on a non-JIT backend is free.
  EXPECT_DOUBLE_EQ(dev.precompile(info, gs::gpu::hip_backend()), 0.0);
}

TEST(Device, ParallelLaunchBitwiseEqualToSerialLaunch) {
  // With the cache sim off, launch tiles Z-slab groups across the gs::par
  // pool. The result buffer must be bitwise identical to a single-lane
  // run (disjoint writes + fixed tiling).
  auto run = [](std::size_t lanes) {
    gs::par::set_global_lanes(lanes);
    Device dev;
    const Index3 items{16, 16, 16};
    auto buf = dev.alloc(static_cast<std::size_t>(items.volume()), "p");
    auto view = dev.view(buf, items);
    KernelInfo info;
    info.name = "fill";
    dev.launch(info, gs::gpu::hip_backend(), items,
               [&](const Index3& idx) {
                 view.store(idx.i, idx.j, idx.k,
                            1.0 / (1.0 + static_cast<double>(
                                             gs::linear_index(idx, items))));
               });
    std::vector<double> out(static_cast<std::size_t>(items.volume()));
    dev.memcpy_d2h(out, buf);
    gs::par::set_global_lanes(1);
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(Device, CacheSimLaunchStaysSerialWithDeterministicCounters) {
  // The L2 cache simulator is a sequential state machine: launches with
  // the cache sim enabled must run SERIAL regardless of pool size, so
  // the counters are pinned — identical for 1 lane and 4 lanes.
  auto counters_with_lanes = [](std::size_t lanes) {
    gs::par::set_global_lanes(lanes);
    Device dev;
    dev.set_cache_sim_enabled(true);
    const Index3 items{16, 16, 8};
    auto buf = dev.alloc(static_cast<std::size_t>(items.volume()), "c");
    auto view = dev.view(buf, items);
    KernelInfo info;
    info.name = "stencilish";
    const auto r = dev.launch(info, gs::gpu::hip_backend(), items,
                              [&](const Index3& idx) {
                                const double left =
                                    idx.i > 0
                                        ? view.load(idx.i - 1, idx.j, idx.k)
                                        : 0.0;
                                view.store(idx.i, idx.j, idx.k, left + 1.0);
                              });
    gs::par::set_global_lanes(1);
    return r.counters;
  };
  const auto serial = counters_with_lanes(1);
  const auto pooled = counters_with_lanes(4);
  EXPECT_EQ(serial.fetch_bytes, pooled.fetch_bytes);
  EXPECT_EQ(serial.write_bytes, pooled.write_bytes);
  EXPECT_EQ(serial.tcc_hits, pooled.tcc_hits);
  EXPECT_EQ(serial.tcc_misses, pooled.tcc_misses);
  EXPECT_EQ(serial.loads, pooled.loads);
  EXPECT_EQ(serial.stores, pooled.stores);
  EXPECT_GT(serial.tcc_hits + serial.tcc_misses, 0u);
}

TEST(Device, CacheTogglePreservesFunctionalResults) {
  // Same kernel, cache sim on and off: identical numerics, different
  // counters.
  auto run = [](bool cache_on) {
    Device dev;
    dev.set_cache_sim_enabled(cache_on);
    const Index3 items{8, 8, 8};
    auto buf = dev.alloc(512, "f");
    auto view = dev.view(buf, items);
    KernelInfo info;
    info.name = "fill";
    dev.launch(info, gs::gpu::hip_backend(), items,
               [&](const Index3& idx) {
                 view.store(idx.i, idx.j, idx.k,
                            static_cast<double>(
                                gs::linear_index(idx, items)));
               });
    std::vector<double> out(512);
    dev.memcpy_d2h(out, buf);
    return out;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Device, WorkgroupMetadataInCounters) {
  Device dev;
  KernelInfo info;
  info.name = "k";
  const auto r = dev.launch(info, gs::gpu::julia_amdgpu_backend(),
                            {16, 1, 1}, [](const Index3&) {});
  EXPECT_EQ(r.counters.workgroup_size, 512u);
  EXPECT_EQ(r.counters.lds_bytes, 29184u);
  EXPECT_EQ(r.counters.scratch_bytes, 8192u);
}

}  // namespace
