// Tests for the BP-mini parallel data format: round-trips across rank
// counts and aggregation layouts, steps, selections, attributes, scalars,
// min/max statistics, subfile-per-node invariants, bpls-style dump.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <thread>

#include "bp/manifest.h"
#include "bp/reader.h"
#include "bp/writer.h"
#include "grid/decomp.h"
#include "mpi/runtime.h"

namespace {

namespace fs = std::filesystem;
using gs::Box3;
using gs::Decomposition;
using gs::Index3;
using gs::bp::Reader;
using gs::bp::Writer;
using gs::json::Value;

std::string temp_dataset(const std::string& name) {
  return (fs::path(testing::TempDir()) / (name + ".bp")).string();
}

/// Value of the synthetic global field at a global cell: unique per cell
/// and per step.
double cell_value(const Index3& g, const Index3& shape, std::int64_t step) {
  return static_cast<double>(gs::linear_index(g, shape)) +
         1e6 * static_cast<double>(step);
}

/// Writes `n_steps` of a global L^3 "U" (and optionally "V") with the
/// given rank count and aggregation.
void write_dataset(const std::string& path, int nranks, std::int64_t L,
                   int n_steps, int ranks_per_node, bool with_v = false) {
  gs::mpi::run(nranks, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(L, world.size());
    const Box3 box = d.local_box(world.rank());
    const Index3 shape{L, L, L};

    Writer w(path, world, ranks_per_node);
    w.define_attribute("Du", Value(0.2));
    w.define_attribute("Dv", Value(0.1));
    w.define_attribute("schema", Value("VTX"));

    for (int s = 0; s < n_steps; ++s) {
      std::vector<double> block(static_cast<std::size_t>(box.volume()));
      std::size_t n = 0;
      for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
        for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
          for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
            block[n++] = cell_value({i, j, k}, shape, s);
          }
        }
      }
      w.begin_step();
      w.put("U", shape, box, block);
      if (with_v) {
        std::vector<double> vblock(block.size());
        for (std::size_t m = 0; m < block.size(); ++m) {
          vblock[m] = -block[m];
        }
        w.put("V", shape, box, vblock);
      }
      w.put_scalar("step", 10 * s);
      w.end_step();
    }
    w.close();
  });
}

class BpRoundTrip
    : public testing::TestWithParam<std::tuple<int, int>> {};  // ranks, rpn

TEST_P(BpRoundTrip, FullReadMatchesAcrossLayouts) {
  const auto [nranks, rpn] = GetParam();
  const std::int64_t L = 8;
  const std::string path = temp_dataset(
      "rt_" + std::to_string(nranks) + "_" + std::to_string(rpn));
  write_dataset(path, nranks, L, 2, rpn);

  Reader r(path);
  EXPECT_EQ(r.n_steps(), 2);
  const Index3 shape{L, L, L};
  for (std::int64_t s = 0; s < 2; ++s) {
    const auto full = r.read_full("U", s);
    ASSERT_EQ(full.size(), static_cast<std::size_t>(L * L * L));
    for (std::int64_t k = 0; k < L; ++k) {
      for (std::int64_t j = 0; j < L; ++j) {
        for (std::int64_t i = 0; i < L; ++i) {
          const auto lin = static_cast<std::size_t>(
              gs::linear_index({i, j, k}, shape));
          ASSERT_DOUBLE_EQ(full[lin], cell_value({i, j, k}, shape, s))
              << nranks << " ranks, rpn " << rpn << ", cell " << i << ","
              << j << "," << k;
        }
      }
    }
  }
  fs::remove_all(path);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, BpRoundTrip,
    testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                    std::make_tuple(4, 2), std::make_tuple(8, 8),
                    std::make_tuple(8, 4), std::make_tuple(8, 3),
                    std::make_tuple(6, 2)));

TEST(Bp, SubfilePerNodeLayout) {
  const std::string path = temp_dataset("subfiles");
  write_dataset(path, 8, 8, 1, /*ranks_per_node=*/4);
  // 8 ranks / 4 per node -> exactly 2 subfiles.
  EXPECT_TRUE(fs::exists(fs::path(path) / "data.0"));
  EXPECT_TRUE(fs::exists(fs::path(path) / "data.1"));
  EXPECT_FALSE(fs::exists(fs::path(path) / "data.2"));
  EXPECT_TRUE(fs::exists(fs::path(path) / "md.idx"));
  // All payload bytes present: 8^3 doubles + nothing else.
  const auto bytes = fs::file_size(fs::path(path) / "data.0") +
                     fs::file_size(fs::path(path) / "data.1");
  EXPECT_EQ(bytes, 8u * 8u * 8u * sizeof(double));
  fs::remove_all(path);
}

TEST(Bp, SelectionReadsOnlyRequestedBox) {
  const std::int64_t L = 8;
  const std::string path = temp_dataset("selection");
  write_dataset(path, 8, L, 1, 4);
  Reader r(path);
  const Index3 shape{L, L, L};
  // A box deliberately straddling the 2x2x2 rank decomposition.
  const Box3 sel{{2, 3, 1}, {5, 4, 6}};
  const auto data = r.read("U", 0, sel);
  ASSERT_EQ(data.size(), static_cast<std::size_t>(sel.volume()));
  for (std::int64_t k = 0; k < sel.count.k; ++k) {
    for (std::int64_t j = 0; j < sel.count.j; ++j) {
      for (std::int64_t i = 0; i < sel.count.i; ++i) {
        const Index3 g = sel.start + Index3{i, j, k};
        const auto lin = static_cast<std::size_t>(
            gs::linear_index({i, j, k}, sel.count));
        ASSERT_DOUBLE_EQ(data[lin], cell_value(g, shape, 0));
      }
    }
  }
  fs::remove_all(path);
}

TEST(Bp, CenterPlaneSliceSelection) {
  // The analysis workflow's typical read: one 2-D slice (Figure 9).
  const std::int64_t L = 8;
  const std::string path = temp_dataset("slice");
  write_dataset(path, 4, L, 1, 2);
  Reader r(path);
  const Box3 slice{{0, 0, L / 2}, {L, L, 1}};
  const auto data = r.read("U", 0, slice);
  ASSERT_EQ(data.size(), static_cast<std::size_t>(L * L));
  const Index3 shape{L, L, L};
  for (std::int64_t j = 0; j < L; ++j) {
    for (std::int64_t i = 0; i < L; ++i) {
      ASSERT_DOUBLE_EQ(data[static_cast<std::size_t>(i + L * j)],
                       cell_value({i, j, L / 2}, shape, 0));
    }
  }
  fs::remove_all(path);
}

TEST(Bp, AttributesRoundTrip) {
  const std::string path = temp_dataset("attrs");
  write_dataset(path, 2, 8, 1, 2);
  Reader r(path);
  EXPECT_DOUBLE_EQ(r.attribute("Du").as_double(), 0.2);
  EXPECT_DOUBLE_EQ(r.attribute("Dv").as_double(), 0.1);
  EXPECT_EQ(r.attribute("schema").as_string(), "VTX");
  const auto names = r.attribute_names();
  EXPECT_EQ(names.size(), 3u);
  EXPECT_THROW(r.attribute("nope"), gs::IoError);
  fs::remove_all(path);
}

TEST(Bp, ScalarStepSeries) {
  const std::string path = temp_dataset("scalars");
  write_dataset(path, 4, 8, 3, 2);
  Reader r(path);
  const auto info = r.info("step");
  EXPECT_EQ(info.type, "int64");
  EXPECT_EQ(info.steps, 3);
  EXPECT_EQ(r.read_scalar("step", 0), 0);
  EXPECT_EQ(r.read_scalar("step", 1), 10);
  EXPECT_EQ(r.read_scalar("step", 2), 20);
  EXPECT_THROW(r.read_scalar("step", 3), gs::Error);
  EXPECT_THROW(r.read_scalar("U", 0), gs::Error);
  fs::remove_all(path);
}

TEST(Bp, MinMaxStatistics) {
  const std::int64_t L = 8;
  const std::string path = temp_dataset("minmax");
  write_dataset(path, 8, L, 2, 4, /*with_v=*/true);
  Reader r(path);
  const Index3 shape{L, L, L};
  // U values: lin + 1e6*step; min at step 0 cell 0, max at step 1 last.
  const auto u = r.info("U");
  EXPECT_DOUBLE_EQ(u.min, 0.0);
  EXPECT_DOUBLE_EQ(u.max, cell_value({L - 1, L - 1, L - 1}, shape, 1));
  const auto v = r.info("V");
  EXPECT_DOUBLE_EQ(v.max, 0.0);
  EXPECT_DOUBLE_EQ(v.min, -cell_value({L - 1, L - 1, L - 1}, shape, 1));
  fs::remove_all(path);
}

TEST(Bp, BlockMetadataMatchesDecomposition) {
  const std::int64_t L = 8;
  const std::string path = temp_dataset("blocks");
  write_dataset(path, 8, L, 1, 4);
  Reader r(path);
  const auto blocks = r.blocks("U", 0);
  ASSERT_EQ(blocks.size(), 8u);
  const Decomposition d = Decomposition::cube(L, 8);
  std::int64_t covered = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.box, d.local_box(b.rank));
    EXPECT_GE(b.subfile, 0);
    EXPECT_LE(b.subfile, 1);
    covered += b.box.volume();
  }
  EXPECT_EQ(covered, L * L * L);
  fs::remove_all(path);
}

TEST(Bp, DumpLooksLikeListing1) {
  const std::string path = temp_dataset("dump");
  write_dataset(path, 4, 8, 2, 2, /*with_v=*/true);
  const std::string text = gs::bp::dump(path);
  EXPECT_NE(text.find("double   Du       attr   = 0.2"), std::string::npos);
  EXPECT_NE(text.find("U  2*{8, 8, 8}"), std::string::npos);
  EXPECT_NE(text.find("Min/Max"), std::string::npos);
  EXPECT_NE(text.find("int64_t  step  2*scalar = 0 / 10"),
            std::string::npos);
  EXPECT_NE(text.find("schema"), std::string::npos);
  fs::remove_all(path);
}

TEST(Bp, WriterApiMisuseRejected) {
  const std::string path = temp_dataset("misuse");
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    Writer w(path, world, 1);
    std::vector<double> data(8, 1.0);
    const Box3 box{{0, 0, 0}, {2, 2, 2}};
    // put outside a step
    EXPECT_THROW(w.put("U", {2, 2, 2}, box, data), gs::Error);
    w.begin_step();
    EXPECT_THROW(w.begin_step(), gs::Error);  // nested step
    // wrong data size
    EXPECT_THROW(w.put("U", {2, 2, 2}, box,
                       std::span<const double>(data.data(), 4)),
                 gs::Error);
    // box outside shape
    EXPECT_THROW(w.put("U", {2, 2, 2}, Box3{{1, 0, 0}, {2, 2, 2}}, data),
                 gs::Error);
    w.put("U", {2, 2, 2}, box, data);
    // same variable twice in one step
    EXPECT_THROW(w.put("U", {2, 2, 2}, box, data), gs::Error);
    // close with open step
    EXPECT_THROW(w.close(), gs::Error);
    w.end_step();
    w.close();
    // closed writer
    EXPECT_THROW(w.begin_step(), gs::Error);
  });
  fs::remove_all(path);
}

TEST(Bp, ReaderRejectsMissingOrCorrupt) {
  EXPECT_THROW(Reader("/nonexistent/path.bp"), gs::IoError);
  const std::string corrupt = temp_dataset("corrupt");
  fs::create_directories(corrupt);
  {
    std::ofstream bad(fs::path(corrupt) / "md.idx");
    bad << "{\"format\": \"something-else\"}";
  }
  EXPECT_THROW(Reader{corrupt}, gs::Error);
  fs::remove_all(corrupt);
}

TEST(Bp, ReaderValidatesSelections) {
  const std::string path = temp_dataset("badsel");
  write_dataset(path, 1, 8, 1, 1);
  Reader r(path);
  EXPECT_THROW(r.read("U", 0, Box3{{0, 0, 0}, {9, 8, 8}}), gs::Error);
  EXPECT_THROW(r.read("U", 0, Box3{{0, 0, 0}, {0, 0, 0}}), gs::Error);
  EXPECT_THROW(r.read("U", 5, Box3{{0, 0, 0}, {8, 8, 8}}), gs::Error);
  EXPECT_THROW(r.read("missing", 0, Box3{{0, 0, 0}, {1, 1, 1}}), gs::Error);
  fs::remove_all(path);
}

TEST(Bp, RewriteTruncatesPreviousDataset) {
  const std::string path = temp_dataset("trunc");
  write_dataset(path, 4, 8, 3, 2);
  write_dataset(path, 2, 8, 1, 1);  // rewrite with different layout
  Reader r(path);
  EXPECT_EQ(r.n_steps(), 1);
  EXPECT_EQ(r.blocks("U", 0).size(), 2u);
  // Old subfiles from the 2-node layout are gone.
  EXPECT_FALSE(fs::exists(fs::path(path) / "data.1") &&
               r.blocks("U", 0).at(0).subfile == 0 &&
               fs::exists(fs::path(path) / "data.2"));
  fs::remove_all(path);
}

TEST(Bp, AppendModeContinuesDataset) {
  const std::int64_t L = 8;
  const std::string path = temp_dataset("append");
  write_dataset(path, 4, L, 2, 2);  // steps 0, 1

  // Append two more steps through a second writer session.
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(L, world.size());
    const Box3 box = d.local_box(world.rank());
    const Index3 shape{L, L, L};
    Writer w(path, world, 2, nullptr, gs::bp::Mode::append);
    for (int s = 2; s < 4; ++s) {
      std::vector<double> block(static_cast<std::size_t>(box.volume()));
      std::size_t n = 0;
      for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
        for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
          for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
            block[n++] = cell_value({i, j, k}, shape, s);
          }
        }
      }
      w.begin_step();
      w.put("U", shape, box, block);
      w.put_scalar("step", 10 * s);
      w.end_step();
    }
    w.close();
  });

  Reader r(path);
  EXPECT_EQ(r.n_steps(), 4);
  // Old steps intact...
  EXPECT_EQ(r.read_scalar("step", 1), 10);
  const Index3 shape{L, L, L};
  const auto old_step = r.read_full("U", 1);
  EXPECT_DOUBLE_EQ(old_step[0], cell_value({0, 0, 0}, shape, 1));
  // ...and appended steps readable.
  EXPECT_EQ(r.read_scalar("step", 3), 30);
  const auto new_step = r.read_full("U", 3);
  EXPECT_DOUBLE_EQ(new_step[5], cell_value({5, 0, 0}, shape, 3));
  // Attributes survive the append session.
  EXPECT_DOUBLE_EQ(r.attribute("Du").as_double(), 0.2);
  fs::remove_all(path);
}

TEST(Bp, AppendOnMissingDatasetActsAsWrite) {
  const std::string path = temp_dataset("append_fresh");
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    Writer w(path, world, 1, nullptr, gs::bp::Mode::append);
    std::vector<double> data(8, 2.0);
    w.begin_step();
    w.put("U", {2, 2, 2}, Box3{{0, 0, 0}, {2, 2, 2}}, data);
    w.end_step();
    w.close();
  });
  Reader r(path);
  EXPECT_EQ(r.n_steps(), 1);
  fs::remove_all(path);
}

TEST(Bp, BlocksCarryChecksums) {
  const std::string path = temp_dataset("crc");
  write_dataset(path, 2, 8, 1, 1);
  Reader r(path);
  for (const auto& b : r.blocks("U", 0)) {
    EXPECT_NE(b.crc, 0u);
  }
  fs::remove_all(path);
}

TEST(Bp, CorruptedSubfileDetectedOnRead) {
  const std::string path = temp_dataset("corrupt_data");
  write_dataset(path, 2, 8, 1, 1);
  // Flip one byte in the middle of a data subfile.
  {
    std::fstream f(fs::path(path) / "data.0",
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(100);
    char c;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(100);
    f.write(&c, 1);
  }
  Reader r(path);
  EXPECT_THROW(r.read_full("U", 0), gs::IoError);
  fs::remove_all(path);
}

TEST(Bp, MetadataOnlyQueriesSurviveCorruptData) {
  // Index-level introspection never touches the payload, so it still
  // works on a dataset with a corrupt subfile (bpls semantics).
  const std::string path = temp_dataset("corrupt_meta_ok");
  write_dataset(path, 2, 8, 1, 1);
  {
    std::ofstream f(fs::path(path) / "data.0",
                    std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  Reader r(path);
  EXPECT_EQ(r.info("U").shape, (Index3{8, 8, 8}));
  EXPECT_NO_THROW(gs::bp::dump(r));
  fs::remove_all(path);
}

// ---- corruption matrix ---------------------------------------------------
// Physical damage of every flavor the fault model cares about: truncated
// subfiles, flipped bytes, a missing index, and interrupted commits.

TEST(BpCorruption, CommittedDatasetCarriesValidManifest) {
  const std::string path = temp_dataset("manifest_ok");
  write_dataset(path, 2, 8, 1, 1);
  EXPECT_TRUE(fs::exists(fs::path(path) / gs::bp::kManifestFile));
  EXPECT_EQ(gs::bp::validate_against_manifest(path), "");
  fs::remove_all(path);
}

TEST(BpCorruption, TruncatedSubfileSalvageReportsShortRead) {
  const std::string path = temp_dataset("trunc_salvage");
  write_dataset(path, 2, 8, 1, 1);  // one U block per subfile
  fs::resize_file(fs::path(path) / "data.1", 64);

  Reader r(path);
  // The strict read path still refuses the damage...
  EXPECT_THROW(r.read_full("U", 0), gs::IoError);

  // ...while the salvage path reads around it: the surviving block's
  // cells are exact, the truncated block's cells are zeros.
  gs::bp::SalvageReport rep;
  const auto full = r.read_full_salvage("U", 0, rep);
  EXPECT_EQ(rep.blocks_checked, 2u);
  ASSERT_EQ(rep.bad.size(), 1u);
  EXPECT_EQ(rep.bad[0].reason, "short_read");
  EXPECT_EQ(rep.bad[0].subfile, "data.1");
  EXPECT_EQ(rep.bad[0].variable, "U");

  const Index3 shape{8, 8, 8};
  const Decomposition d = Decomposition::cube(8, 2);
  const Box3 good = d.local_box(0);  // rank 0 -> data.0 (rpn 1)
  const Box3 lost = d.local_box(1);  // rank 1 -> data.1
  for (std::int64_t k = good.start.k; k < good.end().k; ++k) {
    for (std::int64_t j = good.start.j; j < good.end().j; ++j) {
      for (std::int64_t i = good.start.i; i < good.end().i; ++i) {
        const auto lin =
            static_cast<std::size_t>(gs::linear_index({i, j, k}, shape));
        ASSERT_DOUBLE_EQ(full[lin], cell_value({i, j, k}, shape, 0));
      }
    }
  }
  for (std::int64_t k = lost.start.k; k < lost.end().k; ++k) {
    for (std::int64_t j = lost.start.j; j < lost.end().j; ++j) {
      for (std::int64_t i = lost.start.i; i < lost.end().i; ++i) {
        const auto lin =
            static_cast<std::size_t>(gs::linear_index({i, j, k}, shape));
        ASSERT_DOUBLE_EQ(full[lin], 0.0);
      }
    }
  }
  fs::remove_all(path);
}

TEST(BpCorruption, FlippedByteReportsExactlyThatBlock) {
  const std::string path = temp_dataset("flip_salvage");
  write_dataset(path, 4, 8, 2, 2, /*with_v=*/true);

  // Flip one byte inside a specific U block of step 1 living in data.0.
  std::size_t victim_index = 0;
  std::uint64_t victim_offset = 0;
  {
    Reader r0(path);
    const auto blocks = r0.blocks("U", 1);
    bool found = false;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (blocks[b].subfile == 0) {
        victim_index = b;
        victim_offset = blocks[b].offset;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
  }
  {
    std::fstream f(fs::path(path) / "data.0",
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(victim_offset) + 16);
    char c;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x01);
    f.seekp(static_cast<std::streamoff>(victim_offset) + 16);
    f.write(&c, 1);
  }

  // verify() CRC-checks every block and reports exactly the injured one.
  Reader r(path);
  const auto rep = r.verify();
  // 4 ranks x 2 vars x 2 steps = 16 array blocks.
  EXPECT_EQ(rep.blocks_checked, 16u);
  ASSERT_EQ(rep.bad.size(), 1u);
  EXPECT_EQ(rep.bad[0].reason, "crc_mismatch");
  EXPECT_EQ(rep.bad[0].variable, "U");
  EXPECT_EQ(rep.bad[0].step, 1);
  EXPECT_EQ(rep.bad[0].block_index, victim_index);
  EXPECT_EQ(rep.bad[0].subfile, "data.0");
  EXPECT_EQ(rep.bad[0].offset, victim_offset);
  EXPECT_FALSE(rep.clean());
  EXPECT_FALSE(rep.report().empty());

  // try_read_block agrees, and the undamaged twin variable reads clean.
  const auto bad = r.try_read_block("U", 1, victim_index);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.reason, "crc_mismatch");
  gs::bp::SalvageReport vrep;
  r.read_full_salvage("V", 1, vrep);
  EXPECT_TRUE(vrep.clean());
  fs::remove_all(path);
}

TEST(BpCorruption, MissingIndexFailsToOpen) {
  const std::string path = temp_dataset("no_idx");
  write_dataset(path, 2, 8, 1, 1);
  fs::remove(fs::path(path) / gs::bp::kIndexFile);
  EXPECT_THROW(Reader r(path), gs::IoError);
  fs::remove_all(path);
}

TEST(BpCorruption, StaleStagingWithoutManifestRollsBack) {
  const std::string path = temp_dataset("stale_rb");
  write_dataset(path, 2, 8, 1, 1);
  // Fake a writer that died mid-write: a staging dir with a torn subfile
  // and no manifest.
  const std::string staging = gs::bp::staging_path(path);
  fs::create_directories(staging);
  {
    std::ofstream f(fs::path(staging) / "data.0", std::ios::binary);
    f << "torn partial write";
  }
  const auto res = gs::bp::recover(path);
  EXPECT_EQ(res.action, gs::bp::RecoverAction::rolled_back);
  EXPECT_FALSE(fs::exists(staging));
  // The committed dataset is untouched and fully readable.
  Reader r(path);
  EXPECT_EQ(r.n_steps(), 1);
  const auto full = r.read_full("U", 0);
  EXPECT_DOUBLE_EQ(full[5], cell_value({5, 0, 0}, {8, 8, 8}, 0));
  fs::remove_all(path);
}

TEST(BpCorruption, CommittedStagingRollsForward) {
  const std::string path = temp_dataset("stale_rf");
  write_dataset(path, 2, 8, 1, 1);  // old content: 1 step
  // Fake a writer that died between the manifest rename (the commit
  // point) and the final promotion: a fully staged dataset — complete
  // subfiles, index, and valid manifest — sitting in <path>.staging.
  const std::string staging = gs::bp::staging_path(path);
  fs::remove_all(staging);
  write_dataset(staging, 2, 8, 2, 1);  // new content: 2 steps
  ASSERT_EQ(gs::bp::validate_against_manifest(staging), "");

  const auto res = gs::bp::recover(path);
  EXPECT_EQ(res.action, gs::bp::RecoverAction::rolled_forward);
  EXPECT_FALSE(fs::exists(staging));
  Reader r(path);
  EXPECT_EQ(r.n_steps(), 2);  // the committed new content won
  const auto full = r.read_full("U", 1);
  EXPECT_DOUBLE_EQ(full[5], cell_value({5, 0, 0}, {8, 8, 8}, 1));
  fs::remove_all(path);
}

TEST(BpCorruption, RecoverIsIdempotentAndQuietWhenClean) {
  const std::string path = temp_dataset("recover_clean");
  write_dataset(path, 2, 8, 1, 1);
  EXPECT_EQ(gs::bp::recover(path).action, gs::bp::RecoverAction::none);
  EXPECT_EQ(gs::bp::recover(path).action, gs::bp::RecoverAction::none);
  Reader r(path);
  EXPECT_EQ(r.n_steps(), 1);
  fs::remove_all(path);
}

TEST(Bp, StepIoStatsAccounting) {
  const std::int64_t L = 8;
  const std::string path = temp_dataset("stats");
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(L, world.size());
    const Box3 box = d.local_box(world.rank());
    std::vector<double> block(static_cast<std::size_t>(box.volume()), 1.0);
    Writer w(path, world, 2);
    w.begin_step();
    w.put("U", {L, L, L}, box, block);
    const auto stats = w.end_step();
    EXPECT_EQ(stats.local_bytes, block.size() * sizeof(double));
    if (w.is_aggregator()) {
      // Two ranks per node: each aggregator writes 2 blocks.
      EXPECT_EQ(stats.node_bytes, 2 * block.size() * sizeof(double));
    } else {
      EXPECT_EQ(stats.node_bytes, 0u);
    }
    EXPECT_GE(stats.seconds, 0.0);
    w.close();
  });
  fs::remove_all(path);
}

TEST(Bp, FloatStorageRoundTripAndHalvedBytes) {
  const std::int64_t L = 8;
  const std::string path = temp_dataset("float");
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(L, world.size());
    const Box3 box = d.local_box(world.rank());
    std::vector<float> block(static_cast<std::size_t>(box.volume()));
    std::size_t n = 0;
    for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
      for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
        for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
          block[n++] = static_cast<float>(
              gs::linear_index({i, j, k}, {L, L, L}));
        }
      }
    }
    Writer w(path, world, 2);
    w.begin_step();
    w.put_float("U", {L, L, L}, box, block);
    w.end_step();
    w.close();
  });

  Reader r(path);
  EXPECT_EQ(r.info("U").type, "float");
  // Stored bytes: 4 per cell, not 8.
  std::uint64_t stored = 0;
  for (const auto& b : r.blocks("U", 0)) stored += b.stored_bytes;
  EXPECT_EQ(stored, static_cast<std::uint64_t>(L * L * L) * 4);
  // Values widen back exactly (they are small integers).
  const auto full = r.read_full("U", 0);
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_DOUBLE_EQ(full[i], static_cast<double>(i));
  }
  // min/max stats present.
  EXPECT_DOUBLE_EQ(r.info("U").min, 0.0);
  EXPECT_DOUBLE_EQ(r.info("U").max, static_cast<double>(L * L * L - 1));
  // Dump shows the type.
  EXPECT_NE(gs::bp::dump(r).find("float"), std::string::npos);
  fs::remove_all(path);
}

TEST(Bp, FloatStorageCrcDetectsCorruption) {
  const std::string path = temp_dataset("float_crc");
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    std::vector<float> block(64, 1.25f);
    Writer w(path, world, 1);
    w.begin_step();
    w.put_float("U", {4, 4, 4}, Box3{{0, 0, 0}, {4, 4, 4}}, block);
    w.end_step();
    w.close();
  });
  {
    std::fstream f(fs::path(path) / "data.0",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(17);
    const char c = 0x7F;
    f.write(&c, 1);
  }
  Reader r(path);
  EXPECT_THROW(r.read_full("U", 0), gs::IoError);
  fs::remove_all(path);
}

TEST(Bp, MixedTypeVariablesInOneStep) {
  const std::string path = temp_dataset("mixedtype");
  gs::mpi::run(2, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(8, world.size());
    const Box3 box = d.local_box(world.rank());
    const auto n = static_cast<std::size_t>(box.volume());
    std::vector<double> dbl(n, 0.5);
    std::vector<float> flt(n, 0.25f);
    Writer w(path, world, 1);
    w.begin_step();
    w.put("U", {8, 8, 8}, box, dbl);
    w.put_float("V", {8, 8, 8}, box, flt);
    w.end_step();
    w.close();
  });
  Reader r(path);
  EXPECT_EQ(r.info("U").type, "double");
  EXPECT_EQ(r.info("V").type, "float");
  for (const double v : r.read_full("U", 0)) ASSERT_DOUBLE_EQ(v, 0.5);
  for (const double v : r.read_full("V", 0)) ASSERT_DOUBLE_EQ(v, 0.25);
  fs::remove_all(path);
}

TEST(Bp, TypeRedeclarationRejected) {
  const std::string path = temp_dataset("retype");
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    std::vector<double> dbl(64, 1.0);
    std::vector<float> flt(64, 1.0f);
    Writer w(path, world, 1);
    const Box3 box{{0, 0, 0}, {4, 4, 4}};
    w.begin_step();
    w.put("U", {4, 4, 4}, box, dbl);
    w.end_step();
    w.begin_step();
    w.put_float("U", {4, 4, 4}, box, flt);
    EXPECT_THROW(w.end_step(), gs::Error);
  });
  fs::remove_all(path);
}

TEST(Bp, BlockLevelRead) {
  const std::int64_t L = 8;
  const std::string path = temp_dataset("blockread");
  write_dataset(path, 4, L, 1, 2);
  Reader r(path);
  const auto blks = r.blocks("U", 0);
  const Index3 shape{L, L, L};
  for (std::size_t b = 0; b < blks.size(); ++b) {
    const auto data = r.read_block("U", 0, b);
    ASSERT_EQ(data.size(), static_cast<std::size_t>(blks[b].box.volume()));
    // First value of the block is the cell at its start corner.
    EXPECT_DOUBLE_EQ(data[0], cell_value(blks[b].box.start, shape, 0));
  }
  EXPECT_THROW(r.read_block("U", 0, blks.size()), gs::Error);
  fs::remove_all(path);
}

TEST(Bp, ConcurrentBoxReadsMatchSerialBitwise) {
  // The Reader is immutable after construction and opens a fresh stream
  // per block load, so N threads hammering the same dataset must agree
  // bitwise with a serial read of the same selections.
  const std::int64_t L = 12;
  const int n_steps = 2;
  const std::string path = temp_dataset("concurrent");
  write_dataset(path, 4, L, n_steps, 2, /*with_v=*/true);
  const Reader r(path);

  const std::vector<Box3> boxes = {
      {{0, 0, 0}, {L, L, L}},          // full field
      {{3, 2, 5}, {7, 9, 4}},          // interior box spanning blocks
      {{0, 0, L / 2}, {L, L, 1}},      // one plane
      {{L - 1, L - 1, L - 1}, {1, 1, 1}},  // single corner cell
  };
  std::vector<std::vector<double>> serial;
  for (const auto& box : boxes) {
    for (std::int64_t s = 0; s < n_steps; ++s) {
      serial.push_back(r.read("U", s, box));
      serial.push_back(r.read("V", s, box));
    }
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int repeat = 0; repeat < 3; ++repeat) {
        std::size_t n = 0;
        for (const auto& box : boxes) {
          for (std::int64_t s = 0; s < n_steps; ++s) {
            if (r.read("U", s, box) != serial[n++]) mismatches.fetch_add(1);
            if (r.read("V", s, box) != serial[n++]) mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  fs::remove_all(path);
}

// ---- copy_overlap edge matrix ---------------------------------------------

/// Naive cell-at-a-time reference for copy_overlap: no row-run batching,
/// no fast paths — just the definition.
void copy_overlap_naive(std::span<const double> block_data,
                        const Box3& block_box, const Box3& selection,
                        std::span<double> out) {
  const Box3 ov = block_box.intersect(selection);
  if (ov.empty()) return;
  for (std::int64_t k = ov.start.k; k < ov.end().k; ++k) {
    for (std::int64_t j = ov.start.j; j < ov.end().j; ++j) {
      for (std::int64_t i = ov.start.i; i < ov.end().i; ++i) {
        const Index3 g{i, j, k};
        const auto src = static_cast<std::size_t>(gs::linear_index(
            {g.i - block_box.start.i, g.j - block_box.start.j,
             g.k - block_box.start.k},
            block_box.count));
        const auto dst = static_cast<std::size_t>(gs::linear_index(
            {g.i - selection.start.i, g.j - selection.start.j,
             g.k - selection.start.k},
            selection.count));
        out[dst] = block_data[src];
      }
    }
  }
}

/// Runs copy_overlap and the naive reference on a uniquely-valued block
/// and checks both the copied cells and that untouched cells keep their
/// sentinel (copy_overlap must never write outside the overlap).
void check_copy_overlap(const Box3& block_box, const Box3& selection) {
  std::vector<double> block(static_cast<std::size_t>(block_box.volume()));
  std::iota(block.begin(), block.end(), 1000.0);
  constexpr double kSentinel = -7.5;
  std::vector<double> got(static_cast<std::size_t>(selection.volume()),
                          kSentinel);
  std::vector<double> want = got;
  gs::bp::copy_overlap(block, block_box, selection, got);
  copy_overlap_naive(block, block_box, selection, want);
  EXPECT_EQ(got, want) << "block " << block_box << " selection " << selection;
}

TEST(BpCopyOverlap, DisjointBoxesLeaveOutputUntouched) {
  check_copy_overlap({{0, 0, 0}, {4, 4, 4}}, {{4, 0, 0}, {2, 2, 2}});
  check_copy_overlap({{0, 0, 0}, {4, 4, 4}}, {{0, 4, 0}, {2, 2, 2}});
  check_copy_overlap({{0, 0, 0}, {4, 4, 4}}, {{0, 0, 4}, {2, 2, 2}});
  check_copy_overlap({{2, 2, 2}, {3, 3, 3}}, {{0, 0, 0}, {2, 2, 2}});
}

TEST(BpCopyOverlap, OneWideSlabsAlongEachAxis) {
  const Box3 block{{0, 0, 0}, {5, 5, 5}};
  check_copy_overlap(block, {{2, 0, 0}, {1, 5, 5}});  // i-slab
  check_copy_overlap(block, {{0, 2, 0}, {5, 1, 5}});  // j-slab
  check_copy_overlap(block, {{0, 0, 2}, {5, 5, 1}});  // k-slab
  check_copy_overlap(block, {{1, 3, 4}, {1, 1, 1}});  // single cell
}

TEST(BpCopyOverlap, UnalignedPartialOverlaps) {
  // Selection hangs off every face of the block, in every combination.
  const Box3 block{{2, 2, 2}, {4, 5, 3}};
  check_copy_overlap(block, {{0, 0, 0}, {4, 4, 4}});  // low corner
  check_copy_overlap(block, {{4, 5, 3}, {5, 5, 5}});  // high corner
  check_copy_overlap(block, {{0, 3, 0}, {9, 2, 9}});  // straddles i and k
  check_copy_overlap(block, {{3, 1, 1}, {1, 7, 5}});  // thin column through
  // Block strictly inside the selection.
  check_copy_overlap({{3, 3, 3}, {2, 2, 2}}, {{0, 0, 0}, {8, 8, 8}});
}

TEST(BpCopyOverlap, FullCoverIsContiguousIdentity) {
  // Selection == block: the whole payload must come through verbatim.
  const Box3 block{{1, 2, 3}, {4, 3, 2}};
  std::vector<double> payload(static_cast<std::size_t>(block.volume()));
  std::iota(payload.begin(), payload.end(), -12.0);
  std::vector<double> out(payload.size(), 0.0);
  gs::bp::copy_overlap(payload, block, block, out);
  EXPECT_EQ(out, payload);
  // Selection strictly inside the block (interior sub-box, all axes
  // unaligned with the block origin).
  check_copy_overlap({{0, 0, 0}, {6, 6, 6}}, {{1, 2, 3}, {3, 2, 2}});
}

// ---- zero-copy mmap views ----------------------------------------------------

TEST(BpMmap, MappedViewMatchesCopyingReadBitwise) {
  const std::string path = temp_dataset("mmap_identity");
  write_dataset(path, 4, 8, 2, 2, /*with_v=*/true);
  Reader r(path);
  ASSERT_TRUE(r.mmap_enabled());
  for (const std::string var : {"U", "V"}) {
    for (std::int64_t s = 0; s < 2; ++s) {
      const auto blocks = r.blocks(var, s);
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        const auto copied = r.read_block(var, s, b);
        const auto view = r.try_map_block(var, s, b);
        ASSERT_TRUE(view.has_value()) << var << " step " << s << " block " << b;
        ASSERT_EQ(view->data.size(), copied.size());
        EXPECT_EQ(std::memcmp(view->data.data(), copied.data(),
                              copied.size() * sizeof(double)),
                  0)
            << var << " step " << s << " block " << b;
      }
    }
  }
  fs::remove_all(path);
}

TEST(BpMmap, FirstTouchVerifiesCrcOnceThenSkips) {
  const std::string path = temp_dataset("mmap_touch");
  write_dataset(path, 2, 8, 1, 1);
  Reader r(path);
  bool first = false;
  auto v1 = r.try_map_block("U", 0, 0, &first);
  ASSERT_TRUE(v1.has_value());
  EXPECT_TRUE(first);  // cold: CRC scanned against the mapped bytes
  auto v2 = r.try_map_block("U", 0, 0, &first);
  ASSERT_TRUE(v2.has_value());
  EXPECT_FALSE(first);  // warm: offset already in the verified set
  // Both views alias the same mapping.
  EXPECT_EQ(v1->data.data(), v2->data.data());
  fs::remove_all(path);
}

TEST(BpMmap, DisabledReaderReturnsNulloptButStillReads) {
  const std::string path = temp_dataset("mmap_off");
  write_dataset(path, 2, 8, 1, 1);
  Reader r(path);
  r.set_mmap(false);
  EXPECT_FALSE(r.mmap_enabled());
  EXPECT_FALSE(r.try_map_block("U", 0, 0).has_value());
  EXPECT_EQ(r.read_block("U", 0, 0).size(), 8u * 8u * 4u);  // copying path
  fs::remove_all(path);
}

TEST(BpMmap, CorruptBlockFallsBackToCopyingDetection) {
  const std::string path = temp_dataset("mmap_corrupt");
  write_dataset(path, 2, 8, 1, 1);
  {  // flip one payload byte in the first subfile
    std::fstream f(fs::path(path) / "data.0",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(16);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(16);
    f.write(&byte, 1);
  }
  Reader r(path);
  // Which block index landed in data.0 depends on writer aggregation
  // order, so scan both: exactly one block must CRC-fail, and it must
  // fail the same way on both paths — first touch of the mmap route
  // yields no view, and the copying route reports the usual reason code.
  int damaged = 0;
  const auto blocks = r.blocks("U", 0);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const bool mapped = r.try_map_block("U", 0, b).has_value();
    const auto checked = r.try_read_block("U", 0, b);
    EXPECT_EQ(mapped, checked.ok()) << "block " << b;
    if (!checked.ok()) {
      EXPECT_EQ(checked.reason, "crc_mismatch");
      ++damaged;
    }
  }
  EXPECT_EQ(damaged, 1);
  fs::remove_all(path);
}

TEST(BpMmap, ViewOutlivesReaderViaHold) {
  const std::string path = temp_dataset("mmap_hold");
  write_dataset(path, 1, 8, 1, 1);
  std::vector<double> copied;
  std::optional<Reader::BlockView> view;
  {
    Reader r(path);
    copied = r.read_block("U", 0, 0);
    view = r.try_map_block("U", 0, 0);
    ASSERT_TRUE(view.has_value());
  }  // Reader destroyed; view->hold keeps the mapping alive
  ASSERT_EQ(view->data.size(), copied.size());
  EXPECT_EQ(std::memcmp(view->data.data(), copied.data(),
                        copied.size() * sizeof(double)),
            0);
  view.reset();
  fs::remove_all(path);
}

TEST(Bp, UnevenBlocksAcrossRanks) {
  // L=7 over 2 ranks: blocks 4 and 3 wide.
  const std::int64_t L = 7;
  const std::string path = temp_dataset("uneven");
  write_dataset(path, 2, L, 1, 2);
  Reader r(path);
  const auto full = r.read_full("U", 0);
  const Index3 shape{L, L, L};
  for (std::int64_t k = 0; k < L; ++k) {
    for (std::int64_t j = 0; j < L; ++j) {
      for (std::int64_t i = 0; i < L; ++i) {
        const auto lin = static_cast<std::size_t>(
            gs::linear_index({i, j, k}, shape));
        ASSERT_DOUBLE_EQ(full[lin], cell_value({i, j, k}, shape, 0));
      }
    }
  }
  fs::remove_all(path);
}

}  // namespace
