// Tests for gs::rpc — the real-socket serving layer. The wire codecs
// must round-trip every svc type bitwise, framing must reject torn and
// corrupted frames, a loopback server must answer byte-for-byte what the
// in-process service answers (TCP and Unix sockets), request-id
// multiplexing must survive pipelining, injected transport faults must
// be absorbed by client retries and counted by the server, and the live
// subscription channel must deliver in order, drop (never stall) on
// slow consumers, and fail producers cleanly at shutdown.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "bp/stream.h"
#include "bp/writer.h"
#include "fault/fault.h"
#include "grid/decomp.h"
#include "mpi/runtime.h"
#include "rpc/client.h"
#include "rpc/pool.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "svc/service.h"

namespace {

namespace fs = std::filesystem;
using gs::Box3;
using gs::Decomposition;
using gs::Index3;
using namespace gs::rpc;
namespace svc = gs::svc;

constexpr std::int64_t kL = 16;
constexpr int kSteps = 3;

std::string temp_path(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return (fs::path(testing::TempDir()) / (name + "." + pid)).string();
}

double cell_value(const Index3& g, const Index3& shape, std::int64_t step) {
  return static_cast<double>(gs::linear_index(g, shape)) +
         1e6 * static_cast<double>(step);
}

/// Writes kSteps of L^3 "U" and "V" with 4 ranks; returns the path.
std::string write_dataset(const std::string& name) {
  const std::string path = temp_path(name) + ".bp";
  fs::remove_all(path);
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(kL, world.size());
    const Box3 box = d.local_box(world.rank());
    const Index3 shape{kL, kL, kL};
    gs::bp::Writer w(path, world, 2);
    for (int s = 0; s < kSteps; ++s) {
      std::vector<double> block(static_cast<std::size_t>(box.volume()));
      std::size_t n = 0;
      for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
        for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
          for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
            block[n++] = cell_value({i, j, k}, shape, s);
          }
        }
      }
      w.begin_step();
      w.put("U", shape, box, block);
      w.put("V", shape, box, block);
      w.put_scalar("step", 10 * s);
      w.end_step();
    }
    w.close();
  });
  return path;
}

const std::string& dataset() {
  static const std::string path = write_dataset("rpc_shared");
  return path;
}

/// A connected AF_UNIX socket pair wrapped in rpc::Socket, for driving
/// the framing layer without a server.
struct SocketPair {
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
  Socket a, b;
};

svc::Request stats_request(const std::string& var, std::int64_t step) {
  svc::Request request;
  request.body = svc::FieldStatsQ{var, step};
  return request;
}

// ---- wire codecs ---------------------------------------------------------

TEST(RpcWire, RequestRoundTripsEveryVerb) {
  const Box3 box{{1, 2, 3}, {4, 5, 6}};
  const std::vector<svc::QueryBody> bodies = {
      svc::ListVariablesQ{},
      svc::FieldStatsQ{"U", 2},
      svc::HistogramQ{"V", 1, 32},
      svc::Slice2DQ{"U", 0, 2, 7},
      svc::ReadBoxQ{"V", 1, box},
  };
  for (const auto& body : bodies) {
    svc::Request request;
    request.body = body;
    request.timeout_seconds = 1.5;
    const auto bytes = encode_request(request);
    const svc::Request back = decode_request(bytes);
    EXPECT_EQ(back.timeout_seconds, 1.5);
    EXPECT_EQ(back.body.index(), body.index());
    // Re-encoding the decoded request must reproduce the exact bytes.
    EXPECT_EQ(encode_request(back), bytes);
  }
}

TEST(RpcWire, ResponseRoundTripIsBitwise) {
  svc::Response response;
  response.id = 42;  // NOT on the wire; the frame header carries it
  response.verb = svc::Verb::slice2d;
  response.status = svc::Status{svc::StatusCode::ok, ""};
  svc::Slice2DR body;
  body.slice.nx = 2;
  body.slice.ny = 3;
  body.slice.values = {1.0, -2.5, 3.25, 0.0, 1e-300, 6.0};
  body.slice.min = -2.5;
  body.slice.max = 6.0;
  response.body = body;
  response.degraded = true;
  response.bad_blocks = 2;
  response.exec_seconds = 0.125;
  response.cache_hits = 7;

  const auto bytes = encode_response(response);
  svc::Response back = decode_response(bytes);
  EXPECT_EQ(back.id, 0u) << "decoder must leave id for the caller";
  back.id = response.id;
  EXPECT_EQ(encode_response(back), bytes);
  EXPECT_EQ(encode_answer_identity(back), encode_answer_identity(response));
  const auto& slice = std::get<svc::Slice2DR>(back.body).slice;
  EXPECT_EQ(slice.values, body.slice.values);
}

TEST(RpcWire, AnswerIdentityIgnoresTimingsButNotBody) {
  svc::Response a;
  a.verb = svc::Verb::field_stats;
  a.status = svc::Status{svc::StatusCode::ok, ""};
  a.body = svc::FieldStatsR{{10, -1.0, 2.0, 0.5, 0.1}};
  svc::Response b = a;
  b.exec_seconds = 99.0;
  b.cache_hits = 123;
  EXPECT_EQ(encode_answer_identity(a), encode_answer_identity(b));
  std::get<svc::FieldStatsR>(b.body).stats.mean = 0.6;
  EXPECT_NE(encode_answer_identity(a), encode_answer_identity(b));
}

TEST(RpcWire, TruncatedPayloadThrowsParseError) {
  const auto bytes = encode_request(stats_request("U", 1));
  for (const std::size_t keep : {std::size_t{0}, bytes.size() / 2}) {
    EXPECT_THROW(
        decode_request(std::span<const std::byte>(bytes.data(), keep)),
        gs::ParseError);
  }
}

TEST(RpcWire, StreamStepRoundTrips) {
  gs::bp::StreamStep step;
  step.sequence = 7;
  step.scalars["step"] = 70;
  gs::bp::StreamStep::ArrayVar var;
  var.shape = {4, 4, 4};
  var.blocks.push_back({1, Box3{{0, 0, 0}, {4, 4, 2}}, {1.0, 2.0, 3.0}});
  var.blocks.push_back({2, Box3{{0, 0, 2}, {4, 4, 2}}, {-4.0, 5.5}});
  step.arrays["U"] = var;

  const auto bytes = encode_stream_step(step);
  const gs::bp::StreamStep back = decode_stream_step(bytes);
  EXPECT_EQ(back.sequence, 7);
  EXPECT_EQ(back.scalars.at("step"), 70);
  ASSERT_EQ(back.arrays.at("U").blocks.size(), 2u);
  EXPECT_EQ(back.arrays.at("U").blocks[1].data,
            std::vector<double>({-4.0, 5.5}));
  EXPECT_EQ(encode_stream_step(back), bytes);
}

TEST(RpcWire, FramesCarryTypeIdAndPayload) {
  SocketPair pair;
  Frame frame;
  frame.type = FrameType::request;
  frame.id = 0xDEADBEEFCAFEull;
  frame.payload = encode_request(stats_request("U", 0));
  const std::size_t wire_bytes = send_frame(pair.a, frame, 1000);
  EXPECT_EQ(wire_bytes, kHeaderBytes + frame.payload.size());

  const auto got = recv_frame(pair.b, 1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, FrameType::request);
  EXPECT_EQ(got->id, frame.id);
  EXPECT_EQ(got->payload, frame.payload);

  pair.a.close();
  EXPECT_FALSE(recv_frame(pair.b, 1000).has_value()) << "clean EOF";
}

TEST(RpcWire, BadMagicAndTornFramesRejected) {
  {
    SocketPair pair;
    std::vector<std::byte> junk(kHeaderBytes, std::byte{0x5A});
    pair.a.write_all(junk, 1000);
    EXPECT_THROW(recv_frame(pair.b, 1000), gs::IoError);
  }
  {
    SocketPair pair;
    Frame frame;
    frame.type = FrameType::stats_reply;
    frame.payload = encode_text("{}");
    // A fail at rpc.write lands between header and payload: the peer
    // sees a torn frame (header promises bytes that never arrive).
    gs::fault::Plan plan;
    plan.fail_at("rpc.write", 0);
    gs::fault::ScopedPlan scoped(plan);
    EXPECT_THROW(send_frame(pair.a, frame, 1000), gs::fault::InjectedFault);
    pair.a.close();
    EXPECT_THROW(recv_frame(pair.b, 1000), gs::IoError);
  }
}

TEST(RpcWire, CorruptedPayloadFailsCrc) {
  SocketPair pair;
  Frame frame;
  frame.type = FrameType::stats_reply;
  frame.payload = encode_text("the payload the CRC signed");
  gs::fault::Plan plan;
  plan.corrupt_at("rpc.frame_corrupt", 0, /*byte_offset=*/3);
  gs::fault::ScopedPlan scoped(plan);
  send_frame(pair.a, frame, 1000);
  EXPECT_THROW(recv_frame(pair.b, 1000), CrcError);
}

TEST(RpcWire, OversizedClientFrameRejectedBeforePayloadArrives) {
  // A header-only attack: 24 bytes promising a huge subscribe payload
  // must be rejected up front (per-type cap), not buffered for 1 GiB.
  SocketPair pair;
  ByteWriter header;
  header.u32(kMagic);
  header.u16(kVersion);
  header.u16(static_cast<std::uint16_t>(FrameType::subscribe));
  header.u64(7);
  header.u32(1u << 20);  // payload_len far above the subscribe cap
  header.u32(0);         // crc (never checked: rejected earlier)
  pair.a.write_all(header.bytes(), 1000);
  EXPECT_THROW(recv_frame(pair.b, 1000), gs::IoError);
}

TEST(RpcWire, PerTypeCapsAdmitRealTrafficAndBoundControlFrames) {
  EXPECT_GE(max_payload_of(FrameType::request), 1u << 16);
  EXPECT_LE(max_payload_of(FrameType::subscribe), 1u << 16);
  EXPECT_LE(max_payload_of(FrameType::credit), 1u << 16);
  EXPECT_LE(max_payload_of(FrameType::ping), 1u << 16);
  EXPECT_GE(max_payload_of(FrameType::response), kMaxPayload - 1);
  EXPECT_GE(max_payload_of(FrameType::stream_step), kMaxPayload - 1);
}

TEST(RpcSocket, ZeroTimeoutWaitReadablePollsWithoutBlocking) {
  SocketPair pair;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(pair.b.wait_readable(0));   // nothing pending: immediate no
  EXPECT_FALSE(pair.b.wait_readable(-5));  // negative behaves the same
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(2)) << "zero-timeout poll blocked";

  const std::byte one[1] = {std::byte{42}};
  pair.a.write_all(one, 1000);
  EXPECT_TRUE(pair.b.wait_readable(0));  // pending data visible at once
}

TEST(RpcSocket, ClosedSocketOperationsThrowIoError) {
  SocketPair pair;
  pair.a.close();
  const std::byte one[1] = {std::byte{42}};
  EXPECT_THROW(pair.a.write_all(one, 100), gs::IoError);
  EXPECT_THROW(pair.a.wait_readable(100), gs::IoError);
  std::byte buf[1];
  EXPECT_THROW(pair.a.read_exact(buf, 100), gs::IoError);
}

// ---- loopback serving ----------------------------------------------------

/// Compares every verb answered remotely against the in-process service,
/// by canonical answer-identity bytes (verb + status + body).
void expect_bitwise_identical(const std::string& listen) {
  gs::svc::Service service(dataset());
  ServerConfig config;
  config.listen = listen;
  Server server(service, config);
  Client remote(server.endpoint());

  const Box3 box{{1, 1, 1}, {6, 5, 4}};
  const std::vector<std::pair<const char*, svc::QueryBody>> queries = {
      {"ls", svc::ListVariablesQ{}},
      {"stats0", svc::FieldStatsQ{"U", 0}},
      {"stats2", svc::FieldStatsQ{"U", 2}},
      {"hist", svc::HistogramQ{"V", 1, 16}},
      {"slice", svc::Slice2DQ{"U", 2, 2, 8}},
      {"read", svc::ReadBoxQ{"V", 1, box}},
  };
  for (const auto& [what, body] : queries) {
    svc::Request request;
    request.body = body;
    const svc::Response via_wire = remote.call(request);
    const svc::Response in_process = service.call(request);
    ASSERT_TRUE(via_wire.status.ok()) << via_wire.status.message;
    EXPECT_EQ(encode_answer_identity(via_wire),
              encode_answer_identity(in_process))
        << what << " over " << listen;
  }
  server.shutdown();
}

TEST(RpcServer, TcpAnswersAreBitwiseIdentical) {
  expect_bitwise_identical("127.0.0.1:0");
}

TEST(RpcServer, UnixSocketAnswersAreBitwiseIdentical) {
  expect_bitwise_identical("unix:" + temp_path("rpc_eq.sock"));
}

TEST(RpcServer, ErrorStatusesCrossTheWire) {
  gs::svc::Service service(dataset());
  Server server(service);
  Client client(server.endpoint());

  const auto bad = client.field_stats("NO_SUCH_VAR", 0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code, svc::StatusCode::bad_request);
  EXPECT_FALSE(bad.status().message.empty());

  ClientConfig expired_config;
  expired_config.default_timeout_seconds = -1.0;  // already expired
  Client expired(server.endpoint(), expired_config);
  const auto late = expired.field_stats("U", 0);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code, svc::StatusCode::deadline_exceeded);
  server.shutdown();
}

TEST(RpcServer, PipelinedRequestsMultiplexById) {
  gs::svc::Service service(dataset());
  Server server(service);
  Socket sock = dial(server.endpoint(), 2000);

  constexpr std::uint64_t kFirstId = 100;
  constexpr int kPipelined = 12;
  for (int i = 0; i < kPipelined; ++i) {
    Frame frame;
    frame.type = FrameType::request;
    frame.id = kFirstId + static_cast<std::uint64_t>(i);
    frame.payload =
        encode_request(stats_request(i % 2 ? "U" : "V", i % kSteps));
    send_frame(sock, frame, 2000);
  }
  std::vector<bool> seen(kPipelined, false);
  for (int i = 0; i < kPipelined; ++i) {
    const auto reply = recv_frame(sock, 5000);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::response);
    ASSERT_GE(reply->id, kFirstId);
    const auto slot = static_cast<std::size_t>(reply->id - kFirstId);
    ASSERT_LT(slot, seen.size());
    EXPECT_FALSE(seen[slot]) << "duplicate response id";
    seen[slot] = true;
    const svc::Response response = decode_response(reply->payload);
    EXPECT_TRUE(response.status.ok()) << response.status.message;
  }
  sock.close();
  server.shutdown();
  EXPECT_EQ(server.stats().responses, static_cast<std::uint64_t>(kPipelined));
}

TEST(RpcServer, ConnectionLimitRejectsWithReason) {
  gs::svc::Service service(dataset());
  ServerConfig config;
  config.max_connections = 1;
  Server server(service, config);

  Client first(server.endpoint());
  first.ping();  // occupy the only slot

  Socket second = dial(server.endpoint(), 2000);
  const auto reply = recv_frame(second, 5000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::error_reply);
  EXPECT_NE(decode_text(reply->payload).find("busy"), std::string::npos);

  first.disconnect();
  server.shutdown();
  EXPECT_GE(server.stats().rejected_capacity, 1u);
}

TEST(RpcServer, StatsRpcReportsTransportAndService) {
  gs::svc::Service service(dataset());
  Server server(service);
  Client client(server.endpoint());
  ASSERT_TRUE(client.field_stats("U", 0).ok());

  const gs::json::Value doc = client.server_stats();
  EXPECT_EQ(doc.at("dataset").as_string(), dataset());
  EXPECT_EQ(doc.at("endpoint").as_string(), server.endpoint().str());
  const auto& rpc = doc.at("rpc");
  EXPECT_GE(rpc.at("requests").as_int(), 1);
  EXPECT_GE(rpc.at("latency_count").as_int(), 1);
  EXPECT_GE(rpc.at("latency_p99").as_double(),
            rpc.at("latency_p50").as_double());
  EXPECT_GE(doc.at("service").at("completed_ok").as_int(), 1);
  server.shutdown();
}

TEST(RpcServer, LoadSignalsReportQueueInflightAndDecayedRate) {
  gs::svc::Service service(dataset());
  Server server(service);
  Client client(server.endpoint());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.field_stats("U", 0).ok());
  }

  // The PR 10 load signals the resharding controller polls: admission
  // queue depth, settled in-flight count, and a decayed request rate
  // that must still be warm right after a burst.
  const auto stats = server.stats();
  EXPECT_GE(stats.requests, 8u);
  EXPECT_EQ(stats.inflight, 0u)
      << "every answered request must settle its in-flight count";
  EXPECT_GT(stats.rate_rps, 0.0)
      << "the decayed rate must reflect the burst that just finished";

  // The same three fields ride the stats RPC document (append-only JSON:
  // existing consumers keep working, the collector reads the new keys).
  const gs::json::Value doc = client.server_stats();
  const auto& rpc = doc.at("rpc");
  EXPECT_EQ(rpc.at("queue_depth").as_int(), 0);
  EXPECT_EQ(rpc.at("inflight").as_int(), 0);
  EXPECT_GT(rpc.at("rate_rps").as_double(), 0.0);
  // The serving epoch rides along too (0 = unsharded standalone daemon).
  EXPECT_EQ(doc.at("epoch").as_int(), 0);
  server.shutdown();
}

TEST(RpcServer, ShutdownDrainsInFlightRequests) {
  std::atomic<bool> release{false};
  gs::svc::ServiceConfig svc_config;
  svc_config.threads = 1;
  svc_config.before_execute = [&](const svc::Request&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  gs::svc::Service service(dataset(), std::move(svc_config));
  Server server(service);

  Client client(server.endpoint());
  std::optional<svc::Expected<svc::FieldStatsR>> result;
  std::thread caller([&] { result = client.field_stats("U", 1); });
  // Wait until the request is parked inside the service worker.
  while (service.metrics().submitted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread stopper([&] { server.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release = true;
  stopper.join();
  caller.join();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok()) << "in-flight request dropped at shutdown: "
                            << result->status().message;
}

// ---- injected transport faults ------------------------------------------

TEST(RpcFault, CorruptFrameDetectedCountedRetried) {
  gs::svc::Service service(dataset());
  Server server(service);
  Client client(server.endpoint());
  client.ping();  // establish the connection before arming the plan

  gs::fault::Plan plan;
  // Op 0 is the client's next request frame: it reaches the server with
  // a flipped payload byte, the server detects the CRC mismatch and
  // drops the connection, and the client's retry loop reconnects.
  plan.corrupt_at("rpc.frame_corrupt", 0, /*byte_offset=*/5);
  gs::fault::ScopedPlan scoped(plan);

  const auto r = client.field_stats("U", 0);
  ASSERT_TRUE(r.ok()) << r.status().message;
  EXPECT_GE(server.stats().crc_errors, 1u);
  server.shutdown();
}

TEST(RpcFault, TornServerWriteIsRetriedByClient) {
  gs::svc::Service service(dataset());
  Server server(service);
  Client client(server.endpoint());
  client.ping();

  gs::fault::Plan plan;
  // Op 0: the client's request goes out intact. Op 1: the server's
  // response tears between header and payload; the worker drops the
  // connection and the client reconnects and retries.
  plan.fail_at("rpc.write", 1);
  gs::fault::ScopedPlan scoped(plan);

  const auto r = client.field_stats("V", 1);
  ASSERT_TRUE(r.ok()) << r.status().message;
  EXPECT_GE(server.stats().io_errors, 1u);
  server.shutdown();
}

TEST(RpcFault, KilledConnectionIsCountedAndSurvived) {
  gs::svc::Service service(dataset());
  Server server(service);

  gs::fault::Plan plan;
  plan.kill_at("rpc.accept", 0);  // first accepted connection dies
  gs::fault::ScopedPlan scoped(plan);

  Client client(server.endpoint());
  client.ping();  // first dial is killed server-side; the retry succeeds
  EXPECT_GE(server.stats().killed_connections, 1u);
  server.shutdown();
}

// ---- live subscriptions --------------------------------------------------

gs::bp::StreamStep make_step(std::int64_t sequence) {
  gs::bp::StreamStep step;
  step.sequence = sequence;
  step.scalars["step"] = sequence * 10;
  gs::bp::StreamStep::ArrayVar var;
  var.shape = {2, 2, 1};
  var.blocks.push_back({0, Box3{{0, 0, 0}, {2, 2, 1}},
                        {0.0 + static_cast<double>(sequence), 1.0, 2.0, 3.0}});
  step.arrays["U"] = var;
  return step;
}

TEST(RpcStream, SubscriptionDeliversStepsInOrder) {
  gs::svc::Service service(dataset());
  gs::bp::Stream stream(4);
  Server server(service, {}, &stream);
  Client client(server.endpoint());
  client.subscribe(/*credits=*/8);

  constexpr std::int64_t kPushed = 5;
  std::thread producer([&] {
    for (std::int64_t s = 0; s < kPushed; ++s) stream.push(make_step(s));
    stream.close();
  });

  std::int64_t expected = 0;
  while (const auto step = client.next_step(10000)) {
    EXPECT_EQ(step->sequence, expected);
    EXPECT_EQ(step->scalars.at("step"), expected * 10);
    EXPECT_EQ(step->arrays.at("U").blocks[0].data[0],
              static_cast<double>(expected));
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kPushed);
  EXPECT_EQ(client.gaps_detected(), 0u);
  EXPECT_EQ(client.stream_end().dropped, 0u);
  EXPECT_EQ(client.stream_end().reason, "end of stream");
  server.shutdown();
}

TEST(RpcStream, SlowConsumerDropsStepsInsteadOfStalling) {
  gs::svc::Service service(dataset());
  gs::bp::Stream stream(2);
  Server server(service, {}, &stream);
  Client client(server.endpoint());
  client.subscribe(/*credits=*/1);

  constexpr std::int64_t kPushed = 6;
  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    for (std::int64_t s = 0; s < kPushed; ++s) stream.push(make_step(s));
    stream.close();
    producer_done = true;
  });
  // The client reads nothing yet; with one credit the bridge delivers
  // one step and must DROP the rest — the producer never blocks on a
  // lagging consumer.
  producer.join();
  EXPECT_TRUE(producer_done.load());

  std::uint64_t received = 0;
  while (client.next_step(10000)) ++received;
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(client.stream_end().dropped,
            static_cast<std::uint64_t>(kPushed) - received);
  const auto stats = server.stats();
  EXPECT_EQ(stats.steps_streamed, received);
  EXPECT_EQ(stats.steps_dropped,
            static_cast<std::uint64_t>(kPushed) - received);
  server.shutdown();
}

// ---- tenant tag on the wire ----------------------------------------------

TEST(RpcWire, TenantTagRoundTripsAndVersionOneFramesStillDecode) {
  svc::Request request = stats_request("U", 1);
  request.tenant = "alice";
  const svc::Request back = decode_request(encode_request(request));
  EXPECT_EQ(back.tenant, "alice");
  ASSERT_TRUE(std::holds_alternative<svc::FieldStatsQ>(back.body));
  EXPECT_EQ(std::get<svc::FieldStatsQ>(back.body).variable, "U");

  // A frame from a pre-tenant peer simply ends earlier; the trailer is
  // append-only and its absence means "no tenant".
  auto bytes = encode_request(stats_request("U", 1));
  ASSERT_GE(bytes.size(), 1u);
  bytes.pop_back();  // strip the tenant-presence flag
  EXPECT_TRUE(decode_request(bytes).tenant.empty());
}

// ---- connection pool -----------------------------------------------------

TEST(RpcClientPool, ConcurrentLeaseReturnDiscardNeverDoubleLeases) {
  gs::svc::Service service(dataset());
  Server server(service);
  ClientPool pool(server.endpoint(), ClientConfig{}, /*max_idle=*/4);

  constexpr int kThreads = 8;
  constexpr int kIters = 24;
  std::mutex mu;
  std::set<Client*> leased;  // clients currently out on lease
  std::atomic<int> ok{0};
  std::atomic<int> discards{0};
  std::atomic<bool> double_lease{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        auto lease = pool.acquire();
        {
          const std::lock_guard<std::mutex> lock(mu);
          // The same Client handed to two leases at once would insert a
          // duplicate here.
          if (!leased.insert(&*lease).second) double_lease = true;
        }
        if (lease->field_stats("U", i % kSteps).ok()) ++ok;
        if ((t + i) % 5 == 0) {
          lease.discard();  // suspect connection: must not be pooled
          ++discards;
        }
        {
          const std::lock_guard<std::mutex> lock(mu);
          leased.erase(&*lease);
        }
        // ~Lease here: give_back happens-after the erase above, so a
        // recycled pointer can never look double-leased.
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_FALSE(double_lease.load());
  EXPECT_EQ(ok.load(), kThreads * kIters);
  EXPECT_TRUE(leased.empty());

  const auto st = pool.stats();
  // Every acquire was either a fresh dial or an idle-list pop, and every
  // discard really dropped its client (discarded clients are the only
  // ones that leave the pool besides the max_idle overflow trim).
  EXPECT_EQ(st.created + st.reused,
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(st.discarded, static_cast<std::uint64_t>(discards.load()));
  EXPECT_GT(st.reused, 0u);
  EXPECT_LE(st.idle, 4u);

  // The pool still serves healthy connections after all that churn.
  auto lease = pool.acquire();
  EXPECT_TRUE(lease->field_stats("V", 0).ok());
  server.shutdown();
}

TEST(RpcClientPool, RetiredPoolDiscardsEveryLeaseAndStillDialsFresh) {
  gs::svc::Service service(dataset());
  Server server(service);
  ClientPool pool(server.endpoint(), ClientConfig{}, /*max_idle=*/4);

  {
    auto lease = pool.acquire();
    lease->ping();
  }
  EXPECT_EQ(pool.stats().idle, 1u);

  {
    auto held = pool.acquire();  // in flight when the epoch retires
    held->ping();
    pool.retire();
    EXPECT_TRUE(pool.retired());
    EXPECT_EQ(pool.stats().idle, 0u) << "idle connections close immediately";
    // The lease keeps working mid-flip — the query pinned to the old
    // epoch completes on its old connection...
    EXPECT_TRUE(held->field_stats("U", 0).ok());
  }
  // ...but on return it is DISCARDED, never pooled: a connection leased
  // under a retired epoch can never resurface to serve the next one.
  EXPECT_EQ(pool.stats().idle, 0u);
  EXPECT_EQ(pool.stats().discarded, 1u);

  // acquire() still works (each call dials fresh) so mid-flip failover
  // keeps its transport; the fresh connection is discarded on return too.
  {
    auto fresh = pool.acquire();
    EXPECT_TRUE(fresh->field_stats("V", 0).ok());
  }
  EXPECT_EQ(pool.stats().idle, 0u);
  EXPECT_EQ(pool.stats().discarded, 2u);
  server.shutdown();
}

// ---- reload_map admin RPC ------------------------------------------------

TEST(RpcAdmin, ReloadMapRequiresTokenAndHook) {
  gs::svc::Service service(dataset());
  // A refusal surfaces as IoError, which the client's transport retry
  // loop would re-send; one attempt keeps the refusal counters exact.
  ClientConfig once;
  once.retries = 1;

  // No admin token configured: the verb is disabled outright.
  {
    Server server(service);
    Client client(server.endpoint(), once);
    EXPECT_THROW(client.reload_map("any"), gs::IoError);
    EXPECT_EQ(server.stats().reloads_refused, 1u);
    EXPECT_EQ(server.stats().reloads, 0u);
    server.shutdown();
  }

  std::atomic<int> hook_calls{0};
  std::atomic<bool> hook_throws{false};
  ServerConfig config;
  config.admin_token = "sesame";
  config.reload_hook = [&]() -> gs::json::Value {
    ++hook_calls;
    if (hook_throws.load()) {
      GS_THROW(gs::Error, "candidate map rejected");
    }
    gs::json::Object o;
    o["epoch_to"] = gs::json::Value(std::int64_t{2});
    return gs::json::Value(std::move(o));
  };
  Server server(service, config);
  Client client(server.endpoint(), once);

  // Wrong token: refused BEFORE the hook runs.
  EXPECT_THROW(client.reload_map("wrong"), gs::IoError);
  EXPECT_EQ(hook_calls.load(), 0);
  EXPECT_EQ(server.stats().reloads_refused, 1u);

  // Right token: the hook's JSON report comes back verbatim.
  const gs::json::Value report = client.reload_map("sesame");
  EXPECT_EQ(report.at("epoch_to").as_int(), 2);
  EXPECT_EQ(hook_calls.load(), 1);
  EXPECT_EQ(server.stats().reloads, 1u);

  // A hook that throws (map rejected) surfaces the reason to the admin
  // and counts as refused — the old epoch keeps serving.
  hook_throws = true;
  try {
    client.reload_map("sesame");
    FAIL() << "a rejected reload must surface as an error";
  } catch (const gs::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("rejected"), std::string::npos);
  }
  EXPECT_EQ(server.stats().reloads_refused, 2u);
  EXPECT_EQ(server.stats().reloads, 1u);

  // The connection survives a refusal: normal queries keep flowing.
  EXPECT_TRUE(client.field_stats("U", 0).ok());
  server.shutdown();
}

TEST(RpcStream, SubscribeWithoutLiveStreamIsRefused) {
  gs::svc::Service service(dataset());
  Server server(service);  // no live stream
  Client client(server.endpoint());
  EXPECT_THROW(client.subscribe(), gs::IoError);
  server.shutdown();
}

TEST(RpcStream, ShutdownAbandonsStreamSoProducersFailCleanly) {
  gs::svc::Service service(dataset());
  gs::bp::Stream stream(1);
  auto server = std::make_unique<Server>(service, ServerConfig{}, &stream);

  std::atomic<bool> caught{false};
  std::thread producer([&] {
    try {
      for (std::int64_t s = 0;; ++s) stream.push(make_step(s));
    } catch (const gs::IoError&) {
      caught = true;  // "stream abandoned: ..." — the clean failure mode
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->shutdown();
  producer.join();
  EXPECT_TRUE(caught.load());
  EXPECT_TRUE(stream.abandoned());
}

}  // namespace
