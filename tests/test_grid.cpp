// Tests for src/grid: index math, boxes, decomposition properties,
// ghost-cell fields, face descriptors, pack/unpack inverses.
#include <gtest/gtest.h>

#include <set>

#include "grid/box.h"
#include "grid/decomp.h"
#include "grid/field.h"
#include "grid/halo.h"

namespace {

using gs::balanced_dims;
using gs::Box3;
using gs::Decomposition;
using gs::Face;
using gs::Field3;
using gs::Index3;

// ---------------------------------------------------------------- box

TEST(Index3, LinearIndexIsColumnMajor) {
  const Index3 extent{4, 3, 2};
  // i fastest: (1,0,0) -> 1; (0,1,0) -> 4; (0,0,1) -> 12.
  EXPECT_EQ(gs::linear_index({1, 0, 0}, extent), 1);
  EXPECT_EQ(gs::linear_index({0, 1, 0}, extent), 4);
  EXPECT_EQ(gs::linear_index({0, 0, 1}, extent), 12);
  EXPECT_EQ(gs::linear_index({3, 2, 1}, extent), 23);
}

TEST(Index3, DelinearizeInvertsLinearIndex) {
  const Index3 extent{5, 7, 3};
  for (std::int64_t lin = 0; lin < extent.volume(); ++lin) {
    EXPECT_EQ(gs::linear_index(gs::delinearize(lin, extent), extent), lin);
  }
}

TEST(Box3, ContainsAndVolume) {
  const Box3 b{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(b.volume(), 120);
  EXPECT_TRUE(b.contains({1, 2, 3}));
  EXPECT_TRUE(b.contains({4, 6, 8}));
  EXPECT_FALSE(b.contains({5, 2, 3}));
  EXPECT_FALSE(b.contains({0, 2, 3}));
  EXPECT_EQ(b.end(), (Index3{5, 7, 9}));
}

TEST(Box3, IntersectOverlapping) {
  const Box3 a{{0, 0, 0}, {10, 10, 10}};
  const Box3 b{{5, 5, 5}, {10, 10, 10}};
  const Box3 c = a.intersect(b);
  EXPECT_EQ(c.start, (Index3{5, 5, 5}));
  EXPECT_EQ(c.count, (Index3{5, 5, 5}));
  // Intersection is commutative.
  EXPECT_EQ(b.intersect(a), c);
}

TEST(Box3, IntersectDisjointIsEmpty) {
  const Box3 a{{0, 0, 0}, {2, 2, 2}};
  const Box3 b{{5, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_EQ(a.intersect(b).volume(), 0);
}

TEST(Box3, IntersectTouchingFacesIsEmpty) {
  const Box3 a{{0, 0, 0}, {2, 2, 2}};
  const Box3 b{{2, 0, 0}, {2, 2, 2}};  // shares the x=2 plane only
  EXPECT_TRUE(a.intersect(b).empty());
}

// -------------------------------------------------------------- decomp

TEST(BalancedDims, ExactCubes) {
  EXPECT_EQ(balanced_dims(1), (Index3{1, 1, 1}));
  EXPECT_EQ(balanced_dims(8), (Index3{2, 2, 2}));
  EXPECT_EQ(balanced_dims(64), (Index3{4, 4, 4}));
  EXPECT_EQ(balanced_dims(512), (Index3{8, 8, 8}));
  EXPECT_EQ(balanced_dims(4096), (Index3{16, 16, 16}));
  EXPECT_EQ(balanced_dims(32768), (Index3{32, 32, 32}));
}

TEST(BalancedDims, ProductAlwaysMatches) {
  for (std::int64_t n = 1; n <= 200; ++n) {
    const Index3 d = balanced_dims(n);
    EXPECT_EQ(d.volume(), n) << "n=" << n;
    EXPECT_GE(d.i, d.j);
    EXPECT_GE(d.j, d.k);
  }
}

TEST(BalancedDims, PrimesDegradeGracefully) {
  EXPECT_EQ(balanced_dims(7), (Index3{7, 1, 1}));
  EXPECT_EQ(balanced_dims(6), (Index3{3, 2, 1}));
  EXPECT_EQ(balanced_dims(12), (Index3{3, 2, 2}));
}

// Property: a decomposition covers the global box exactly once.
class DecompositionCoverage : public testing::TestWithParam<std::int64_t> {};

TEST_P(DecompositionCoverage, BoxesPartitionTheGlobalGrid) {
  const std::int64_t nranks = GetParam();
  const std::int64_t L = 12;
  const Decomposition d = Decomposition::cube(L, nranks);

  std::int64_t total = 0;
  std::set<std::int64_t> seen;  // linearized global cells
  for (std::int64_t r = 0; r < nranks; ++r) {
    const Box3 b = d.local_box(r);
    EXPECT_FALSE(b.empty());
    total += b.volume();
    for (std::int64_t k = b.start.k; k < b.end().k; ++k) {
      for (std::int64_t j = b.start.j; j < b.end().j; ++j) {
        for (std::int64_t i = b.start.i; i < b.end().i; ++i) {
          const auto lin = gs::linear_index({i, j, k}, {L, L, L});
          EXPECT_TRUE(seen.insert(lin).second)
              << "cell (" << i << "," << j << "," << k << ") owned twice";
        }
      }
    }
  }
  EXPECT_EQ(total, L * L * L);
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), L * L * L);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DecompositionCoverage,
                         testing::Values<std::int64_t>(1, 2, 3, 4, 5, 6, 7, 8,
                                                       12, 27, 64));

TEST(Decomposition, BlockSizesDifferByAtMostOne) {
  // 13 cells over 4 procs per axis: blocks of 4,3,3,3.
  const Decomposition d({13, 13, 13}, {4, 4, 4});
  std::int64_t mn = 1 << 30, mx = 0;
  for (std::int64_t r = 0; r < d.nranks(); ++r) {
    const Box3 b = d.local_box(r);
    for (int a = 0; a < 3; ++a) {
      mn = std::min(mn, b.count[a]);
      mx = std::max(mx, b.count[a]);
    }
  }
  EXPECT_EQ(mn, 3);
  EXPECT_EQ(mx, 4);
}

TEST(Decomposition, RankCoordsRoundTrip) {
  const Decomposition d({16, 16, 16}, {4, 2, 2});
  for (std::int64_t r = 0; r < d.nranks(); ++r) {
    EXPECT_EQ(d.coords_to_rank(d.rank_to_coords(r)), r);
  }
}

TEST(Decomposition, NeighborsAreMutual) {
  const Decomposition d({16, 16, 16}, {2, 2, 2});
  for (std::int64_t r = 0; r < d.nranks(); ++r) {
    for (int axis = 0; axis < 3; ++axis) {
      for (const int dir : {-1, +1}) {
        const std::int64_t n = d.neighbor(r, axis, dir);
        if (n >= 0) {
          EXPECT_EQ(d.neighbor(n, axis, -dir), r);
        }
      }
    }
  }
}

TEST(Decomposition, NonPeriodicBoundaryHasNoNeighbor) {
  const Decomposition d({8, 8, 8}, {2, 1, 1});
  EXPECT_EQ(d.neighbor(0, 0, -1), -1);
  EXPECT_EQ(d.neighbor(1, 0, +1), -1);
  EXPECT_EQ(d.neighbor(0, 0, +1), 1);
}

TEST(Decomposition, PeriodicWrapsAround) {
  const Decomposition d({8, 8, 8}, {2, 1, 1});
  EXPECT_EQ(d.neighbor(0, 0, -1, /*periodic=*/true), 1);
  EXPECT_EQ(d.neighbor(1, 0, +1, /*periodic=*/true), 0);
}

TEST(Decomposition, TooSmallGlobalRejected) {
  EXPECT_THROW(Decomposition({2, 8, 8}, {4, 1, 1}), gs::Error);
}

// --------------------------------------------------------------- field

TEST(Field3, AllocatesGhostLayer) {
  const Field3 f({4, 5, 6});
  EXPECT_EQ(f.interior(), (Index3{4, 5, 6}));
  EXPECT_EQ(f.alloc_extent(), (Index3{6, 7, 8}));
  EXPECT_EQ(f.data().size(), 6u * 7u * 8u);
}

TEST(Field3, FillInteriorLeavesGhostsAlone) {
  Field3 f({3, 3, 3}, 9.0);
  f.fill_interior(1.0);
  EXPECT_DOUBLE_EQ(f.at(0, 0, 0), 9.0);   // ghost corner
  EXPECT_DOUBLE_EQ(f.at(1, 1, 1), 1.0);   // interior corner
  EXPECT_DOUBLE_EQ(f.at(3, 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(f.at(4, 2, 2), 9.0);   // ghost face
  EXPECT_DOUBLE_EQ(f.interior_sum(), 27.0);
}

TEST(Field3, InteriorCopyAssignRoundTrip) {
  Field3 f({3, 4, 2});
  int v = 0;
  for (std::int64_t k = 1; k <= 2; ++k) {
    for (std::int64_t j = 1; j <= 4; ++j) {
      for (std::int64_t i = 1; i <= 3; ++i) {
        f.at(i, j, k) = ++v;
      }
    }
  }
  const auto copy = f.interior_copy();
  ASSERT_EQ(copy.size(), 24u);
  // Column-major: first run over i.
  EXPECT_DOUBLE_EQ(copy[0], 1.0);
  EXPECT_DOUBLE_EQ(copy[1], 2.0);
  EXPECT_DOUBLE_EQ(copy[3], 4.0);  // j advanced

  Field3 g({3, 4, 2});
  g.interior_assign(copy);
  for (std::int64_t k = 1; k <= 2; ++k) {
    for (std::int64_t j = 1; j <= 4; ++j) {
      for (std::int64_t i = 1; i <= 3; ++i) {
        EXPECT_DOUBLE_EQ(g.at(i, j, k), f.at(i, j, k));
      }
    }
  }
}

TEST(Field3, MinMaxSum) {
  Field3 f({2, 2, 2});
  f.fill(100.0);  // ghosts too — must not leak into interior stats
  f.fill_interior(2.0);
  f.at(1, 1, 1) = -3.0;
  f.at(2, 2, 2) = 7.0;
  EXPECT_DOUBLE_EQ(f.interior_min(), -3.0);
  EXPECT_DOUBLE_EQ(f.interior_max(), 7.0);
  EXPECT_DOUBLE_EQ(f.interior_sum(), 2.0 * 6 - 3.0 + 7.0);
}

TEST(Field3, CheckedAtThrowsOutOfBounds) {
  Field3 f({2, 2, 2});
  EXPECT_NO_THROW(f.checked_at(0, 0, 0));
  EXPECT_NO_THROW(f.checked_at(3, 3, 3));
  EXPECT_THROW(f.checked_at(4, 0, 0), gs::Error);
  EXPECT_THROW(f.checked_at(-1, 0, 0), gs::Error);
}

TEST(Field3, ZeroExtentRejected) {
  EXPECT_THROW(Field3({0, 2, 2}), gs::Error);
}

TEST(PackBox, PackUnpackInverse) {
  const Index3 extent{5, 4, 3};
  std::vector<double> src(60);
  for (std::size_t n = 0; n < src.size(); ++n) src[n] = static_cast<double>(n);

  const Box3 box{{1, 1, 0}, {3, 2, 3}};
  std::vector<double> packed(static_cast<std::size_t>(box.volume()));
  gs::pack_box(src, extent, box, packed);

  std::vector<double> dst(60, -1.0);
  gs::unpack_box(dst, extent, box, packed);
  for (std::int64_t k = 0; k < 3; ++k) {
    for (std::int64_t j = 0; j < 4; ++j) {
      for (std::int64_t i = 0; i < 5; ++i) {
        const auto lin =
            static_cast<std::size_t>(gs::linear_index({i, j, k}, extent));
        if (box.contains({i, j, k})) {
          EXPECT_DOUBLE_EQ(dst[lin], src[lin]);
        } else {
          EXPECT_DOUBLE_EQ(dst[lin], -1.0);
        }
      }
    }
  }
}

// ---------------------------------------------------------------- halo

TEST(Halo, SendRecvPlanesAreAdjacent) {
  const Index3 interior{4, 5, 6};
  for (const Face& f : gs::all_faces()) {
    const Box3 send = gs::send_plane(interior, f);
    const Box3 recv = gs::recv_plane(interior, f);
    EXPECT_EQ(send.volume(), recv.volume());
    EXPECT_EQ(send.count[f.axis], 1);
    EXPECT_EQ(recv.count[f.axis], 1);
    // Recv plane sits exactly one cell outside the send plane.
    EXPECT_EQ(recv.start[f.axis] - send.start[f.axis], f.side == -1 ? -1 : 1);
    // Other axes span the interior.
    for (int a = 0; a < 3; ++a) {
      if (a == f.axis) continue;
      EXPECT_EQ(send.start[a], 1);
      EXPECT_EQ(send.count[a], interior[a]);
    }
  }
}

TEST(Halo, FaceCellCounts) {
  const Index3 interior{4, 5, 6};
  EXPECT_EQ(gs::face_cells(interior, {0, -1}), 30);  // 5*6
  EXPECT_EQ(gs::face_cells(interior, {1, -1}), 24);  // 4*6
  EXPECT_EQ(gs::face_cells(interior, {2, +1}), 20);  // 4*5
}

TEST(Halo, LowHighPlanesDistinct) {
  const Index3 interior{4, 4, 4};
  EXPECT_EQ(gs::send_plane(interior, {0, -1}).start.i, 1);
  EXPECT_EQ(gs::send_plane(interior, {0, +1}).start.i, 4);
  EXPECT_EQ(gs::recv_plane(interior, {0, -1}).start.i, 0);
  EXPECT_EQ(gs::recv_plane(interior, {0, +1}).start.i, 5);
}

TEST(Halo, TagsUniquePerVariableAndFace) {
  std::set<int> tags;
  for (int var = 0; var < 2; ++var) {
    for (const Face& f : gs::all_faces()) {
      EXPECT_TRUE(tags.insert(gs::face_tag(var, f)).second);
    }
  }
  EXPECT_EQ(tags.size(), 12u);
}

TEST(Halo, OppositeFaceTagsMatchExchangePattern) {
  // A rank sending its low-x face must use the tag its neighbor expects
  // when receiving into the neighbor's high-x ghost: by convention both
  // sides derive the tag from the SENDER's face.
  const Face low{0, -1};
  const Face high{0, +1};
  EXPECT_NE(gs::face_tag(0, low), gs::face_tag(0, high));
}

}  // namespace
