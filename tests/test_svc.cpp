// Tests for gs::svc — the concurrent dataset-analysis service: every
// verb round-trips against direct gs::analysis answers, admission
// control rejects (never blocks) on a full queue, deadlines expire into
// DeadlineExceeded, shutdown drains, the LRU block cache honors its byte
// budget, and cached reads are bitwise-identical to uncached ones.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "analysis/analysis.h"
#include "bp/reader.h"
#include "bp/writer.h"
#include "grid/decomp.h"
#include "mpi/runtime.h"
#include "prof/profiler.h"
#include "svc/cache.h"
#include "svc/service.h"

namespace {

namespace fs = std::filesystem;
using gs::Box3;
using gs::Decomposition;
using gs::Index3;
using namespace gs::svc;

constexpr std::int64_t kL = 16;
constexpr int kSteps = 3;

std::string temp_dataset(const std::string& name) {
  // Per-process suffix: ctest -j runs many test processes concurrently,
  // and Writer truncates its dataset directory — a shared path would race.
  static const std::string pid = std::to_string(::getpid());
  return (fs::path(testing::TempDir()) / (name + "." + pid + ".bp"))
      .string();
}

double cell_value(const Index3& g, const Index3& shape, std::int64_t step) {
  return static_cast<double>(gs::linear_index(g, shape)) +
         1e6 * static_cast<double>(step);
}

/// Writes kSteps of L^3 "U" and "V" with 4 ranks; returns the path.
std::string write_dataset(const std::string& name) {
  const std::string path = temp_dataset(name);
  fs::remove_all(path);
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(kL, world.size());
    const Box3 box = d.local_box(world.rank());
    const Index3 shape{kL, kL, kL};
    gs::bp::Writer w(path, world, 2);
    for (int s = 0; s < kSteps; ++s) {
      std::vector<double> block(static_cast<std::size_t>(box.volume()));
      std::size_t n = 0;
      for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
        for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
          for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
            block[n++] = cell_value({i, j, k}, shape, s);
          }
        }
      }
      std::vector<double> vblock(block.size());
      for (std::size_t m = 0; m < block.size(); ++m) vblock[m] = -block[m];
      w.begin_step();
      w.put("U", shape, box, block);
      w.put("V", shape, box, vblock);
      w.put_scalar("step", 10 * s);
      w.end_step();
    }
    w.close();
  });
  return path;
}

/// Shared dataset for read-only service tests (written once).
const std::string& dataset() {
  static const std::string path = write_dataset("svc_shared");
  return path;
}

// ---- verb round-trips vs direct analysis ---------------------------------

TEST(SvcVerbs, ListVariablesMatchesReader) {
  Service service(dataset());
  Client client(service);
  const auto r = client.list_variables();
  ASSERT_TRUE(r.ok()) << r.status().message;
  const gs::bp::Reader reader(dataset());
  EXPECT_EQ(r.value().n_steps, reader.n_steps());
  const auto names = reader.variable_names();
  ASSERT_EQ(r.value().variables.size(), names.size());
  for (const auto& v : r.value().variables) {
    const auto info = reader.info(v.name);
    EXPECT_EQ(v.type, info.type);
    EXPECT_EQ(v.shape, info.shape);
    EXPECT_EQ(v.steps, info.steps);
    EXPECT_EQ(v.min, info.min);
    EXPECT_EQ(v.max, info.max);
  }
}

TEST(SvcVerbs, FieldStatsMatchesDirectAnalysis) {
  Service service(dataset());
  Client client(service);
  const gs::bp::Reader reader(dataset());
  for (std::int64_t s = 0; s < kSteps; ++s) {
    const auto r = client.field_stats("U", s);
    ASSERT_TRUE(r.ok()) << r.status().message;
    const auto direct =
        gs::analysis::compute_stats(reader.read_full("U", s));
    EXPECT_EQ(r.value().stats.count, direct.count);
    EXPECT_EQ(r.value().stats.min, direct.min);
    EXPECT_EQ(r.value().stats.max, direct.max);
    EXPECT_EQ(r.value().stats.mean, direct.mean);
    EXPECT_EQ(r.value().stats.stddev, direct.stddev);
  }
}

TEST(SvcVerbs, HistogramMatchesDirectAnalysis) {
  Service service(dataset());
  Client client(service);
  const gs::bp::Reader reader(dataset());
  const auto r = client.histogram("V", 1, 16);
  ASSERT_TRUE(r.ok()) << r.status().message;
  const auto direct =
      gs::analysis::field_histogram(reader.read_full("V", 1), 16);
  ASSERT_EQ(r.value().counts.size(), direct.bins());
  EXPECT_EQ(r.value().total, direct.total());
  EXPECT_EQ(r.value().lo, direct.bin_lo(0));
  EXPECT_EQ(r.value().hi, direct.bin_hi(direct.bins() - 1));
  for (std::size_t b = 0; b < direct.bins(); ++b) {
    EXPECT_EQ(r.value().counts[b], direct.count(b)) << "bin " << b;
  }
}

TEST(SvcVerbs, Slice2DMatchesDirectAnalysis) {
  Service service(dataset());
  Client client(service);
  const gs::bp::Reader reader(dataset());
  for (const int axis : {0, 1, 2}) {
    const auto r = client.slice2d("U", 2, axis, kL / 2);
    ASSERT_TRUE(r.ok()) << r.status().message;
    const auto direct =
        gs::analysis::slice_from_reader(reader, "U", 2, axis, kL / 2);
    EXPECT_EQ(r.value().slice.nx, direct.nx);
    EXPECT_EQ(r.value().slice.ny, direct.ny);
    EXPECT_EQ(r.value().slice.min, direct.min);
    EXPECT_EQ(r.value().slice.max, direct.max);
    EXPECT_EQ(r.value().slice.values, direct.values);
  }
}

TEST(SvcVerbs, ReadBoxMatchesReaderBitwise) {
  Service service(dataset());
  Client client(service);
  const gs::bp::Reader reader(dataset());
  const Box3 box{{3, 2, 5}, {7, 9, 6}};
  const auto r = client.read_box("U", 1, box);
  ASSERT_TRUE(r.ok()) << r.status().message;
  EXPECT_EQ(r.value().values, reader.read("U", 1, box));
}

TEST(SvcVerbs, BadInputIsBadRequestNotCrash) {
  Service service(dataset());
  Client client(service);
  EXPECT_EQ(client.field_stats("nope", 0).status().code,
            StatusCode::bad_request);
  EXPECT_EQ(client.field_stats("U", 99).status().code,
            StatusCode::bad_request);
  EXPECT_EQ(client.slice2d("U", 0, 7, 0).status().code,
            StatusCode::bad_request);
  EXPECT_EQ(client.read_box("U", 0, Box3{{0, 0, 0}, {kL + 1, 1, 1}})
                .status()
                .code,
            StatusCode::bad_request);
  const auto m = service.metrics();
  EXPECT_EQ(m.bad_request, 4u);
  EXPECT_EQ(m.submitted, m.accounted());
}

// ---- cache on/off bitwise identity ---------------------------------------

TEST(SvcCacheIdentity, CachedAndUncachedAnswersAreBitwiseIdentical) {
  // mmap off: this test asserts exact BlockCache counters, so every
  // fetch must go through the copying/cached route.
  ServiceConfig cached;
  cached.cache_enabled = true;
  cached.mmap_reads = false;
  ServiceConfig uncached;
  uncached.cache_enabled = false;
  uncached.mmap_reads = false;
  Service s1(dataset(), std::move(cached));
  Service s2(dataset(), std::move(uncached));
  Client c1(s1), c2(s2);
  const Box3 box{{1, 0, 2}, {kL - 1, kL, kL - 3}};
  for (int repeat = 0; repeat < 2; ++repeat) {  // second pass hits cache
    for (std::int64_t s = 0; s < kSteps; ++s) {
      const auto r1 = c1.read_box("U", s, box);
      const auto r2 = c2.read_box("U", s, box);
      ASSERT_TRUE(r1.ok() && r2.ok());
      EXPECT_EQ(r1.value().values, r2.value().values);
      const auto sl1 = c1.slice2d("V", s, 2, 3);
      const auto sl2 = c2.slice2d("V", s, 2, 3);
      ASSERT_TRUE(sl1.ok() && sl2.ok());
      EXPECT_EQ(sl1.value().slice.values, sl2.value().slice.values);
    }
  }
  const auto m1 = s1.metrics();
  const auto m2 = s2.metrics();
  EXPECT_GT(m1.cache.hits, 0u);
  EXPECT_EQ(m2.cache.hits + m2.cache.misses, 0u);
}

// ---- mmap vs copy bitwise identity ----------------------------------------

TEST(SvcMmapIdentity, ZeroCopyAnswersMatchCopyingAnswersOnEveryVerb) {
  ServiceConfig mapped;
  mapped.mmap_reads = true;
  ServiceConfig copying;
  copying.mmap_reads = false;
  Service s1(dataset(), std::move(mapped));
  Service s2(dataset(), std::move(copying));
  Client c1(s1), c2(s2);

  const auto l1 = c1.list_variables();
  const auto l2 = c2.list_variables();
  ASSERT_TRUE(l1.ok() && l2.ok());
  ASSERT_EQ(l1.value().variables.size(), l2.value().variables.size());
  for (std::size_t i = 0; i < l1.value().variables.size(); ++i) {
    EXPECT_EQ(l1.value().variables[i].min, l2.value().variables[i].min);
    EXPECT_EQ(l1.value().variables[i].max, l2.value().variables[i].max);
  }

  const Box3 box{{1, 3, 0}, {kL - 2, kL - 5, kL}};
  for (const std::string var : {"U", "V"}) {
    for (std::int64_t s = 0; s < kSteps; ++s) {
      const auto st1 = c1.field_stats(var, s);
      const auto st2 = c2.field_stats(var, s);
      ASSERT_TRUE(st1.ok() && st2.ok());
      EXPECT_EQ(st1.value().stats.min, st2.value().stats.min);
      EXPECT_EQ(st1.value().stats.max, st2.value().stats.max);
      EXPECT_EQ(st1.value().stats.mean, st2.value().stats.mean);
      EXPECT_EQ(st1.value().stats.stddev, st2.value().stats.stddev);

      const auto h1 = c1.histogram(var, s, 32);
      const auto h2 = c2.histogram(var, s, 32);
      ASSERT_TRUE(h1.ok() && h2.ok());
      EXPECT_EQ(h1.value().lo, h2.value().lo);
      EXPECT_EQ(h1.value().hi, h2.value().hi);
      EXPECT_EQ(h1.value().counts, h2.value().counts);

      const auto sl1 = c1.slice2d(var, s, 1, kL / 3);
      const auto sl2 = c2.slice2d(var, s, 1, kL / 3);
      ASSERT_TRUE(sl1.ok() && sl2.ok());
      EXPECT_EQ(sl1.value().slice.values, sl2.value().slice.values);

      const auto r1 = c1.read_box(var, s, box);
      const auto r2 = c2.read_box(var, s, box);
      ASSERT_TRUE(r1.ok() && r2.ok());
      EXPECT_EQ(r1.value().values, r2.value().values);
    }
  }

  // Both routes account the same scan volume.
  const auto m1 = s1.metrics();
  const auto m2 = s2.metrics();
  EXPECT_GT(m1.bytes_scanned, 0u);
  EXPECT_EQ(m1.bytes_scanned, m2.bytes_scanned);

  // Re-mapping an already-verified block reports as a per-response cache
  // hit (no BlockCache involved): every block of step 0 was CRC-verified
  // by the sweeps above, so a fresh full scan pays no I/O at all.
  const auto again = c1.field_stats("U", 0);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(c1.last_response().cache_hits, 0u);
  EXPECT_EQ(c1.last_response().cache_misses, 0u);
}

TEST(SvcMmapIdentity, PerResponseScanAccountingIsExact) {
  ServiceConfig config;
  config.mmap_reads = true;
  Service service(dataset(), std::move(config));
  Client client(service);
  const auto r = client.field_stats("U", 0);
  ASSERT_TRUE(r.ok());
  const auto& resp = client.last_response();
  // A full-field scan touches every block of the step exactly once.
  EXPECT_EQ(resp.bytes_scanned, sizeof(double) * kL * kL * kL);
  EXPECT_EQ(resp.cache_hits + resp.cache_misses, 4u);  // 4 writer ranks
  EXPECT_GT(resp.exec_seconds, 0.0);
}

// ---- admission control ----------------------------------------------------

TEST(SvcAdmission, FullQueueAnswersServerBusyImmediately) {
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  ServiceConfig config;
  config.threads = 1;
  config.queue_capacity = 2;
  config.before_execute = [&](const Request&) {
    entered.fetch_add(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Service service(dataset(), std::move(config));

  const auto query = [] {
    Request r;
    r.body = FieldStatsQ{"U", 0};
    return r;
  };
  // First request occupies the worker (parked in before_execute)...
  auto f1 = service.submit(query());
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...the next two fill the queue to capacity...
  auto f2 = service.submit(query());
  auto f3 = service.submit(query());
  // ...and the fourth is rejected immediately, without blocking.
  auto f4 = service.submit(query());
  const Response rejected = f4.get();
  EXPECT_EQ(rejected.status.code, StatusCode::server_busy);

  release.store(true);
  EXPECT_EQ(f1.get().status.code, StatusCode::ok);
  EXPECT_EQ(f2.get().status.code, StatusCode::ok);
  EXPECT_EQ(f3.get().status.code, StatusCode::ok);

  const auto m = service.metrics();
  EXPECT_EQ(m.submitted, 4u);
  EXPECT_EQ(m.rejected_busy, 1u);
  EXPECT_EQ(m.completed_ok, 3u);
  EXPECT_EQ(m.submitted, m.accounted());
  EXPECT_EQ(m.max_queue_depth, 2u);
  EXPECT_EQ(m.by_verb_outcome[static_cast<std::size_t>(Verb::field_stats)]
                             [static_cast<std::size_t>(
                                 StatusCode::server_busy)],
            1u);
}

// ---- deadlines ------------------------------------------------------------

TEST(SvcDeadline, ExpiredDeadlineReturnsDeadlineExceeded) {
  Service service(dataset());
  Client client(service, /*default_timeout_seconds=*/-1.0);
  const auto r = client.field_stats("U", 0);
  EXPECT_EQ(r.status().code, StatusCode::deadline_exceeded);
  const auto m = service.metrics();
  EXPECT_EQ(m.deadline_exceeded, 1u);
  EXPECT_EQ(m.submitted, m.accounted());
}

TEST(SvcDeadline, GenerousDeadlineStillCompletes) {
  Service service(dataset());
  Client client(service, /*default_timeout_seconds=*/60.0);
  const auto r = client.field_stats("U", 0);
  ASSERT_TRUE(r.ok()) << r.status().message;
}

// ---- shutdown -------------------------------------------------------------

TEST(SvcShutdown, DrainsQueuedRequestsThenRefusesNewOnes) {
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  ServiceConfig config;
  config.threads = 1;
  config.queue_capacity = 0;
  config.before_execute = [&](const Request&) {
    entered.fetch_add(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Service service(dataset(), std::move(config));

  const auto query = [] {
    Request r;
    r.body = FieldStatsQ{"U", 0};
    return r;
  };
  auto f1 = service.submit(query());
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto f2 = service.submit(query());
  auto f3 = service.submit(query());

  // Shutdown must block until the in-flight and queued requests drain.
  std::thread closer([&] { service.shutdown(); });
  release.store(true);
  closer.join();
  EXPECT_EQ(f1.get().status.code, StatusCode::ok);
  EXPECT_EQ(f2.get().status.code, StatusCode::ok);
  EXPECT_EQ(f3.get().status.code, StatusCode::ok);

  // Post-shutdown submissions resolve immediately with ShuttingDown.
  const Response late = service.call(query());
  EXPECT_EQ(late.status.code, StatusCode::shutting_down);
  const auto m = service.metrics();
  EXPECT_EQ(m.completed_ok, 3u);
  EXPECT_EQ(m.rejected_shutdown, 1u);
  EXPECT_EQ(m.submitted, m.accounted());
}

TEST(SvcShutdown, ShutdownIsIdempotent) {
  Service service(dataset());
  service.shutdown();
  service.shutdown();  // second call is a no-op, not a crash
}

// ---- block cache ----------------------------------------------------------

std::vector<double> make_block(std::size_t doubles, double fill) {
  return std::vector<double>(doubles, fill);
}

TEST(SvcBlockCache, LruRespectsByteBudgetAndEvictsOldest) {
  // Each 128-double block is 1 KiB; budget holds exactly 4 in 1 shard.
  BlockCache cache(4096, /*shards=*/1);
  const auto key = [](int b) {
    return BlockKey{"d.bp", "U", 0, b};
  };
  for (int b = 0; b < 6; ++b) {
    cache.get_or_load(key(b), [&] { return make_block(128, b); });
  }
  const auto stats = cache.stats();
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.misses, 6u);
  // Blocks 0 and 1 were evicted (LRU); 2..5 are still resident.
  bool hit = false;
  cache.get_or_load(key(5), [&] { return make_block(128, 5.0); }, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_load(key(0), [&] { return make_block(128, 0.0); }, &hit);
  EXPECT_FALSE(hit);
}

TEST(SvcBlockCache, HitMovesEntryToFrontOfLru) {
  BlockCache cache(4096, 1);
  const auto key = [](int b) { return BlockKey{"d.bp", "U", 0, b}; };
  for (int b = 0; b < 4; ++b) {
    cache.get_or_load(key(b), [&] { return make_block(128, b); });
  }
  // Touch block 0, then insert two more: 1 and 2 evict, 0 survives.
  cache.get_or_load(key(0), [&] { return make_block(128, 0.0); });
  cache.get_or_load(key(4), [&] { return make_block(128, 4.0); });
  cache.get_or_load(key(5), [&] { return make_block(128, 5.0); });
  bool hit = false;
  cache.get_or_load(key(0), [&] { return make_block(128, 0.0); }, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_load(key(1), [&] { return make_block(128, 1.0); }, &hit);
  EXPECT_FALSE(hit);
}

TEST(SvcBlockCache, OversizedBlockNeverExceedsBudget) {
  BlockCache cache(1024, 1);
  const auto big = cache.get_or_load(BlockKey{"d.bp", "U", 0, 0},
                                     [&] { return make_block(512, 1.0); });
  ASSERT_NE(big, nullptr);  // caller keeps the payload even if evicted
  EXPECT_EQ(big->size(), 512u);
  EXPECT_LE(cache.stats().bytes, cache.stats().capacity_bytes);
}

// ---- observability --------------------------------------------------------

TEST(SvcObservability, RequestsBecomeProfilerSpansWithWorkerLanes) {
  gs::prof::Profiler profiler;
  ServiceConfig config;
  config.threads = 2;
  config.profiler = &profiler;
  Service service(dataset(), std::move(config));
  Client client(service);
  for (std::int64_t s = 0; s < kSteps; ++s) {
    ASSERT_TRUE(client.field_stats("U", s).ok());
  }
  ASSERT_TRUE(client.histogram("V", 0, 8).ok());
  service.shutdown();

  const auto& spans = profiler.spans();
  ASSERT_EQ(spans.size(), 4u);
  for (const auto& sp : spans) {
    EXPECT_NE(sp.tid, 0u) << "span must carry its worker thread lane";
    EXPECT_GE(sp.t1, sp.t0);
  }
  const std::string trace = profiler.chrome_trace_json();
  EXPECT_NE(trace.find("svc.FieldStats"), std::string::npos);
  EXPECT_NE(trace.find("svc.Histogram"), std::string::npos);
}

TEST(SvcObservability, MetricsReportAndJsonAreWellFormed) {
  ServiceConfig config;
  config.mmap_reads = false;  // assertions below count BlockCache hits
  Service service(dataset(), std::move(config));
  Client client(service);
  ASSERT_TRUE(client.field_stats("U", 0).ok());
  ASSERT_TRUE(client.field_stats("U", 0).ok());  // warm: cache hits
  const auto m = service.metrics();
  EXPECT_EQ(m.completed_ok, 2u);
  EXPECT_GT(m.latency_p99, 0.0);
  EXPECT_GE(m.latency_p99, m.latency_p50);
  EXPECT_GT(m.cache.hits, 0u);
  // Both answers scanned the whole L^3 field: io accounting counts
  // every fetch, cache hits included.
  EXPECT_EQ(m.bytes_scanned,
            2u * kL * kL * kL * sizeof(double));
  EXPECT_GT(m.exec_seconds_total, 0.0);
  const std::string report = m.report();
  EXPECT_NE(report.find("FieldStats"), std::string::npos);
  EXPECT_NE(report.find("scanned"), std::string::npos);
  const auto doc = m.to_json();
  EXPECT_EQ(doc.at("completed_ok").as_int(), 2);
  EXPECT_GT(doc.at("cache").at("hits").as_int(), 0);
  EXPECT_GT(doc.at("io").at("bytes_scanned").as_int(), 0);
  // The snapshot dump must parse back.
  const auto reparsed = gs::json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.at("submitted").as_int(), 2);
}

// ---- concurrency ----------------------------------------------------------

TEST(SvcConcurrency, ParallelClientsGetSerialAnswers) {
  ServiceConfig config;
  config.threads = 4;
  Service service(dataset(), std::move(config));
  const gs::bp::Reader reader(dataset());
  const Box3 box{{0, 4, 0}, {kL, kL - 8, kL}};
  std::vector<std::vector<double>> expected;
  for (std::int64_t s = 0; s < kSteps; ++s) {
    expected.push_back(reader.read("U", s, box));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Client client(service);
      for (int r = 0; r < 6; ++r) {
        const std::int64_t s = (t + r) % kSteps;
        const auto resp = client.read_box("U", s, box);
        if (!resp.ok() || resp.value().values != expected[s]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto m = service.metrics();
  EXPECT_EQ(m.completed_ok, 48u);
  EXPECT_EQ(m.submitted, m.accounted());
}

}  // namespace
