// Tests for gs::simd and the vectorized kernels built on it. The layer's
// single contract is bitwise identity: every pack operation is the
// elementwise IEEE operation of its scalar counterpart, so any (width,
// tile, slab) combination of the vectorized loops must produce the exact
// bytes of the scalar code. These tests pin that contract at the pack
// level, the reduction level (minmax, histogram, CRC), and the full
// stencil level across awkward extents.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "common/checksum.h"
#include "common/stats.h"
#include "core/reference.h"
#include "core/stencil.h"
#include "par/par.h"
#include "simd/simd.h"

namespace {

using gs::Box3;
using gs::Field3;
using gs::Index3;
using gs::core::GsParams;
using gs::core::StencilArgs;
using gs::simd::kNativeWidth;
using gs::simd::pack;

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

/// Deterministic awkward doubles: irrational-ish magnitudes whose sums,
/// products, and quotients all round — where a fused or reassociated
/// codegen would change bits.
double awkward(std::size_t i) {
  return (static_cast<double>(i % 97) + 0.1) / 9.7 -
         static_cast<double>(i % 13) * 0.37;
}

// ---- pack ops -------------------------------------------------------------

template <int W>
void check_pack_ops() {
  double in_a[W], in_b[W];
  for (int l = 0; l < W; ++l) {
    in_a[l] = awkward(static_cast<std::size_t>(l) + 1);
    in_b[l] = awkward(static_cast<std::size_t>(l) + 31);
  }
  const pack<W> a = pack<W>::load(in_a);
  const pack<W> b = pack<W>::load(in_b);

  // load/store round-trips the exact bytes.
  double out[W];
  a.store(out);
  EXPECT_EQ(std::memcmp(out, in_a, sizeof out), 0) << "W=" << W;

  // Every operator is the elementwise scalar operation, bit for bit.
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(bits_of((a + b).lane(l)), bits_of(in_a[l] + in_b[l]));
    EXPECT_EQ(bits_of((a - b).lane(l)), bits_of(in_a[l] - in_b[l]));
    EXPECT_EQ(bits_of((a * b).lane(l)), bits_of(in_a[l] * in_b[l]));
    EXPECT_EQ(bits_of((a / b).lane(l)), bits_of(in_a[l] / in_b[l]));
    EXPECT_EQ(bits_of((2.5 * a).lane(l)), bits_of(2.5 * in_a[l]));
    EXPECT_EQ(bits_of((a - 0.3).lane(l)), bits_of(in_a[l] - 0.3));
    EXPECT_EQ(bits_of((1.0 / a).lane(l)), bits_of(1.0 / in_a[l]));
    EXPECT_EQ(bits_of(min(a, b).lane(l)),
              bits_of(std::min(in_a[l], in_b[l])));
    EXPECT_EQ(bits_of(max(a, b).lane(l)),
              bits_of(std::max(in_a[l], in_b[l])));
  }

  // broadcast fills every lane; set_lane edits exactly one.
  pack<W> c = pack<W>::broadcast(-4.25);
  for (int l = 0; l < W; ++l) EXPECT_EQ(c.lane(l), -4.25);
  c.set_lane(W - 1, 9.5);
  EXPECT_EQ(c.lane(W - 1), 9.5);
  if (W > 1) {
    EXPECT_EQ(c.lane(0), -4.25);
  }
}

TEST(SimdPack, ElementwiseOpsMatchScalarBitsAtEveryWidth) {
  check_pack_ops<1>();
  check_pack_ops<2>();
  check_pack_ops<4>();
  check_pack_ops<8>();
}

TEST(SimdPack, NativeWidthIsConfigured) {
  // 1 (scalar fallback) or one of the vector widths; the stencil and the
  // reductions instantiate over this constant.
  EXPECT_TRUE(kNativeWidth == 1 || kNativeWidth == 2 || kNativeWidth == 4 ||
              kNativeWidth == 8);
}

// ---- minmax_run -----------------------------------------------------------

TEST(SimdMinMax, MatchesScalarScanAcrossLengths) {
  // Lengths straddle every boundary: below 2W (pure scalar path), exact
  // multiples of W, and every remainder in between.
  std::vector<double> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = awkward(i * 7 + 3);
  for (std::size_t n = 1; n <= data.size(); ++n) {
    const auto scalar = gs::simd::minmax_run<1>(data.data(),
                                                static_cast<std::int64_t>(n));
    const auto native = gs::simd::minmax_run<kNativeWidth>(
        data.data(), static_cast<std::int64_t>(n));
    EXPECT_EQ(bits_of(scalar.lo), bits_of(native.lo)) << "n=" << n;
    EXPECT_EQ(bits_of(scalar.hi), bits_of(native.hi)) << "n=" << n;
  }
}

// ---- histogram add vs add_many --------------------------------------------

TEST(SimdHistogram, AddManyLandsEverySampleInAddsBin) {
  // Values include out-of-range samples (clamped into the edge bins) and
  // exact bin-boundary values, across lengths with every W-remainder.
  std::vector<double> data(41);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = awkward(i * 11) * 3.0;  // spills outside [lo, hi)
  }
  data[5] = 0.0;   // == lo
  data[17] = 1.0;  // == hi (clamps into the last bin)
  for (std::size_t n = 1; n <= data.size(); ++n) {
    gs::Histogram one(0.0, 1.0, 16);
    gs::Histogram many(0.0, 1.0, 16);
    for (std::size_t i = 0; i < n; ++i) one.add(data[i]);
    many.add_many(data.data(), n);
    ASSERT_EQ(one.total(), many.total()) << "n=" << n;
    for (std::size_t b = 0; b < one.bins(); ++b) {
      ASSERT_EQ(one.count(b), many.count(b)) << "n=" << n << " bin " << b;
    }
  }
}

// ---- CRC-32 ---------------------------------------------------------------

TEST(SimdCrc, PinnedVectorsAndSliceConsistency) {
  // The ISO-HDLC check value every CRC-32 implementation must reproduce.
  const char check[] = "123456789";
  const auto bytes = std::as_bytes(std::span(check, 9));
  EXPECT_EQ(gs::crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(gs::crc32({}), 0x00000000u);

  // Slice-by-8 kicks in at length >= 8: sweep lengths through both the
  // bytewise tail and the 8-byte main loop and check against the
  // incremental (bytewise) construction.
  std::vector<std::byte> buf(257);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((i * 131 + 89) & 0xff);
  }
  for (const std::size_t n : {1u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 255u, 257u}) {
    const std::span<const std::byte> s(buf.data(), n);
    std::uint32_t byte_at_a_time = 0;
    for (std::size_t i = 0; i < n; ++i) {
      byte_at_a_time = gs::crc32_update(byte_at_a_time, s.subspan(i, 1));
    }
    EXPECT_EQ(gs::crc32(s), byte_at_a_time) << "n=" << n;
  }
}

TEST(SimdCrc, CombineStitchesSplitCrcs) {
  std::vector<std::byte> buf(300);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((i * 7 + 13) & 0xff);
  }
  const std::span<const std::byte> whole(buf);
  const std::uint32_t expect = gs::crc32(whole);
  for (const std::size_t cut : {0u, 1u, 8u, 150u, 299u, 300u}) {
    const std::uint32_t a = gs::crc32(whole.subspan(0, cut));
    const std::uint32_t b = gs::crc32(whole.subspan(cut));
    EXPECT_EQ(gs::crc32_combine(a, b, buf.size() - cut), expect)
        << "cut=" << cut;
  }
  // Pooled (tiled) CRC stitches with combine, so it must agree too.
  EXPECT_EQ(gs::par::crc32(whole), expect);
}

// ---- stencil identity -----------------------------------------------------

/// Ghost-filled fields plus the StencilArgs of a serial whole-domain
/// sweep, mirroring core::reference_step's setup.
struct Workload {
  Field3 u, v, un, vn;
  StencilArgs args;

  explicit Workload(std::int64_t L, double noise)
      : u({L, L, L}), v({L, L, L}), un({L, L, L}), vn({L, L, L}) {
    gs::core::initialize_fields(u, v, Box3{{0, 0, 0}, {L, L, L}}, L);
    gs::core::apply_periodic_ghosts(u);
    gs::core::apply_periodic_ghosts(v);
    args.u = u.data().data();
    args.v = v.data().data();
    args.u_next = un.data().data();
    args.v_next = vn.data().data();
    args.alloc = u.alloc_extent();
    args.interior = u.interior();
    args.local = Box3{{0, 0, 0}, u.interior()};
    args.global = {L, L, L};
    args.params.noise = noise;
    args.seed = 42;
    args.step = 3;
  }

  bool outputs_equal(const Workload& o) const {
    return std::memcmp(un.data().data(), o.un.data().data(),
                       un.data().size() * sizeof(double)) == 0 &&
           std::memcmp(vn.data().data(), o.vn.data().data(),
                       vn.data().size() * sizeof(double)) == 0;
  }
};

TEST(SimdStencil, ScalarAndVectorSweepsIdenticalAcrossExtents) {
  // Extents 1..9 cover every vector/remainder split at any supported
  // width (all-remainder rows, exactly one pack, pack + odd tail).
  for (std::int64_t L = 1; L <= 9; ++L) {
    for (const double noise : {0.0, 0.1}) {
      Workload a(L, noise), b(L, noise);
      gs::core::grayscott_tile<kNativeWidth>(a.args, 0, L);
      gs::core::grayscott_tile<1>(b.args, 0, L);
      EXPECT_TRUE(a.outputs_equal(b)) << "L=" << L << " noise=" << noise;
    }
  }
}

TEST(SimdStencil, TileHeightNeverChangesBits) {
  constexpr std::int64_t L = 12;
  Workload base(L, 0.1);
  gs::core::grayscott_tile<kNativeWidth>(base.args, 0, L);
  for (const std::int64_t tj : {std::int64_t{1}, std::int64_t{2},
                                std::int64_t{5}, std::int64_t{L},
                                std::int64_t{3 * L}}) {
    Workload tiled(L, 0.1);
    tiled.args.tile_j = tj;
    gs::core::grayscott_tile<kNativeWidth>(tiled.args, 0, L);
    EXPECT_TRUE(base.outputs_equal(tiled)) << "tile_j=" << tj;
  }
}

TEST(SimdStencil, ZSlabSplitsComposeToTheWholeSweep) {
  // Two partial [k0, k1) tiles must equal one whole sweep — the property
  // the gs::par Z-slab plan relies on.
  constexpr std::int64_t L = 10;
  Workload whole(L, 0.1), split(L, 0.1);
  gs::core::grayscott_tile<kNativeWidth>(whole.args, 0, L);
  gs::core::grayscott_tile<kNativeWidth>(split.args, 0, 4);
  gs::core::grayscott_tile<kNativeWidth>(split.args, 4, L);
  EXPECT_TRUE(whole.outputs_equal(split));
}

TEST(SimdStencil, BlockedKernelBacksTheReferenceSolver) {
  // reference_step IS the blocked kernel plus ghost refresh: running the
  // tile by hand after applying ghosts must reproduce it exactly.
  constexpr std::int64_t L = 8;
  const GsParams params{};  // default noise = 0.1
  Field3 u({L, L, L}), v({L, L, L}), un({L, L, L}), vn({L, L, L});
  gs::core::initialize_fields(u, v, Box3{{0, 0, 0}, {L, L, L}}, L);
  const Field3 u2 = u, v2 = v;

  gs::core::reference_step(u, v, un, vn, params, 42, 3, L);

  Workload manual(L, params.noise);
  // Same state, seed, and step as the reference call.
  std::memcpy(manual.u.data().data(), u2.data().data(),
              u2.data().size() * sizeof(double));
  std::memcpy(manual.v.data().data(), v2.data().data(),
              v2.data().size() * sizeof(double));
  gs::core::apply_periodic_ghosts(manual.u);
  gs::core::apply_periodic_ghosts(manual.v);
  gs::core::grayscott_tile<kNativeWidth>(manual.args, 0, L);

  EXPECT_EQ(std::memcmp(un.data().data(), manual.un.data().data(),
                        un.data().size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(vn.data().data(), manual.vn.data().data(),
                        vn.data().size() * sizeof(double)),
            0);
}

}  // namespace
