// Tests for the Gray-Scott core: noise determinism, initial conditions,
// the reference solver's PDE invariants, and cross-validation of the
// simulated-GPU/MPI paths against the reference (bitwise).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "analysis/analysis.h"
#include "core/kernels.h"
#include "core/reference.h"
#include "core/sim.h"
#include "mpi/runtime.h"
#include "par/par.h"

namespace {

using gs::Box3;
using gs::Field3;
using gs::Index3;
using gs::KernelBackend;
using gs::Settings;
using gs::core::GsParams;
using gs::core::noise_at;
using gs::core::Simulation;

// ---------------------------------------------------------------- noise

TEST(Noise, DeterministicPerCellStepSeed) {
  EXPECT_DOUBLE_EQ(noise_at(1, 5, 100), noise_at(1, 5, 100));
  EXPECT_NE(noise_at(1, 5, 100), noise_at(1, 5, 101));
  EXPECT_NE(noise_at(1, 5, 100), noise_at(1, 6, 100));
  EXPECT_NE(noise_at(1, 5, 100), noise_at(2, 5, 100));
}

TEST(Noise, RangeIsMinusOneToOne) {
  double lo = 1.0, hi = -1.0;
  for (std::int64_t c = 0; c < 100000; ++c) {
    const double r = noise_at(7, 3, c);
    ASSERT_GE(r, -1.0);
    ASSERT_LT(r, 1.0);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  // Should actually span most of the interval.
  EXPECT_LT(lo, -0.99);
  EXPECT_GT(hi, 0.99);
}

TEST(Noise, MeanNearZero) {
  double sum = 0.0;
  const int n = 200000;
  for (int c = 0; c < n; ++c) sum += noise_at(11, 0, c);
  EXPECT_NEAR(sum / n, 0.0, 0.01);
}

// ------------------------------------------------------ initial condition

TEST(Init, BackgroundAndSeedRegion) {
  const std::int64_t L = 32;
  Field3 u({L, L, L}), v({L, L, L});
  gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
  const std::int64_t w = gs::core::default_perturbation_halfwidth(L);
  EXPECT_EQ(w, 2);
  // Far corner: background.
  EXPECT_DOUBLE_EQ(u.at(1, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(v.at(1, 1, 1), 0.0);
  // Center: perturbed (global cell 16 -> local index 17).
  EXPECT_DOUBLE_EQ(u.at(L / 2 + 1, L / 2 + 1, L / 2 + 1), 0.25);
  EXPECT_DOUBLE_EQ(v.at(L / 2 + 1, L / 2 + 1, L / 2 + 1), 0.33);
}

TEST(Init, DecompositionInvariant) {
  // The union of per-rank initializations equals the serial one.
  const std::int64_t L = 16;
  Field3 u_serial({L, L, L}), v_serial({L, L, L});
  gs::core::initialize_fields(u_serial, v_serial, {{0, 0, 0}, {L, L, L}}, L);

  const gs::Decomposition d({L, L, L}, {2, 2, 1});
  for (std::int64_t r = 0; r < d.nranks(); ++r) {
    const Box3 local = d.local_box(r);
    Field3 u(local.count), v(local.count);
    gs::core::initialize_fields(u, v, local, L);
    for (std::int64_t k = 1; k <= local.count.k; ++k) {
      for (std::int64_t j = 1; j <= local.count.j; ++j) {
        for (std::int64_t i = 1; i <= local.count.i; ++i) {
          const Index3 g = local.start + Index3{i - 1, j - 1, k - 1};
          EXPECT_DOUBLE_EQ(u.at(i, j, k),
                           u_serial.at(g.i + 1, g.j + 1, g.k + 1));
          EXPECT_DOUBLE_EQ(v.at(i, j, k),
                           v_serial.at(g.i + 1, g.j + 1, g.k + 1));
        }
      }
    }
  }
}

// ------------------------------------------------------ reference solver

TEST(Reference, PeriodicGhostsWrap) {
  Field3 f({3, 3, 3});
  int val = 0;
  for (std::int64_t k = 1; k <= 3; ++k) {
    for (std::int64_t j = 1; j <= 3; ++j) {
      for (std::int64_t i = 1; i <= 3; ++i) {
        f.at(i, j, k) = ++val;
      }
    }
  }
  gs::core::apply_periodic_ghosts(f);
  EXPECT_DOUBLE_EQ(f.at(0, 2, 2), f.at(3, 2, 2));
  EXPECT_DOUBLE_EQ(f.at(4, 2, 2), f.at(1, 2, 2));
  EXPECT_DOUBLE_EQ(f.at(2, 0, 2), f.at(2, 3, 2));
  EXPECT_DOUBLE_EQ(f.at(2, 4, 2), f.at(2, 1, 2));
  EXPECT_DOUBLE_EQ(f.at(2, 2, 0), f.at(2, 2, 3));
  EXPECT_DOUBLE_EQ(f.at(2, 2, 4), f.at(2, 2, 1));
}

TEST(Reference, UniformSteadyStateIsFixedPoint) {
  // U=1, V=0 with zero noise solves Eq. (1) exactly: dU=F(1-1)=0, dV=0.
  const std::int64_t L = 8;
  Field3 u({L, L, L}), v({L, L, L});
  u.fill_interior(1.0);
  v.fill_interior(0.0);
  GsParams p;
  p.noise = 0.0;
  gs::core::reference_run(u, v, p, 1, 5, L);
  for (std::int64_t k = 1; k <= L; ++k) {
    for (std::int64_t j = 1; j <= L; ++j) {
      for (std::int64_t i = 1; i <= L; ++i) {
        ASSERT_DOUBLE_EQ(u.at(i, j, k), 1.0);
        ASSERT_DOUBLE_EQ(v.at(i, j, k), 0.0);
      }
    }
  }
}

TEST(Reference, PureDiffusionConservesMass) {
  // With F=k=0 and no noise and v=0 everywhere, U obeys a pure periodic
  // diffusion equation, which conserves the sum exactly (up to FP).
  const std::int64_t L = 8;
  Field3 u({L, L, L}), v({L, L, L});
  u.fill_interior(1.0);
  u.at(4, 4, 4) = 5.0;  // a bump
  v.fill_interior(0.0);
  GsParams p;
  p.F = 0.0;
  p.k = 0.0;
  p.noise = 0.0;
  const double sum0 = u.interior_sum();
  gs::core::reference_run(u, v, p, 1, 10, L);
  EXPECT_NEAR(u.interior_sum(), sum0, 1e-9);
  // And the bump spreads: center decreased, neighbors increased.
  EXPECT_LT(u.at(4, 4, 4), 5.0);
  EXPECT_GT(u.at(3, 4, 4), 1.0);
}

TEST(Reference, SymmetryPreservedWithoutNoise) {
  // Mirror-symmetric initial data stays mirror-symmetric under the PDE.
  const std::int64_t L = 8;
  Field3 u({L, L, L}), v({L, L, L});
  gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
  GsParams p;
  p.noise = 0.0;
  gs::core::reference_run(u, v, p, 1, 5, L);
  // The seed cube [L/2-w, L/2+w) is symmetric under x -> L-1-x (about
  // the center L/2 - 0.5), so the solution must be too.
  for (std::int64_t k = 1; k <= L; ++k) {
    for (std::int64_t j = 1; j <= L; ++j) {
      for (std::int64_t i = 1; i <= L; ++i) {
        ASSERT_DOUBLE_EQ(u.at(i, j, k), u.at(L + 1 - i, j, k));
        ASSERT_DOUBLE_EQ(v.at(i, j, k), v.at(L + 1 - i, j, k));
      }
    }
  }
}

TEST(Reference, VDecaysWithoutUCatalysis) {
  // With u=0, dv = Dv lap v - (F+k) v: v decays everywhere.
  const std::int64_t L = 6;
  Field3 u({L, L, L}), v({L, L, L});
  u.fill_interior(0.0);
  v.fill_interior(0.5);
  GsParams p;
  p.noise = 0.0;
  const double sum0 = v.interior_sum();
  gs::core::reference_run(u, v, p, 1, 3, L);
  EXPECT_LT(v.interior_sum(), sum0);
  EXPECT_GT(v.interior_min(), 0.0);  // but never negative in 3 steps
}

TEST(Reference, FirstStepLinearInDt) {
  // One Euler step: u(dt) - u(0) is proportional to dt.
  const std::int64_t L = 8;
  GsParams p;
  p.noise = 0.0;

  auto one_step = [&](double dt) {
    Field3 u({L, L, L}), v({L, L, L});
    gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
    GsParams q = p;
    q.dt = dt;
    Field3 un({L, L, L}), vn({L, L, L});
    gs::core::reference_step(u, v, un, vn, q, 1, 0, L);
    return un.at(L / 2, L / 2, L / 2) - u.at(L / 2, L / 2, L / 2);
  };

  const double d1 = one_step(0.5);
  const double d2 = one_step(1.0);
  ASSERT_NE(d1, 0.0);
  EXPECT_NEAR(d2 / d1, 2.0, 1e-9);
}

TEST(Reference, FourierModeDecaysAtAnalyticRate) {
  // For pure diffusion (F=k=noise=0, v=0), a single Fourier mode
  // u = 1 + eps*sin(2*pi*m*x/L) is an exact eigenfunction of the
  // discrete update: the normalized 7-point Laplacian acts on an
  // x-only mode as (2cos(theta)-2)/6 with theta = 2*pi*m/L, so each
  // forward-Euler step multiplies the amplitude by
  //   g = 1 + dt*Du*(2cos(theta)-2)/6.
  const std::int64_t L = 16;
  const std::int64_t m = 2;
  const double eps = 1e-3;
  const double theta = 2.0 * M_PI * static_cast<double>(m) /
                       static_cast<double>(L);

  Field3 u({L, L, L}), v({L, L, L});
  v.fill_interior(0.0);
  for (std::int64_t k = 1; k <= L; ++k) {
    for (std::int64_t j = 1; j <= L; ++j) {
      for (std::int64_t i = 1; i <= L; ++i) {
        u.at(i, j, k) =
            1.0 + eps * std::sin(theta * static_cast<double>(i - 1));
      }
    }
  }

  GsParams p;
  p.F = 0.0;
  p.k = 0.0;
  p.noise = 0.0;
  const int steps = 10;
  gs::core::reference_run(u, v, p, 1, steps, L);

  const double g = 1.0 + p.dt * p.Du * (2.0 * std::cos(theta) - 2.0) / 6.0;
  const double expected = eps * std::pow(g, steps);
  // Measure the mode amplitude via projection onto sin(theta x).
  double amp = 0.0;
  for (std::int64_t i = 1; i <= L; ++i) {
    amp += (u.at(i, 1, 1) - 1.0) *
           std::sin(theta * static_cast<double>(i - 1));
  }
  amp *= 2.0 / static_cast<double>(L);
  EXPECT_NEAR(amp, expected, 1e-12);
}

TEST(Reference, HigherModesDecayFaster) {
  // The discrete dispersion relation is monotone in the mode number up
  // to Nyquist: checking the ordering guards against sign/scale bugs in
  // the Laplacian coefficient.
  const std::int64_t L = 16;
  GsParams p;
  p.F = 0.0;
  p.k = 0.0;
  p.noise = 0.0;
  auto decay_of_mode = [&](std::int64_t m) {
    const double theta = 2.0 * M_PI * static_cast<double>(m) /
                         static_cast<double>(L);
    Field3 u({L, L, L}), v({L, L, L});
    v.fill_interior(0.0);
    for (std::int64_t k = 1; k <= L; ++k) {
      for (std::int64_t j = 1; j <= L; ++j) {
        for (std::int64_t i = 1; i <= L; ++i) {
          u.at(i, j, k) =
              1.0 + 1e-3 * std::sin(theta * static_cast<double>(i - 1));
        }
      }
    }
    gs::core::reference_run(u, v, p, 1, 5, L);
    return u.interior_max() - 1.0;  // surviving amplitude
  };
  const double a1 = decay_of_mode(1);
  const double a2 = decay_of_mode(2);
  const double a4 = decay_of_mode(4);
  EXPECT_GT(a1, a2);
  EXPECT_GT(a2, a4);
  EXPECT_GT(a4, 0.0);
}

TEST(Reference, SolutionStaysBounded) {
  // Physically: 0 <= V, U <= ~1.5 for the Pearson parameters over short
  // horizons (paper Listing 1 reports U in [-0.12, 1.47] at 1000 steps
  // WITH noise; without noise the clean bounds hold).
  const std::int64_t L = 12;
  Field3 u({L, L, L}), v({L, L, L});
  gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
  GsParams p;
  p.noise = 0.0;
  gs::core::reference_run(u, v, p, 1, 50, L);
  EXPECT_GE(u.interior_min(), 0.0);
  EXPECT_LE(u.interior_max(), 1.5);
  EXPECT_GE(v.interior_min(), 0.0);
  EXPECT_LE(v.interior_max(), 1.0);
}

// ------------------------------------------------- simulation validation

Settings small_settings(std::int64_t L, KernelBackend backend,
                        double noise) {
  Settings s;
  s.L = L;
  s.backend = backend;
  s.noise = noise;
  s.steps = 4;
  s.seed = 99;
  return s;
}

/// Gathers the global U field from a Simulation onto rank 0.
Field3 gather_u(Simulation& sim) {
  sim.sync_host();
  auto& comm = sim.cart().comm();
  const std::int64_t L = sim.settings().L;
  Field3 global({L, L, L});
  const auto mine = sim.u_host().interior_copy();
  std::vector<double> all;
  comm.gather(std::span<const double>(mine), all, 0);
  if (comm.rank() == 0) {
    for (int r = 0; r < comm.size(); ++r) {
      const Box3 box = sim.decomp().local_box(r);
      // Ranks contribute equal-size blocks (test grids divide evenly).
      const auto n = static_cast<std::size_t>(box.volume());
      std::span<const double> block(all.data() + static_cast<std::size_t>(r) * n, n);
      Field3 local(box.count);
      local.interior_assign(block);
      for (std::int64_t k = 1; k <= box.count.k; ++k) {
        for (std::int64_t j = 1; j <= box.count.j; ++j) {
          for (std::int64_t i = 1; i <= box.count.i; ++i) {
            global.at(box.start.i + i, box.start.j + j, box.start.k + k) =
                local.at(i, j, k);
          }
        }
      }
    }
  }
  return global;
}

TEST(Simulation, MatchesReferenceBitwiseSerial) {
  const std::int64_t L = 12;
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    Simulation sim(small_settings(L, KernelBackend::julia_amdgpu, 0.1),
                   world);
    sim.run_steps(4);
    sim.sync_host();

    Field3 u({L, L, L}), v({L, L, L});
    gs::core::initialize_fields(u, v, {{0, 0, 0}, {L, L, L}}, L);
    GsParams p;
    p.noise = 0.1;
    gs::core::reference_run(u, v, p, 99, 4, L);

    for (std::int64_t k = 1; k <= L; ++k) {
      for (std::int64_t j = 1; j <= L; ++j) {
        for (std::int64_t i = 1; i <= L; ++i) {
          ASSERT_EQ(sim.u_host().at(i, j, k), u.at(i, j, k))
              << "U mismatch at " << i << "," << j << "," << k;
          ASSERT_EQ(sim.v_host().at(i, j, k), v.at(i, j, k));
        }
      }
    }
  });
}

class SimulationParallel : public testing::TestWithParam<int> {};

TEST_P(SimulationParallel, ParallelEqualsSerialBitwiseWithNoise) {
  const int nranks = GetParam();
  const std::int64_t L = 12;

  // Serial ground truth from the reference solver.
  Field3 u_ref({L, L, L}), v_ref({L, L, L});
  gs::core::initialize_fields(u_ref, v_ref, {{0, 0, 0}, {L, L, L}}, L);
  GsParams p;
  p.noise = 0.1;
  gs::core::reference_run(u_ref, v_ref, p, 99, 3, L);

  gs::mpi::run(nranks, [&](gs::mpi::Comm& world) {
    Settings s = small_settings(L, KernelBackend::julia_amdgpu, 0.1);
    s.steps = 3;
    Simulation sim(s, world);
    sim.run_steps(3);
    Field3 global = gather_u(sim);
    if (world.rank() == 0) {
      for (std::int64_t k = 1; k <= L; ++k) {
        for (std::int64_t j = 1; j <= L; ++j) {
          for (std::int64_t i = 1; i <= L; ++i) {
            ASSERT_EQ(global.at(i, j, k), u_ref.at(i, j, k))
                << nranks << " ranks differ at " << i << "," << j << ","
                << k;
          }
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, SimulationParallel,
                         testing::Values(1, 2, 4, 8));

TEST(Simulation, BackendsAgreeBitwise) {
  // hip / julia / host_reference all run the same arithmetic.
  const std::int64_t L = 8;
  std::array<double, 3> checksums{};
  const std::array<KernelBackend, 3> backends = {
      KernelBackend::hip, KernelBackend::julia_amdgpu,
      KernelBackend::host_reference};
  for (std::size_t b = 0; b < backends.size(); ++b) {
    gs::mpi::run(1, [&](gs::mpi::Comm& world) {
      Simulation sim(small_settings(L, backends[b], 0.05), world);
      sim.run_steps(3);
      sim.sync_host();
      double sum = 0.0;
      for (std::int64_t k = 1; k <= L; ++k) {
        for (std::int64_t j = 1; j <= L; ++j) {
          for (std::int64_t i = 1; i <= L; ++i) {
            sum += sim.u_host().at(i, j, k) * static_cast<double>(i + 3 * j + 7 * k) +
                   sim.v_host().at(i, j, k);
          }
        }
      }
      checksums[b] = sum;
    });
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(checksums[1], checksums[2]);
}

TEST(Simulation, StepTimingPopulated) {
  gs::mpi::run(1, [](gs::mpi::Comm& world) {
    Simulation sim(small_settings(8, KernelBackend::julia_amdgpu, 0.1),
                   world);
    const auto t1 = sim.step();
    EXPECT_GT(t1.kernel, 0.0);
    EXPECT_GT(t1.exchange, 0.0);
    EXPECT_GT(t1.jit, 0.0);  // first julia launch compiles
    const auto t2 = sim.step();
    EXPECT_DOUBLE_EQ(t2.jit, 0.0);  // warm
    EXPECT_GT(sim.device_time(), 0.0);
  });
}

TEST(Simulation, HipBackendHasNoJit) {
  gs::mpi::run(1, [](gs::mpi::Comm& world) {
    Simulation sim(small_settings(8, KernelBackend::hip, 0.1), world);
    const auto t = sim.step();
    EXPECT_DOUBLE_EQ(t.jit, 0.0);
  });
}

TEST(Simulation, GlobalStatsMatchSerialAcrossRanks) {
  const std::int64_t L = 8;
  // Expected from a fresh initial condition.
  const auto w = gs::core::default_perturbation_halfwidth(L);
  const double seed_cells = std::pow(2.0 * static_cast<double>(w), 3);
  const double total_cells = std::pow(static_cast<double>(L), 3);
  gs::mpi::run(8, [&](gs::mpi::Comm& world) {
    Settings s = small_settings(L, KernelBackend::julia_amdgpu, 0.1);
    Simulation sim(s, world);
    auto stats = sim.global_stats();
    EXPECT_DOUBLE_EQ(stats.u_min, 0.25);
    EXPECT_DOUBLE_EQ(stats.u_max, 1.0);
    EXPECT_DOUBLE_EQ(stats.v_min, 0.0);
    EXPECT_DOUBLE_EQ(stats.v_max, 0.33);
    EXPECT_NEAR(stats.u_sum, total_cells - seed_cells + 0.25 * seed_cells,
                1e-9);
    EXPECT_NEAR(stats.v_sum, 0.33 * seed_cells, 1e-9);
  });
}

TEST(Simulation, GpuAwareExchangeBitwiseEqualToStaged) {
  // The GPU-aware path moves the same bytes; only the modeled timing
  // differs. Results must match the host-staged path bitwise.
  const std::int64_t L = 12;
  std::array<double, 2> sums{};
  for (int mode = 0; mode < 2; ++mode) {
    gs::mpi::run(8, [&](gs::mpi::Comm& world) {
      Settings s = small_settings(L, KernelBackend::julia_amdgpu, 0.1);
      s.gpu_aware_mpi = (mode == 1);
      Simulation sim(s, world);
      sim.run_steps(3);
      const auto stats = sim.global_stats();
      if (world.rank() == 0) sums[static_cast<std::size_t>(mode)] =
          stats.u_sum + 3.0 * stats.v_sum + stats.u_max;
    });
  }
  EXPECT_EQ(sums[0], sums[1]);
}

TEST(Simulation, GpuAwareExchangeIsFasterOnDeviceClock) {
  // No host staging: the per-step exchange cost over Infinity Fabric
  // (50 GB/s peer) beats 12 strided copies over the 36 GB/s host link
  // plus their latencies.
  const std::int64_t L = 16;
  std::array<double, 2> exchange_time{};
  for (int mode = 0; mode < 2; ++mode) {
    gs::mpi::run(1, [&](gs::mpi::Comm& world) {
      Settings s = small_settings(L, KernelBackend::hip, 0.0);
      s.gpu_aware_mpi = (mode == 1);
      Simulation sim(s, world);
      const auto t = sim.step();
      exchange_time[static_cast<std::size_t>(mode)] = t.exchange;
    });
  }
  EXPECT_GT(exchange_time[0], exchange_time[1]);
}

TEST(Simulation, AotReplacesJitCost) {
  gs::mpi::run(1, [](gs::mpi::Comm& world) {
    Settings s = small_settings(8, KernelBackend::julia_amdgpu, 0.1);
    s.aot = true;
    Simulation sim(s, world);
    // AOT pre-paid a small load cost at construction...
    const double t_init = sim.device_time();
    EXPECT_GT(t_init, 0.0);
    // ...so the first step has no JIT charge.
    const auto t = sim.step();
    EXPECT_DOUBLE_EQ(t.jit, 0.0);
  });
}

TEST(Simulation, AotLoadMuchCheaperThanJit) {
  double aot_total = 0.0, jit_total = 0.0;
  for (const bool aot : {true, false}) {
    gs::mpi::run(1, [&](gs::mpi::Comm& world) {
      Settings s = small_settings(8, KernelBackend::julia_amdgpu, 0.1);
      s.aot = aot;
      Simulation sim(s, world);
      sim.run_steps(2);
      (aot ? aot_total : jit_total) = sim.device_time();
    });
  }
  // JIT pays ~1.28 s; AOT pays ~5% of that.
  EXPECT_LT(aot_total, 0.3 * jit_total);
}

TEST(Simulation, AotIgnoredForHipBackend) {
  gs::mpi::run(1, [](gs::mpi::Comm& world) {
    Settings s = small_settings(8, KernelBackend::hip, 0.0);
    s.aot = true;
    Simulation sim(s, world);
    const auto t = sim.step();
    EXPECT_DOUBLE_EQ(t.jit, 0.0);
  });
}

TEST(Simulation, CurrentStepAdvances) {
  gs::mpi::run(1, [](gs::mpi::Comm& world) {
    Simulation sim(small_settings(8, KernelBackend::hip, 0.0), world);
    EXPECT_EQ(sim.current_step(), 0);
    sim.run_steps(3);
    EXPECT_EQ(sim.current_step(), 3);
  });
}

// ------------------------------------------------- thread determinism

/// Everything downstream of one run that a user can observe: raw
/// interiors, a checksum, and analysis statistics.
struct RunObservables {
  std::vector<double> u, v;
  std::uint32_t u_crc = 0;
  gs::analysis::FieldStats u_stats;
};

RunObservables run_with_lanes(std::size_t lanes, KernelBackend backend) {
  gs::par::set_global_lanes(lanes);
  RunObservables out;
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    Settings s = small_settings(16, backend, 0.1);
    s.steps = 3;
    Simulation sim(s, world);
    sim.run_steps(3);
    sim.sync_host();
    out.u = sim.u_host().interior_copy();
    out.v = sim.v_host().interior_copy();
  });
  out.u_crc =
      gs::par::crc32(std::as_bytes(std::span<const double>(out.u)));
  out.u_stats = gs::analysis::compute_stats(out.u);
  gs::par::set_global_lanes(1);
  return out;
}

class ThreadDeterminism
    : public testing::TestWithParam<KernelBackend> {};

TEST_P(ThreadDeterminism, ResultsBitwiseIdenticalAcrossPoolSizes) {
  // The whole point of gs::par: thread count is a pure performance knob.
  // Interiors, checksums, and analysis stats must be BITWISE identical
  // for pools of 1, 2, and 7 lanes.
  const RunObservables base = run_with_lanes(1, GetParam());
  for (const std::size_t lanes : {2u, 7u}) {
    const RunObservables got = run_with_lanes(lanes, GetParam());
    ASSERT_EQ(base.u.size(), got.u.size());
    for (std::size_t i = 0; i < base.u.size(); ++i) {
      ASSERT_EQ(base.u[i], got.u[i]) << "U differs at " << i << " with "
                                     << lanes << " lanes";
      ASSERT_EQ(base.v[i], got.v[i]) << "V differs at " << i << " with "
                                     << lanes << " lanes";
    }
    EXPECT_EQ(base.u_crc, got.u_crc);
    EXPECT_EQ(base.u_stats.mean, got.u_stats.mean);
    EXPECT_EQ(base.u_stats.stddev, got.u_stats.stddev);
    EXPECT_EQ(base.u_stats.min, got.u_stats.min);
    EXPECT_EQ(base.u_stats.max, got.u_stats.max);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ThreadDeterminism,
                         testing::Values(KernelBackend::host_reference,
                                         KernelBackend::julia_amdgpu));

TEST(Simulation, HostReferenceNeverReallocatesAcrossSteps) {
  // The host-reference path double-buffers through the persistent
  // u_next_/v_next_ fields: across many steps the U storage must
  // alternate between at most two allocations — no per-step Field3.
  gs::mpi::run(1, [](gs::mpi::Comm& world) {
    Settings s = small_settings(12, KernelBackend::host_reference, 0.1);
    s.steps = 8;
    Simulation sim(s, world);
    std::set<const double*> seen;
    for (int step = 0; step < 8; ++step) {
      sim.step();
      seen.insert(sim.u_host().data().data());
    }
    EXPECT_LE(seen.size(), 2u);
  });
}

TEST(Simulation, ProfilerReceivesSpans) {
  gs::prof::Profiler prof;
  gs::mpi::run(1, [&](gs::mpi::Comm& world) {
    Simulation sim(small_settings(8, KernelBackend::julia_amdgpu, 0.1),
                   world, &prof);
    sim.run_steps(2);
  });
  int kernels = 0, h2d = 0, d2h = 0, jit = 0;
  for (const auto& s : prof.spans()) {
    switch (s.kind) {
      case gs::prof::SpanKind::kernel: ++kernels; break;
      case gs::prof::SpanKind::memcpy_h2d: ++h2d; break;
      case gs::prof::SpanKind::memcpy_d2h: ++d2h; break;
      case gs::prof::SpanKind::jit_compile: ++jit; break;
      default: break;
    }
  }
  EXPECT_EQ(kernels, 2);
  EXPECT_EQ(jit, 1);
  // 6 faces x 2 vars x 2 steps staging d2h (+0 full copies).
  EXPECT_GE(d2h, 24);
  // 6 ghost uploads x 2 vars x 2 steps + 2 initial full uploads.
  EXPECT_GE(h2d, 26);
}

}  // namespace
