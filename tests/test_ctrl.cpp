// Tests for gs::ctrl — the autonomous resharding controller. The policy
// rules are exercised as pure unit tests on hand-built cluster views
// (hysteresis, sustain, dwell, budget, health-overrides-dwell, the cost
// veto), the planner's successor synthesis is checked against the exact
// ring movement, the collector's decayed estimation and deterministic
// poll schedule run on a fake clock with scripted fetchers, and the
// closed loop runs end-to-end through the seeded simulation harness:
// grow under a ramp, shrink after it, zero commits under steady load,
// byte-identical replay.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "config/json.h"
#include "ctrl/collector.h"
#include "ctrl/controller.h"
#include "ctrl/planner.h"
#include "ctrl/policy.h"
#include "ctrl/sim.h"
#include "shard/map.h"
#include "shard/reshard.h"

namespace {

namespace ctrl = gs::ctrl;
namespace shard = gs::shard;
namespace json = gs::json;
using gs::DecayedRate;

shard::ShardMap make_map(std::size_t n, std::uint64_t epoch = 1) {
  std::vector<shard::ShardInfo> shards;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string id = "s" + std::to_string(i);
    shards.push_back(shard::ShardInfo{id, "sim:" + id});
  }
  return shard::ShardMap(epoch, 64, std::move(shards));
}

std::shared_ptr<const shard::ShardMap> make_map_ptr(std::size_t n,
                                                    std::uint64_t epoch = 1) {
  return std::make_shared<const shard::ShardMap>(make_map(n, epoch));
}

/// A view with `n` reachable shards each carrying `per_shard_load`.
ctrl::ClusterView make_view(std::size_t n, double per_shard_load) {
  ctrl::ClusterView v;
  for (std::size_t i = 0; i < n; ++i) {
    ctrl::ShardEstimate e;
    e.id = "s" + std::to_string(i);
    e.endpoint = "sim:" + e.id;
    e.reachable = true;
    e.epoch = 1;
    e.queue_depth = per_shard_load;
    v.shards.push_back(e);
  }
  v.reachable = n;
  v.epoch = 1;
  v.mean_queue_depth = per_shard_load;
  return v;
}

std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  for (std::size_t b = 0; b < n; ++b) {
    keys.push_back(shard::Ring::block_key("u", 0, b));
  }
  return keys;
}

// ---- DecayedRate ---------------------------------------------------------

TEST(DecayedRateTest, SteadyStreamConvergesToTheTrueRate) {
  // r events/sec into a half-life h settles at count = r * h / ln 2.
  const double h = 5.0;
  const double r = 10.0;
  DecayedRate d(h);
  for (int i = 0; i < 2000; ++i) {
    d.add(static_cast<double>(i) * 0.1, r * 0.1);
  }
  const double now = 200.0;
  EXPECT_NEAR(d.rate(now), r, r * 0.05);
  EXPECT_NEAR(d.count(now), r * h / M_LN2, r * h / M_LN2 * 0.05);
}

TEST(DecayedRateTest, CountHalvesPerHalfLifeAndNeverAmplifies) {
  DecayedRate d(10.0);
  d.add(0.0, 8.0);
  EXPECT_NEAR(d.count(10.0), 4.0, 1e-9);
  EXPECT_NEAR(d.count(30.0), 1.0, 1e-9);
  // Time running backwards is clamped: decay never amplifies.
  EXPECT_LE(d.count(-100.0), 8.0 + 1e-9);
}

TEST(DecayedRateTest, ObserveIsAHalfLifeEwmaSeededByTheFirstSample) {
  DecayedRate d(10.0);
  d.observe(0.0, 6.0);
  EXPECT_DOUBLE_EQ(d.level(), 6.0) << "first observation seeds the level";
  // One half-life later the level lands halfway to the new value.
  d.observe(10.0, 2.0);
  EXPECT_NEAR(d.level(), 4.0, 1e-9);
  // Long-idle then a new value: history is nearly fully decayed away.
  d.observe(1000.0, 9.0);
  EXPECT_NEAR(d.level(), 9.0, 1e-6);
}

// ---- parse_stats ---------------------------------------------------------

TEST(ParseStats, ReadsDaemonAndRouterShapedDocuments) {
  json::Object rpc;
  rpc["queue_depth"] = json::Value(std::int64_t{3});
  rpc["inflight"] = json::Value(std::int64_t{2});
  rpc["rate_rps"] = json::Value(40.0);
  rpc["latency_p99"] = json::Value(0.004);
  rpc["requests"] = json::Value(std::int64_t{100});
  rpc["crc_errors"] = json::Value(std::int64_t{1});
  rpc["io_errors"] = json::Value(std::int64_t{2});
  json::Object reshard;
  reshard["epoch_to"] = json::Value(std::int64_t{2});
  reshard["blocks_moved"] = json::Value(std::int64_t{10});
  reshard["seconds"] = json::Value(0.05);

  json::Object daemon;
  daemon["epoch"] = json::Value(std::int64_t{2});
  daemon["rpc"] = json::Value(rpc);
  daemon["reshard"] = json::Value(reshard);
  const ctrl::StatsSample s = ctrl::parse_stats(json::Value(daemon));
  EXPECT_TRUE(s.reachable);
  EXPECT_EQ(s.epoch, 2u);
  EXPECT_DOUBLE_EQ(s.queue_depth, 3.0);
  EXPECT_DOUBLE_EQ(s.inflight, 2.0);
  EXPECT_DOUBLE_EQ(s.rate_rps, 40.0);
  EXPECT_EQ(s.requests, 100u);
  EXPECT_EQ(s.errors, 3u);
  EXPECT_EQ(s.warm_epoch_to, 2u);
  EXPECT_EQ(s.warm_blocks, 10u);
  EXPECT_DOUBLE_EQ(s.warm_seconds, 0.05);

  // The router document carries its epoch under "router".
  json::Object router_inner;
  router_inner["epoch"] = json::Value(std::int64_t{5});
  json::Object router;
  router["router"] = json::Value(router_inner);
  EXPECT_EQ(ctrl::parse_stats(json::Value(router)).epoch, 5u);

  // A non-object is the unreachable sample.
  EXPECT_FALSE(ctrl::parse_stats(json::Value()).reachable);
}

// ---- collector -----------------------------------------------------------

TEST(Collector, PollScheduleIsJitteredDeterministicAndReplayable) {
  ctrl::CollectorConfig config;
  config.poll_seconds = 1.0;
  config.poll_jitter_cap = 1.5;
  config.seed = 7;
  const ctrl::Fetcher fetcher = [](const shard::ShardInfo&) {
    ctrl::StatsSample s;
    s.reachable = true;
    s.epoch = 1;
    return s;
  };

  const auto poll_times = [&] {
    ctrl::Collector c(make_map_ptr(1), config, fetcher);
    std::vector<double> times;
    for (double now = 0.0; now < 30.0; now += 0.05) {
      if (c.poll_due(now) > 0) times.push_back(now);
    }
    return times;
  };
  const std::vector<double> a = poll_times();
  const std::vector<double> b = poll_times();
  EXPECT_EQ(a, b) << "the same seed must replay the same schedule";
  ASSERT_GE(a.size(), 10u);
  for (std::size_t i = 1; i < a.size(); ++i) {
    const double gap = a[i] - a[i - 1];
    EXPECT_GE(gap, 1.0 - 1e-9) << "gap below the base poll period";
    EXPECT_LE(gap, 1.5 + 0.05 + 1e-9) << "gap above the jitter cap";
  }

  // A different seed draws a different (still valid) schedule.
  config.seed = 8;
  EXPECT_NE(poll_times(), a);
}

TEST(Collector, UnreachableShardsNeitherDiluteMeansNorDecideTheEpoch) {
  ctrl::CollectorConfig config;
  const ctrl::Fetcher fetcher = [](const shard::ShardInfo& info) {
    ctrl::StatsSample s;
    if (info.id == "s1") return s;  // unreachable
    s.reachable = true;
    s.epoch = 3;
    s.queue_depth = 4.0;
    s.inflight = 1.0;
    return s;
  };
  ctrl::Collector c(make_map_ptr(2, 3), config, fetcher);
  for (int i = 0; i < 4; ++i) c.poll_all(static_cast<double>(i));

  const ctrl::ClusterView v = c.view(4.0);
  EXPECT_EQ(v.reachable, 1u);
  EXPECT_EQ(v.epoch, 3u) << "the reachable shard's epoch decides";
  EXPECT_NEAR(v.mean_queue_depth, 4.0, 1e-9)
      << "means are over reachable shards only";
  EXPECT_NEAR(v.mean_load(), 5.0, 1e-9);
  ASSERT_EQ(v.shards.size(), 2u);
  EXPECT_EQ(v.shards[1].unreachable_streak, 4);
}

TEST(Collector, DisagreeingEpochsReadAsZeroMidHandover) {
  const ctrl::Fetcher fetcher = [](const shard::ShardInfo& info) {
    ctrl::StatsSample s;
    s.reachable = true;
    s.epoch = info.id == "s0" ? 1 : 2;
    return s;
  };
  ctrl::Collector c(make_map_ptr(2), ctrl::CollectorConfig{}, fetcher);
  c.poll_all(0.0);
  EXPECT_EQ(c.view(0.0).epoch, 0u);
}

TEST(Collector, FlappingAccumulatesTransitionsTowardTheEvictThreshold) {
  bool up = false;
  const ctrl::Fetcher fetcher = [&up](const shard::ShardInfo&) {
    ctrl::StatsSample s;
    s.reachable = up;
    s.epoch = 1;
    return s;
  };
  ctrl::Collector c(make_map_ptr(1), ctrl::CollectorConfig{}, fetcher);
  // Down, up, down, up, down: five transitions from the optimistic
  // start within a fraction of the 60 s flap half-life.
  for (int i = 0; i < 5; ++i) {
    up = (i % 2) == 1;
    c.poll_all(static_cast<double>(i));
  }
  EXPECT_GE(c.view(5.0).shards[0].recent_flaps, 4.0);
}

TEST(Collector, SetMapCarriesRetainedEstimatesAndStartsNewOnesFresh) {
  const ctrl::Fetcher fetcher = [](const shard::ShardInfo&) {
    ctrl::StatsSample s;
    s.reachable = true;
    s.epoch = 1;
    s.queue_depth = 2.0;
    return s;
  };
  ctrl::Collector c(make_map_ptr(2), ctrl::CollectorConfig{}, fetcher);
  for (int i = 0; i < 3; ++i) c.poll_all(static_cast<double>(i));

  // Successor keeps s0, drops s1, adds s2.
  std::vector<shard::ShardInfo> shards = {{"s0", "sim:s0"}, {"s2", "sim:s2"}};
  c.set_map(std::make_shared<const shard::ShardMap>(2, 64, shards));
  const ctrl::ClusterView v = c.view(3.0);
  ASSERT_EQ(v.shards.size(), 2u);
  EXPECT_EQ(v.shards[0].id, "s0");
  EXPECT_EQ(v.shards[0].polls, 3u) << "retained estimate must carry over";
  EXPECT_GT(v.shards[0].queue_depth, 0.0);
  EXPECT_EQ(v.shards[1].id, "s2");
  EXPECT_EQ(v.shards[1].polls, 0u) << "added shard starts fresh";
}

TEST(Collector, LearnsWarmingCostFromObservedHandovers) {
  std::uint64_t epoch_to = 0;
  std::uint64_t blocks = 0;
  double seconds = 0.0;
  const ctrl::Fetcher fetcher = [&](const shard::ShardInfo&) {
    ctrl::StatsSample s;
    s.reachable = true;
    s.epoch = 1;
    s.warm_epoch_to = epoch_to;
    s.warm_blocks = blocks;
    s.warm_seconds = seconds;
    return s;
  };
  ctrl::CollectorConfig config;
  config.default_warm_seconds_per_block = 0.005;
  ctrl::Collector c(make_map_ptr(1), config, fetcher);

  c.poll_all(0.0);
  EXPECT_DOUBLE_EQ(c.warm_seconds_per_block(), 0.005)
      << "prior before any observed handover";

  epoch_to = 2;
  blocks = 10;
  seconds = 0.1;  // 0.01 s/block
  c.poll_all(1.0);
  EXPECT_DOUBLE_EQ(c.warm_seconds_per_block(), 0.01);
  // The same handover reported again teaches nothing new.
  c.poll_all(2.0);
  EXPECT_DOUBLE_EQ(c.warm_seconds_per_block(), 0.01);
  // A second handover: EWMA of the two observations.
  epoch_to = 3;
  seconds = 0.3;  // 0.03 s/block
  c.poll_all(3.0);
  EXPECT_DOUBLE_EQ(c.warm_seconds_per_block(), 0.02);
}

// ---- policy --------------------------------------------------------------

ctrl::PolicyConfig fast_policy() {
  ctrl::PolicyConfig p;
  p.sustain_ticks = 1;
  p.min_dwell_seconds = 0.0;
  p.epoch_budget = 100;
  p.budget_window_seconds = 1000.0;
  return p;
}

TEST(Policy, GrowNeedsSustainedSaturationAndASpikeResetsTheStreak) {
  ctrl::PolicyConfig config = fast_policy();
  config.sustain_ticks = 3;
  ctrl::Policy policy(config);

  const ctrl::ClusterView hot = make_view(3, 4.0);
  const ctrl::ClusterView calm = make_view(3, 1.0);
  EXPECT_EQ(policy.decide(hot, 0.0).action, ctrl::Action::hold);
  EXPECT_EQ(policy.decide(hot, 1.0).action, ctrl::Action::hold);
  // One calm tick resets the streak: a spike is not saturation.
  EXPECT_EQ(policy.decide(calm, 2.0).action, ctrl::Action::hold);
  EXPECT_EQ(policy.decide(hot, 3.0).action, ctrl::Action::hold);
  EXPECT_EQ(policy.decide(hot, 4.0).action, ctrl::Action::hold);
  const ctrl::Decision d = policy.decide(hot, 5.0);
  EXPECT_EQ(d.action, ctrl::Action::grow);
  EXPECT_EQ(d.target_shards, 4u);
  EXPECT_NE(d.reason.find("grow 3 -> 4"), std::string::npos) << d.reason;
}

TEST(Policy, ShrinkNeedsIdleLoadHeadroomAndStopsAtMinShards) {
  ctrl::PolicyConfig config = fast_policy();
  config.min_shards = 2;
  ctrl::Policy policy(config);

  // Idle enough, and the survivors stay far from the grow threshold.
  ctrl::Decision d = policy.decide(make_view(4, 0.1), 0.0);
  EXPECT_EQ(d.action, ctrl::Action::shrink);
  EXPECT_EQ(d.target_shards, 3u);

  // At min_shards the idle signal holds.
  d = policy.decide(make_view(2, 0.1), 1.0);
  EXPECT_EQ(d.action, ctrl::Action::hold);
  EXPECT_NE(d.reason.find("min_shards"), std::string::npos) << d.reason;

  // Post-shrink projection above the headroom refuses the oscillation:
  // 2 shards at 1.2 would leave one survivor at 2.4 >= 0.7 * grow.
  ctrl::PolicyConfig wide = fast_policy();
  wide.shrink_queue_depth = 1.5;
  ctrl::Policy headroom(wide);
  d = headroom.decide(make_view(2, 1.2), 0.0);
  EXPECT_EQ(d.action, ctrl::Action::hold);
  EXPECT_NE(d.reason.find("headroom"), std::string::npos) << d.reason;
}

TEST(Policy, HysteresisBandAlonePreventsFlapAtTheGrowThreshold) {
  // Dwell disabled, sustain 1: the band is the only stabilizer left.
  ctrl::Policy policy(fast_policy());

  // Load sits exactly at the grow threshold: grow fires.
  ctrl::Decision d = policy.decide(make_view(3, 2.0), 0.0);
  ASSERT_EQ(d.action, ctrl::Action::grow);
  policy.note_commit(0.0);

  // After the grow the same offered load spreads over 4 shards: 1.5 per
  // shard — far above the shrink threshold, inside the band. However
  // long it persists, the cluster must NOT shrink straight back.
  for (int i = 1; i <= 50; ++i) {
    d = policy.decide(make_view(4, 1.5), static_cast<double>(i));
    ASSERT_EQ(d.action, ctrl::Action::hold)
        << "tick " << i << ": " << d.reason;
    EXPECT_NE(d.reason.find("steady"), std::string::npos) << d.reason;
  }
}

TEST(Policy, DwellAlonePreventsFlapWhenTheBandIsCollapsed) {
  // Degenerate band (shrink just under grow) — oscillation at the grow
  // threshold would flap on thresholds alone. Dwell must hold the line.
  ctrl::PolicyConfig config = fast_policy();
  config.shrink_queue_depth = 1.9;
  config.min_dwell_seconds = 100.0;
  ctrl::Policy policy(config);

  ctrl::Decision d = policy.decide(make_view(3, 2.0), 0.0);
  ASSERT_EQ(d.action, ctrl::Action::grow);
  policy.note_commit(0.0);

  // Post-grow load 1.5 <= shrink 1.9: an immediate shrink signal. Every
  // decision inside the dwell window must hold anyway.
  for (int i = 1; i <= 99; ++i) {
    d = policy.decide(make_view(4, 1.5), static_cast<double>(i));
    ASSERT_EQ(d.action, ctrl::Action::hold)
        << "tick " << i << ": " << d.reason;
    EXPECT_NE(d.reason.find("dwell"), std::string::npos) << d.reason;
  }
}

TEST(Policy, DeadShardIsEvictedDuringDwellButNeverPastTheBudget) {
  ctrl::PolicyConfig config = fast_policy();
  config.min_dwell_seconds = 100.0;
  config.dead_ticks = 3;
  ctrl::Policy policy(config);
  policy.note_commit(0.0);  // dwell is running

  ctrl::ClusterView view = make_view(3, 1.0);
  view.shards[1].reachable = false;
  view.shards[1].unreachable_streak = 3;
  view.reachable = 2;

  const ctrl::Decision d = policy.decide(view, 1.0);
  EXPECT_EQ(d.action, ctrl::Action::evict);
  EXPECT_EQ(d.evict_id, "s1");
  EXPECT_NE(d.reason.find("health overrides dwell"), std::string::npos)
      << d.reason;

  // The budget still binds: with it exhausted, even an eviction waits.
  ctrl::PolicyConfig tight = config;
  tight.epoch_budget = 1;
  tight.budget_window_seconds = 1000.0;
  ctrl::Policy broke(tight);
  broke.note_commit(0.0);
  const ctrl::Decision held = broke.decide(view, 1.0);
  EXPECT_EQ(held.action, ctrl::Action::hold);
  EXPECT_NE(held.reason.find("budget"), std::string::npos) << held.reason;
  EXPECT_NE(held.reason.find("s1"), std::string::npos)
      << "the pending eviction must be named: " << held.reason;
}

TEST(Policy, FlappingShardIsEvicted) {
  ctrl::Policy policy(fast_policy());
  ctrl::ClusterView view = make_view(3, 1.0);
  view.shards[2].recent_flaps = 4.5;  // >= flap_threshold 4.0
  const ctrl::Decision d = policy.decide(view, 0.0);
  EXPECT_EQ(d.action, ctrl::Action::evict);
  EXPECT_EQ(d.evict_id, "s2");
  EXPECT_NE(d.reason.find("flapping"), std::string::npos) << d.reason;
}

TEST(Policy, EpochBudgetRateLimitsAndReArmsWhenTheWindowPasses) {
  ctrl::PolicyConfig config = fast_policy();
  config.epoch_budget = 2;
  config.budget_window_seconds = 100.0;
  ctrl::Policy policy(config);
  policy.note_commit(0.0);
  policy.note_commit(1.0);

  const ctrl::ClusterView hot = make_view(3, 4.0);
  ctrl::Decision d = policy.decide(hot, 2.0);
  EXPECT_EQ(d.action, ctrl::Action::hold);
  EXPECT_NE(d.reason.find("budget"), std::string::npos) << d.reason;
  EXPECT_TRUE(policy.budget_exhausted(2.0));

  // Outside the window the budget re-arms and the (still sustained)
  // saturation acts immediately.
  EXPECT_FALSE(policy.budget_exhausted(102.0));
  d = policy.decide(hot, 102.0);
  EXPECT_EQ(d.action, ctrl::Action::grow);
}

TEST(Policy, CostVetoRefusesMovesWhoseWarmingExceedsTheirBenefit) {
  ctrl::Policy policy(fast_policy());  // horizon 60 s, grow threshold 2

  // A marginal grow (load exactly at the threshold) has zero projected
  // benefit: any nonzero warming cost is vetoed.
  ctrl::PlanReport plan;
  plan.action = ctrl::Action::grow;
  plan.moved_blocks = 16;
  plan.est_warm_seconds = 0.08;
  std::string reason;
  EXPECT_FALSE(policy.approve_plan(make_view(3, 2.0), plan, &reason));
  EXPECT_DOUBLE_EQ(plan.projected_benefit_seconds, 0.0);
  EXPECT_NE(reason.find("veto grow"), std::string::npos) << reason;

  // Twice the threshold projects a whole horizon of benefit.
  EXPECT_TRUE(policy.approve_plan(make_view(3, 4.0), plan, &reason));
  EXPECT_DOUBLE_EQ(plan.projected_benefit_seconds, 60.0);

  // Shrink benefit is one shard's worth of fleet-seconds.
  ctrl::PlanReport shrink;
  shrink.action = ctrl::Action::shrink;
  shrink.est_warm_seconds = 100.0;
  EXPECT_FALSE(policy.approve_plan(make_view(4, 0.1), shrink, &reason));
  EXPECT_DOUBLE_EQ(shrink.projected_benefit_seconds, 15.0);
  shrink.est_warm_seconds = 1.0;
  EXPECT_TRUE(policy.approve_plan(make_view(4, 0.1), shrink, &reason));

  // Evictions are never vetoed: correctness beats cost.
  ctrl::PlanReport evict;
  evict.action = ctrl::Action::evict;
  evict.est_warm_seconds = 1e9;
  EXPECT_TRUE(policy.approve_plan(make_view(3, 1.0), evict, &reason));
}

// ---- planner -------------------------------------------------------------

TEST(Planner, GrowDraftsTheFirstFreeSpareWithExactMovementAccounting) {
  const shard::ShardMap current = make_map(3);
  const std::vector<std::string> keys = make_keys(64);
  ctrl::Planner planner({{"s0", "sim:s0"}, {"s3", "sim:s3"}});

  ctrl::Decision d;
  d.action = ctrl::Action::grow;
  d.reason = "grow 3 -> 4";
  const ctrl::PlanReport plan =
      planner.plan(current, make_view(3, 4.0), d, keys, 0.01, 1);
  ASSERT_NE(plan.next, nullptr) << plan.reason;
  EXPECT_EQ(plan.next->epoch(), 2u);
  EXPECT_EQ(plan.next->vnodes(), current.vnodes());
  EXPECT_EQ(plan.next->size(), 4u);
  EXPECT_EQ(plan.added_id, "s3") << "s0 is already a member; skip it";

  // The movement figure is the exact ring diff, priced per block.
  const std::size_t moved =
      shard::moved_keys(shard::Ring(current), shard::Ring(*plan.next), keys)
          .size();
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(plan.moved_blocks, moved);
  EXPECT_TRUE(plan.moved_exact);
  EXPECT_DOUBLE_EQ(plan.est_warm_seconds,
                   static_cast<double>(moved) * 0.01);

  // The candidate passes the same gate a commit would.
  EXPECT_NO_THROW(shard::validate_successor(current, *plan.next));

  // No free spare left: the plan aborts with a reason, not a bad map.
  ctrl::Planner empty(std::vector<shard::ShardInfo>{{"s0", "sim:s0"}});
  const ctrl::PlanReport aborted =
      empty.plan(current, make_view(3, 4.0), d, keys, 0.01, 1);
  EXPECT_EQ(aborted.next, nullptr);
  EXPECT_NE(aborted.reason.find("no spare"), std::string::npos)
      << aborted.reason;
}

TEST(Planner, ShrinkRetiresTheLeastLoadedShard) {
  const shard::ShardMap current = make_map(3);
  ctrl::Planner planner({});
  ctrl::ClusterView view = make_view(3, 1.0);
  view.shards[0].queue_depth = 3.0;
  view.shards[1].queue_depth = 0.2;  // the idlest
  view.shards[2].queue_depth = 2.0;

  ctrl::Decision d;
  d.action = ctrl::Action::shrink;
  d.reason = "shrink";
  const ctrl::PlanReport plan = planner.plan(current, view, d, {}, 0.01, 1);
  ASSERT_NE(plan.next, nullptr) << plan.reason;
  EXPECT_EQ(plan.removed_id, "s1");
  EXPECT_EQ(plan.next->size(), 2u);
  EXPECT_EQ(plan.next->find("s1"), nullptr);
  EXPECT_FALSE(plan.moved_exact) << "no block keys -> no exact accounting";
  EXPECT_DOUBLE_EQ(plan.est_warm_seconds, 0.0);

  // Shrinking at min_shards aborts.
  const ctrl::PlanReport blocked =
      planner.plan(current, view, d, {}, 0.01, 3);
  EXPECT_EQ(blocked.next, nullptr);
}

TEST(Planner, EvictRemovesTheVictimAndBackfillsBelowMinShards) {
  const shard::ShardMap current = make_map(3);
  ctrl::Planner planner(std::vector<shard::ShardInfo>{{"s3", "sim:s3"}});
  ctrl::Decision d;
  d.action = ctrl::Action::evict;
  d.evict_id = "s1";
  d.reason = "evict s1";

  // min_shards 1: plain removal.
  ctrl::PlanReport plan =
      planner.plan(current, make_view(3, 1.0), d, {}, 0.01, 1);
  ASSERT_NE(plan.next, nullptr) << plan.reason;
  EXPECT_EQ(plan.next->size(), 2u);
  EXPECT_EQ(plan.next->find("s1"), nullptr);

  // min_shards 3: the eviction drafts the spare to stay at strength.
  plan = planner.plan(current, make_view(3, 1.0), d, {}, 0.01, 3);
  ASSERT_NE(plan.next, nullptr) << plan.reason;
  EXPECT_EQ(plan.next->size(), 3u);
  EXPECT_EQ(plan.next->find("s1"), nullptr);
  EXPECT_NE(plan.next->find("s3"), nullptr);

  // Unknown victim: abort.
  d.evict_id = "nope";
  plan = planner.plan(current, make_view(3, 1.0), d, {}, 0.01, 1);
  EXPECT_EQ(plan.next, nullptr);
}

// ---- controller ----------------------------------------------------------

/// A scripted single-process fleet: every member answers with the epoch
/// in `adopted` and the given per-shard queue depth.
struct FakeFleet {
  std::uint64_t adopted = 1;
  double queue_depth = 0.0;

  ctrl::Fetcher fetcher() {
    return [this](const shard::ShardInfo&) {
      ctrl::StatsSample s;
      s.reachable = true;
      s.epoch = adopted;
      s.queue_depth = queue_depth;
      return s;
    };
  }
};

ctrl::ControllerConfig fast_ctrl_config() {
  ctrl::ControllerConfig config;
  config.policy = fast_policy();
  config.collector.poll_seconds = 0.5;
  config.spares = {{"s3", "sim:s3"}};
  config.converge_timeout_seconds = 5.0;
  return config;
}

TEST(Controller, DryRunPlansEverythingAndCommitsNothing) {
  FakeFleet fleet;
  fleet.queue_depth = 4.0;
  ctrl::ControllerConfig config = fast_ctrl_config();
  config.dry_run = true;
  ctrl::Controller controller(
      make_map_ptr(3), config, fleet.fetcher(),
      [](const shard::ShardMap&) { FAIL() << "dry-run must never commit"; });

  const ctrl::StepReport report = controller.step(0.0);
  EXPECT_FALSE(report.committed);
  EXPECT_NE(report.reason.find("dry-run"), std::string::npos)
      << report.reason;
  EXPECT_EQ(controller.stats().epochs_committed, 0u);
  EXPECT_EQ(controller.map()->epoch(), 1u);
  EXPECT_EQ(controller.state(), ctrl::CtrlState::observe);
}

TEST(Controller, CommitEntersConvergeAndObservesAdoption) {
  FakeFleet fleet;
  fleet.queue_depth = 4.0;
  std::uint64_t committed_epoch = 0;
  ctrl::Controller controller(
      make_map_ptr(3), fast_ctrl_config(), fleet.fetcher(),
      [&](const shard::ShardMap& map) { committed_epoch = map.epoch(); });

  ctrl::StepReport report = controller.step(0.0);
  EXPECT_TRUE(report.committed);
  EXPECT_EQ(report.epoch, 2u);
  EXPECT_EQ(committed_epoch, 2u);
  EXPECT_EQ(controller.map()->size(), 4u);
  EXPECT_EQ(controller.state(), ctrl::CtrlState::converge);

  // The fleet still serves epoch 1: converge keeps watching (and takes
  // no new decision — one membership change in flight at a time).
  report = controller.step(1.0);
  EXPECT_FALSE(report.committed);
  EXPECT_EQ(report.reason, "converging");
  EXPECT_EQ(controller.state(), ctrl::CtrlState::converge);

  // Adoption: the next step sees every member on the target epoch.
  fleet.adopted = 2;
  report = controller.step(2.0);
  EXPECT_EQ(controller.state(), ctrl::CtrlState::observe);
  EXPECT_NE(report.reason.find("converged"), std::string::npos)
      << report.reason;
  EXPECT_EQ(controller.stats().converged, 1u);
  EXPECT_EQ(controller.stats().converge_timeouts, 0u);
}

TEST(Controller, ConvergeTimeoutGivesUpWatchingButKeepsTheMap) {
  FakeFleet fleet;
  fleet.queue_depth = 4.0;
  ctrl::Controller controller(make_map_ptr(3), fast_ctrl_config(),
                              fleet.fetcher(),
                              [](const shard::ShardMap&) {});
  ASSERT_TRUE(controller.step(0.0).committed);
  // The fleet never adopts (stays on epoch 1); past the 5 s deadline the
  // controller stops watching, counts the timeout, keeps the map.
  controller.step(1.0);
  const ctrl::StepReport report = controller.step(6.0);
  EXPECT_EQ(controller.state(), ctrl::CtrlState::observe);
  EXPECT_NE(report.reason.find("timeout"), std::string::npos)
      << report.reason;
  EXPECT_EQ(controller.stats().converge_timeouts, 1u);
  EXPECT_EQ(controller.map()->epoch(), 2u);
}

TEST(Controller, PlanOnceScoresButNeverCommitsEvenWhenVetoed) {
  FakeFleet fleet;
  fleet.queue_depth = 0.0;  // idle: a forced grow has zero benefit
  ctrl::ControllerConfig config = fast_ctrl_config();
  config.block_keys = make_keys(64);
  bool committed = false;
  ctrl::Controller controller(
      make_map_ptr(3), config, fleet.fetcher(),
      [&](const shard::ShardMap&) { committed = true; });

  const ctrl::PlanReport plan =
      controller.plan_once(0.0, ctrl::Action::grow);
  EXPECT_FALSE(committed);
  ASSERT_NE(plan.next, nullptr) << plan.reason;
  EXPECT_EQ(plan.next->epoch(), 2u);
  EXPECT_TRUE(plan.moved_exact);
  EXPECT_GT(plan.moved_blocks, 0u);
  EXPECT_FALSE(plan.approved) << "zero-benefit grow must carry the veto";
  EXPECT_NE(plan.veto_reason.find("veto"), std::string::npos)
      << plan.veto_reason;
  // The printed candidate passes validate_successor verbatim.
  EXPECT_NO_THROW(
      shard::validate_successor(*controller.map(), *plan.next));
  // And the report document carries the map + the accounting.
  const json::Value doc = plan.to_json();
  EXPECT_TRUE(doc.at("map").is_object());
  EXPECT_EQ(doc.at("map").at("epoch").as_int(), 2);
  EXPECT_EQ(controller.stats().epochs_committed, 0u);
}

// ---- simulation harness --------------------------------------------------

ctrl::SimConfig ramp_config() {
  ctrl::SimConfig config;
  config.seed = 42;
  config.ticks = 800;
  config.tick_seconds = 0.25;
  config.initial_shards = 3;
  config.spare_count = 2;
  config.blocks = 64;
  config.noise = 0.03;
  config.adopt_ticks = 2;
  // Steady (in-band) -> saturating ramp -> idle tail. 9.6 total over 5
  // shards is 1.92 per shard: just inside the band, so the grown fleet
  // settles; 0.9 over 5 is 0.18: below the shrink threshold with
  // headroom to spare.
  config.load = {{20.0, 3.0}, {120.0, 9.6}, {200.0, 0.9}};
  config.policy.sustain_ticks = 2;
  config.policy.min_dwell_seconds = 3.0;
  config.policy.epoch_budget = 8;
  config.policy.budget_window_seconds = 1000.0;
  config.collector.poll_seconds = 0.25;
  config.collector.halflife_seconds = 1.0;
  return config;
}

TEST(Sim, LoadRampGrowsThenShrinksBackWithinTheEpochBudget) {
  const ctrl::SimResult result = ctrl::run_sim(ramp_config());
  EXPECT_EQ(result.max_shards, 5u) << result.trace();
  EXPECT_EQ(result.final_shards, 3u) << result.trace();
  EXPECT_EQ(result.stats.grows, 2u) << result.trace();
  EXPECT_EQ(result.stats.shrinks, 2u) << result.trace();
  EXPECT_EQ(result.epochs_committed, 4u) << result.trace();
  EXPECT_EQ(result.stats.converge_timeouts, 0u) << result.trace();
  EXPECT_EQ(result.stats.converged, result.epochs_committed)
      << result.trace();
}

TEST(Sim, ReplayIsBitwiseIdentical) {
  const ctrl::SimResult a = ctrl::run_sim(ramp_config());
  const ctrl::SimResult b = ctrl::run_sim(ramp_config());
  EXPECT_EQ(a.trace(), b.trace());
  EXPECT_EQ(a.stats.ticks, b.stats.ticks);
  EXPECT_EQ(a.epochs_committed, b.epochs_committed);

  // A different seed draws different jitter but the same converged
  // behavior — the policy is robust to the noise, not tuned to one draw.
  ctrl::SimConfig other = ramp_config();
  other.seed = 1337;
  const ctrl::SimResult c = ctrl::run_sim(other);
  EXPECT_EQ(c.max_shards, 5u) << c.trace();
  EXPECT_EQ(c.final_shards, 3u) << c.trace();
}

TEST(Sim, SteadyLoadCommitsZeroEpochs) {
  ctrl::SimConfig config = ramp_config();
  config.load = {{1000.0, 3.0}};  // 1.0 per shard: inside the band
  const ctrl::SimResult result = ctrl::run_sim(config);
  EXPECT_EQ(result.epochs_committed, 0u) << result.trace();
  EXPECT_EQ(result.final_shards, 3u);
  EXPECT_EQ(result.stats.grows, 0u);
  EXPECT_EQ(result.stats.shrinks, 0u);
}

TEST(Sim, DeadShardIsEvictedAndBackfilledToMinShards) {
  ctrl::SimConfig config = ramp_config();
  config.load = {{1000.0, 3.0}};  // steady: only health can act
  config.die_at = {{"s1", 10.0}};
  config.policy.min_shards = 3;  // the eviction must draft a spare
  const ctrl::SimResult result = ctrl::run_sim(config);
  EXPECT_EQ(result.stats.evicts, 1u) << result.trace();
  EXPECT_EQ(result.final_shards, 3u) << result.trace();
  bool saw_evict = false;
  for (const std::string& e : result.events) {
    if (e.find("evict") != std::string::npos) saw_evict = true;
  }
  EXPECT_TRUE(saw_evict) << result.trace();
}

}  // namespace
