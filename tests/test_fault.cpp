// Tests for gs::fault — deterministic injection plans, bounded retries,
// crash-consistent BP commits under kills, bitwise checkpoint/restart,
// scheduler resume-from-checkpoint, degraded service responses, and the
// Lustre-model hook. Every scenario is seeded/op-indexed, so a failure
// here replays identically.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "bp/manifest.h"
#include "bp/reader.h"
#include "bp/writer.h"
#include "common/rng.h"
#include "config/settings.h"
#include "core/workflow.h"
#include "fault/fault.h"
#include "grid/decomp.h"
#include "lustre/lustre_model.h"
#include "mpi/runtime.h"
#include "sched/payload.h"
#include "svc/service.h"

namespace {

namespace fs = std::filesystem;
using gs::Box3;
using gs::Decomposition;
using gs::Index3;
using gs::Settings;
using gs::fault::Injection;
using gs::fault::InjectedFault;
using gs::fault::Injector;
using gs::fault::Kill;
using gs::fault::Kind;
using gs::fault::Plan;
using gs::fault::RetryPolicy;
using gs::fault::ScopedPlan;

std::string temp_path(const std::string& name) {
  // Per-process suffix: ctest -j runs test binaries concurrently.
  static const std::string pid = std::to_string(::getpid());
  return (fs::path(testing::TempDir()) / (name + "." + pid + ".bp"))
      .string();
}

double cell_value(const Index3& g, const Index3& shape, std::int64_t step) {
  return static_cast<double>(gs::linear_index(g, shape)) +
         1e6 * static_cast<double>(step);
}

/// Writes `n_steps` of a global L^3 "U" and "V" with 4 ranks, 2 per node
/// (subfiles data.0 and data.1). Throws whatever the ranks throw.
void write_uv(const std::string& path, std::int64_t L, int n_steps) {
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(L, world.size());
    const Box3 box = d.local_box(world.rank());
    const Index3 shape{L, L, L};
    gs::bp::Writer w(path, world, /*ranks_per_node=*/2);
    for (int s = 0; s < n_steps; ++s) {
      std::vector<double> block(static_cast<std::size_t>(box.volume()));
      std::size_t n = 0;
      for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
        for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
          for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
            block[n++] = cell_value({i, j, k}, shape, s);
          }
        }
      }
      std::vector<double> vblock(block.size());
      for (std::size_t m = 0; m < block.size(); ++m) vblock[m] = -block[m];
      w.begin_step();
      w.put("U", shape, box, block);
      w.put("V", shape, box, vblock);
      w.put_scalar("step", 10 * s);
      w.end_step();
    }
    w.close();
  });
}

/// Bitwise equality of two double fields (no epsilon: restart must be
/// exact, not close).
bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// ------------------------------------------------------------ plan/injector

TEST(FaultPlan, ArmedOpsFireAtExactIndices) {
  Plan plan;
  plan.fail_at("unit.site", 2);
  ScopedPlan scoped(plan);
  auto& inj = Injector::instance();
  for (std::uint64_t op = 0; op < 5; ++op) {
    const auto hit = inj.consume("unit.site");
    if (op == 2) {
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(hit->kind, Kind::fail);
    } else {
      EXPECT_FALSE(hit.has_value()) << "op " << op;
    }
  }
  EXPECT_EQ(inj.ops("unit.site"), 5u);
  EXPECT_EQ(inj.injected(), 1u);
  const auto stats = inj.stats();
  ASSERT_TRUE(stats.count("unit.site"));
  EXPECT_EQ(stats.at("unit.site").ops, 5u);
  EXPECT_EQ(stats.at("unit.site").injected, 1u);
}

TEST(FaultPlan, ReinstallResetsCountersAndReplaysIdentically) {
  Plan plan;
  plan.fail_at("replay.site", 3);
  const auto fired_ops = [&] {
    ScopedPlan scoped(plan);
    std::set<std::uint64_t> fired;
    for (std::uint64_t op = 0; op < 6; ++op) {
      if (Injector::instance().consume("replay.site")) fired.insert(op);
    }
    return fired;
  };
  const auto first = fired_ops();
  const auto second = fired_ops();  // same plan, fresh install
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, std::set<std::uint64_t>{3});
  // Uninstalled: the hook is a no-op and counters stay frozen.
  EXPECT_FALSE(Injector::instance().active());
  EXPECT_FALSE(Injector::instance().consume("replay.site").has_value());
  EXPECT_EQ(Injector::instance().ops("replay.site"), 0u);
}

TEST(FaultPlan, ArmRandomIsDeterministicInSeedAndSite) {
  const auto sample = [](std::uint64_t seed) {
    Plan p;
    p.arm_random("rand.site", 0.25, Kind::fail, seed, /*horizon=*/200,
                 /*budget=*/12);
    ScopedPlan scoped(p);
    std::set<std::uint64_t> fired;
    for (std::uint64_t op = 0; op < 200; ++op) {
      if (Injector::instance().consume("rand.site")) fired.insert(op);
    }
    return fired;
  };
  const auto a = sample(99);
  const auto b = sample(99);
  EXPECT_EQ(a, b);                  // pure function of (seed, site)
  EXPECT_FALSE(a.empty());
  EXPECT_LE(a.size(), 12u);         // budget cap
  EXPECT_NE(a, sample(100));        // and the seed actually matters
}

TEST(FaultInjector, CheckActsOnEachKind) {
  static_assert(!std::is_base_of_v<gs::Error, Kill>,
                "Kill must not be absorbable by gs::Error handlers");
  static_assert(std::is_base_of_v<gs::IoError, InjectedFault>,
                "InjectedFault must look like a transient I/O error");

  Plan plan;
  plan.fail_at("k.fail", 0);
  plan.kill_at("k.kill", 0);
  plan.corrupt_at("k.corrupt", 0, /*byte_offset=*/3, /*xor_mask=*/0x80);
  plan.delay_at("k.delay", 0, 1e-6);
  ScopedPlan scoped(plan);
  auto& inj = Injector::instance();

  EXPECT_THROW(inj.check("k.fail"), InjectedFault);
  EXPECT_THROW(inj.check("k.kill"), Kill);

  std::vector<std::byte> payload(8, std::byte{0x11});
  inj.check("k.corrupt", payload);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(payload[i], i == 3 ? std::byte{0x91} : std::byte{0x11});
  }
  EXPECT_NO_THROW(inj.check("k.delay"));
  EXPECT_EQ(inj.injected(), 4u);
}

// ------------------------------------------------------------------ retries

TEST(FaultRetry, AbsorbsTransientsUpToBudget) {
  Plan plan;
  plan.fail_at("retry.site", 0);
  plan.fail_at("retry.site", 1);
  ScopedPlan scoped(plan);
  RetryPolicy policy;
  policy.attempts = 3;
  policy.backoff_seconds = 1e-6;
  int calls = 0;
  gs::fault::with_retries(policy, "unit", [&] {
    ++calls;
    Injector::instance().check("retry.site");
  });
  EXPECT_EQ(calls, 3);  // two injected failures, third try clean
}

TEST(FaultRetry, ExhaustedBudgetRethrowsTheIoError) {
  Plan plan;
  for (std::uint64_t op = 0; op < 3; ++op) plan.fail_at("retry.site", op);
  ScopedPlan scoped(plan);
  RetryPolicy policy;
  policy.attempts = 3;
  policy.backoff_seconds = 1e-6;
  int calls = 0;
  EXPECT_THROW(gs::fault::with_retries(policy, "unit",
                                       [&] {
                                         ++calls;
                                         Injector::instance().check(
                                             "retry.site");
                                       }),
               InjectedFault);
  EXPECT_EQ(calls, 3);
}

TEST(FaultRetry, KillIsNeverRetried) {
  Plan plan;
  plan.kill_at("retry.site", 0);
  ScopedPlan scoped(plan);
  RetryPolicy policy;
  policy.attempts = 5;
  policy.backoff_seconds = 1e-6;
  int calls = 0;
  EXPECT_THROW(gs::fault::with_retries(policy, "unit",
                                       [&] {
                                         ++calls;
                                         Injector::instance().check(
                                             "retry.site");
                                       }),
               Kill);
  EXPECT_EQ(calls, 1);  // a crash is not a transient
}

// ------------------------------------------------- writer under transients

TEST(FaultBp, TransientWriteFaultsHealViaRetryBitwise) {
  const std::string clean = temp_path("retry_clean");
  const std::string faulted = temp_path("retry_faulted");
  fs::remove_all(clean);
  fs::remove_all(faulted);
  write_uv(clean, 8, 2);

  Plan plan;
  plan.fail_at("bp.writer.open_subfile/data.1", 0);
  plan.fail_at("bp.writer.write_block/data.0", 1);
  plan.fail_at("bp.writer.write_index", 0);
  std::uint64_t injected = 0;
  {
    ScopedPlan scoped(plan);
    write_uv(faulted, 8, 2);  // default Writer retry budget absorbs all 3
    injected = Injector::instance().injected();
  }
  EXPECT_EQ(injected, 3u);

  const gs::bp::Reader a(clean);
  const gs::bp::Reader b(faulted);
  ASSERT_EQ(b.n_steps(), 2);
  for (std::int64_t s = 0; s < 2; ++s) {
    EXPECT_TRUE(bitwise_equal(a.read_full("U", s), b.read_full("U", s)));
    EXPECT_TRUE(bitwise_equal(a.read_full("V", s), b.read_full("V", s)));
  }
  EXPECT_EQ(gs::bp::validate_against_manifest(faulted), "");
  fs::remove_all(clean);
  fs::remove_all(faulted);
}

// ------------------------------------------------------- kills and recovery

TEST(FaultBp, KillDuringSubfileWriteRollsBack) {
  const std::string path = temp_path("kill_write");
  fs::remove_all(path);
  write_uv(path, 8, 1);  // committed old content

  Plan plan;
  plan.kill_at("bp.writer.write_block/data.0", 0);
  {
    ScopedPlan scoped(plan);
    EXPECT_THROW(write_uv(path, 8, 2), Kill);  // rewrite dies mid-subfile
  }
  EXPECT_TRUE(fs::exists(gs::bp::staging_path(path)));

  const auto res = gs::bp::recover(path);
  EXPECT_EQ(res.action, gs::bp::RecoverAction::rolled_back);
  EXPECT_FALSE(fs::exists(gs::bp::staging_path(path)));

  // Old content survives untouched.
  gs::bp::Reader r(path);
  EXPECT_EQ(r.n_steps(), 1);
  EXPECT_TRUE(r.verify().clean());
  fs::remove_all(path);
}

TEST(FaultBp, KillBeforeManifestRollsBackKillAfterRollsForward) {
  // Kill at the manifest site: the commit point was never reached.
  {
    const std::string path = temp_path("kill_manifest");
    fs::remove_all(path);
    write_uv(path, 8, 1);
    Plan plan;
    plan.kill_at("bp.writer.manifest", 0);
    {
      ScopedPlan scoped(plan);
      EXPECT_THROW(write_uv(path, 8, 2), Kill);
    }
    EXPECT_EQ(gs::bp::recover(path).action,
              gs::bp::RecoverAction::rolled_back);
    gs::bp::Reader r(path);
    EXPECT_EQ(r.n_steps(), 1);  // old content
    fs::remove_all(path);
  }
  // Kill at the promote site: the manifest landed, so the new dataset is
  // logically committed even though promotion never ran.
  {
    const std::string path = temp_path("kill_promote");
    fs::remove_all(path);
    write_uv(path, 8, 1);
    Plan plan;
    plan.kill_at("bp.writer.promote", 0);
    {
      ScopedPlan scoped(plan);
      EXPECT_THROW(write_uv(path, 8, 2), Kill);
    }
    EXPECT_EQ(gs::bp::recover(path).action,
              gs::bp::RecoverAction::rolled_forward);
    gs::bp::Reader r(path);
    EXPECT_EQ(r.n_steps(), 2);  // new content
    EXPECT_TRUE(r.verify().clean());
    fs::remove_all(path);
  }
}

TEST(FaultBp, NextWriterHealsInterruptedCommit) {
  const std::string path = temp_path("heal_on_open");
  fs::remove_all(path);
  write_uv(path, 8, 1);
  Plan plan;
  plan.kill_at("bp.writer.promote", 0);
  {
    ScopedPlan scoped(plan);
    EXPECT_THROW(write_uv(path, 8, 2), Kill);
  }
  // No explicit recover(): the next Writer's constructor must heal the
  // interrupted commit (roll the 2-step dataset forward) before
  // appending to it.
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    const Decomposition d = Decomposition::cube(8, world.size());
    const Box3 box = d.local_box(world.rank());
    const Index3 shape{8, 8, 8};
    gs::bp::Writer w(path, world, 2, nullptr, gs::bp::Mode::append);
    std::vector<double> block(static_cast<std::size_t>(box.volume()));
    std::size_t n = 0;
    for (std::int64_t k = box.start.k; k < box.end().k; ++k) {
      for (std::int64_t j = box.start.j; j < box.end().j; ++j) {
        for (std::int64_t i = box.start.i; i < box.end().i; ++i) {
          block[n++] = cell_value({i, j, k}, shape, 2);
        }
      }
    }
    w.begin_step();
    w.put("U", shape, box, block);
    w.end_step();
    w.close();
  });
  gs::bp::Reader r(path);
  EXPECT_EQ(r.n_steps(), 3);  // 2 rolled-forward + 1 appended
  EXPECT_TRUE(r.verify().clean());
  const auto full = r.read_full("U", 2);
  EXPECT_DOUBLE_EQ(full[3], cell_value({3, 0, 0}, {8, 8, 8}, 2));
  fs::remove_all(path);
}

// -------------------------------------------- workflow checkpoint/restart

Settings workflow_settings(const std::string& tag) {
  Settings s;
  s.L = 16;
  s.steps = 12;
  s.plotgap = 4;
  s.backend = gs::KernelBackend::host_reference;
  s.ranks_per_node = 2;
  s.checkpoint = true;
  s.checkpoint_freq = 6;
  s.output = temp_path("wf_out_" + tag);
  s.checkpoint_output = temp_path("wf_ck_" + tag);
  s.io_retry_backoff_ms = 0.01;
  fs::remove_all(s.output);
  fs::remove_all(s.checkpoint_output);
  return s;
}

gs::core::RunReport run_workflow(const Settings& s) {
  gs::core::RunReport root;
  gs::mpi::run(4, [&](gs::mpi::Comm& world) {
    gs::core::Workflow workflow(s, world);
    const auto report = workflow.run();
    if (world.rank() == 0) root = report;
  });
  return root;
}

TEST(FaultWorkflow, KillAndResumeIsBitwiseIdentical) {
  // Reference trajectory, no faults.
  const Settings clean = workflow_settings("clean");
  const auto clean_report = run_workflow(clean);
  EXPECT_EQ(clean_report.checkpoints_written, 2);  // steps 6 and 12

  // Faulted run: die during the SECOND checkpoint's index write (after
  // the step-6 checkpoint committed). md.idx write order in one run:
  // ckpt@6 (op 0), ckpt@12 (op 1), output close (op 2).
  Settings faulted = workflow_settings("faulted");
  Plan plan;
  plan.kill_at("bp.writer.write_index", 1);
  {
    ScopedPlan scoped(plan);
    EXPECT_THROW(run_workflow(faulted), Kill);
  }

  // Resume from the surviving checkpoint. try_restart() heals the torn
  // ckpt@12 staging (rolls back to the committed ckpt@6) on its own.
  Settings resumed = faulted;
  resumed.restart = true;
  resumed.restart_input = faulted.checkpoint_output;
  const auto report = run_workflow(resumed);
  EXPECT_TRUE(report.restarted);
  EXPECT_EQ(report.first_step, 6);
  EXPECT_EQ(report.steps_run, 6);  // 7..12

  // The resumed trajectory equals the uninterrupted one, bitwise: the
  // final checkpoint (state at step 12, stored in double) and the final
  // output step must match exactly.
  const gs::bp::Reader ck_a(clean.checkpoint_output);
  const gs::bp::Reader ck_b(resumed.checkpoint_output);
  ASSERT_EQ(ck_a.n_steps(), 1);
  ASSERT_EQ(ck_b.n_steps(), 1);
  EXPECT_EQ(ck_a.read_scalar("step", 0), 12);
  EXPECT_EQ(ck_b.read_scalar("step", 0), 12);
  EXPECT_TRUE(bitwise_equal(ck_a.read_full("U", 0), ck_b.read_full("U", 0)));
  EXPECT_TRUE(bitwise_equal(ck_a.read_full("V", 0), ck_b.read_full("V", 0)));

  const gs::bp::Reader out_a(clean.output);
  const gs::bp::Reader out_b(resumed.output);
  EXPECT_TRUE(bitwise_equal(out_a.read_full("U", out_a.n_steps() - 1),
                            out_b.read_full("U", out_b.n_steps() - 1)));

  for (const auto& s : {clean, faulted, resumed}) {
    fs::remove_all(s.output);
    fs::remove_all(s.checkpoint_output);
  }
}

TEST(FaultWorkflow, RestartRefusesForeignSeed) {
  const Settings s = workflow_settings("seedcheck");
  run_workflow(s);
  Settings other = s;
  other.restart = true;
  other.restart_input = s.checkpoint_output;
  other.seed = s.seed + 1;  // different noise stream
  EXPECT_THROW(run_workflow(other), gs::Error);
  fs::remove_all(s.output);
  fs::remove_all(s.checkpoint_output);
}

TEST(FaultWorkflow, TransientRestartReadFaultIsRetried) {
  const Settings s = workflow_settings("restart_retry");
  run_workflow(s);
  Settings resumed = s;
  resumed.restart = true;
  resumed.restart_input = s.checkpoint_output;
  fs::remove_all(resumed.output);
  Plan plan;
  // One transient failure at the restart read's first subfile open:
  // whichever rank draws it absorbs the fault through its retry budget.
  plan.fail_at("bp.reader.open_subfile/data.0", 0);
  {
    ScopedPlan scoped(plan);
    const auto report = run_workflow(resumed);
    EXPECT_TRUE(report.restarted);
    EXPECT_EQ(report.first_step, 12);
  }
  fs::remove_all(s.output);
  fs::remove_all(s.checkpoint_output);
}

// ----------------------------------------------------- scheduler resume

TEST(FaultSched, RetryAttemptResumesFromCheckpoint) {
  Settings s;
  s.L = 16;
  s.steps = 6;
  s.plotgap = 3;
  s.backend = gs::KernelBackend::host_reference;
  s.ranks_per_node = 2;
  s.checkpoint = true;
  s.checkpoint_freq = 4;
  s.output = temp_path("sched_out");
  s.checkpoint_output = temp_path("sched_ck");
  fs::remove_all(s.output);
  fs::remove_all(s.checkpoint_output);

  gs::sched::Job job;
  job.spec.nodes = 2;
  job.spec.ranks_per_node = 2;
  job.spec.payload.kind = gs::sched::PayloadKind::functional;
  job.spec.payload.settings = s;

  // Attempt 1: full run from step 0; leaves a checkpoint at step 4.
  job.attempts = 1;
  const auto first = gs::sched::run_payload(job, /*seed=*/1);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.resumed);
  EXPECT_EQ(first.steps_run, 6);

  // Attempt 2 (a retry): resumes from that checkpoint instead of
  // recomputing from step 0.
  job.attempts = 2;
  const auto second = gs::sched::run_payload(job, /*seed=*/1);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.first_step, 4);
  EXPECT_EQ(second.steps_run, 2);  // 5..6

  fs::remove_all(s.output);
  fs::remove_all(s.checkpoint_output);
}

// ------------------------------------------------------------- service

TEST(FaultSvc, AdmissionFaultRejectsJustThatRequest) {
  const std::string path = temp_path("svc_admission");
  fs::remove_all(path);
  write_uv(path, 8, 1);
  gs::svc::Service service(path);

  Plan plan;
  plan.fail_at("svc.admission", 0);
  ScopedPlan scoped(plan);

  gs::svc::Request req;
  req.body = gs::svc::FieldStatsQ{"U", 0};
  const auto rejected = service.call(req);
  EXPECT_EQ(rejected.status.code, gs::svc::StatusCode::internal_error);

  gs::svc::Request again;
  again.body = gs::svc::FieldStatsQ{"U", 0};
  const auto accepted = service.call(again);
  EXPECT_TRUE(accepted.status.ok());
  EXPECT_FALSE(accepted.degraded);
  fs::remove_all(path);
}

TEST(FaultSvc, CorruptBlockYieldsDegradedPartialAnswer) {
  const std::string path = temp_path("svc_degraded");
  fs::remove_all(path);
  write_uv(path, 8, 1);
  // Physically flip a byte in one U block.
  {
    gs::bp::Reader r(path);
    const auto blocks = r.blocks("U", 0);
    ASSERT_FALSE(blocks.empty());
    const auto& victim = blocks[0];
    const std::string subfile = gs::bp::subfile_name(victim.subfile);
    std::fstream f(fs::path(path) / subfile,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(victim.offset) + 8);
    char c;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x20);
    f.seekp(static_cast<std::streamoff>(victim.offset) + 8);
    f.write(&c, 1);
  }

  gs::svc::Service service(path);
  gs::svc::Request req;
  req.body = gs::svc::ReadBoxQ{"U", 0, Box3{{0, 0, 0}, {8, 8, 8}}};
  const auto resp = service.call(req);
  ASSERT_TRUE(resp.status.ok());  // partial answer beats no answer
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.bad_blocks, 1u);
  EXPECT_EQ(service.metrics().degraded, 1u);

  // The undamaged variable still answers clean.
  gs::svc::Request vq;
  vq.body = gs::svc::ReadBoxQ{"V", 0, Box3{{0, 0, 0}, {8, 8, 8}}};
  const auto vresp = service.call(vq);
  ASSERT_TRUE(vresp.status.ok());
  EXPECT_FALSE(vresp.degraded);
  EXPECT_EQ(service.metrics().degraded, 1u);
  fs::remove_all(path);
}

// ------------------------------------------------------------- lustre

TEST(FaultLustre, DelayFoldsIntoModeledStripeTime) {
  const gs::lustre::LustreModel model;
  gs::Rng rng_a(7);
  const auto clean = model.simulate_write(8, 1 << 20, rng_a);

  Plan plan;
  plan.delay_at("lustre.write", 0, 5.0);
  ScopedPlan scoped(plan);
  gs::Rng rng_b(7);  // same jitter stream
  const auto slow = model.simulate_write(8, 1 << 20, rng_b);
  EXPECT_NEAR(slow.seconds, clean.seconds + 5.0, 1e-9);
  EXPECT_LT(slow.aggregate_bw, clean.aggregate_bw);
}

TEST(FaultLustre, FailThrowsInjectedFault) {
  const gs::lustre::LustreModel model;
  Plan plan;
  plan.fail_at("lustre.write", 0);
  ScopedPlan scoped(plan);
  gs::Rng rng(7);
  EXPECT_THROW(model.simulate_write(8, 1 << 20, rng), InjectedFault);
  // Only op 0 was armed: the next write proceeds.
  gs::Rng rng2(7);
  EXPECT_NO_THROW(model.simulate_write(8, 1 << 20, rng2));
}

// ----------------------------------------------------------- backoff

TEST(FaultBackoff, JitteredScheduleIsDeterministicBoundedAndReplayable) {
  RetryPolicy policy;
  policy.backoff_seconds = 1e-3;
  policy.max_backoff_seconds = 0.05;
  policy.jitter = true;

  gs::fault::Backoff a(policy, /*seed=*/1234);
  gs::fault::Backoff b(policy, /*seed=*/1234);
  std::vector<double> schedule;
  for (int i = 0; i < 32; ++i) {
    const double sleep = a.next();
    EXPECT_EQ(sleep, b.next()) << "same seed, same schedule (step " << i
                               << ")";
    EXPECT_GE(sleep, policy.backoff_seconds) << "step " << i;
    EXPECT_LE(sleep, policy.max_backoff_seconds) << "step " << i;
    schedule.push_back(sleep);
  }
  EXPECT_EQ(schedule.front(), policy.backoff_seconds)
      << "the first retry is prompt and deterministic, jitter or not";

  // reset() rewinds to the first-sleep state AND re-seeds the RNG: the
  // replayed schedule is bitwise the original (how a failing probe run
  // is reproduced).
  a.reset();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next(), schedule[static_cast<std::size_t>(i)]) << i;
  }

  // Different seeds decorrelate: two callers backing off from the same
  // outage must not march in lockstep (that is the stampede jitter
  // exists to break). The first sleep is shared by design; later ones
  // must diverge somewhere.
  gs::fault::Backoff c(policy, /*seed=*/99);
  bool diverged = false;
  for (int i = 0; i < 32; ++i) {
    if (c.next() != schedule[static_cast<std::size_t>(i)]) diverged = true;
  }
  EXPECT_TRUE(diverged);

  // And the per-site seed derivation feeds that decorrelation: distinct
  // call sites (or distinct jitter_seed mixes) get distinct streams.
  EXPECT_NE(gs::fault::detail::backoff_seed("shard.probe/s0", 0),
            gs::fault::detail::backoff_seed("shard.probe/s1", 0));
  EXPECT_NE(gs::fault::detail::backoff_seed("shard.probe/s0", 0),
            gs::fault::detail::backoff_seed("shard.probe/s0", 1));
}

TEST(FaultBackoff, JitterOffReproducesCappedExponential) {
  RetryPolicy policy;
  policy.backoff_seconds = 1e-3;
  policy.multiplier = 2.0;
  policy.max_backoff_seconds = 0.016;
  policy.jitter = false;

  gs::fault::Backoff backoff(policy, /*seed=*/7);
  double expected = policy.backoff_seconds;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(backoff.next(), expected) << "step " << i;
    expected = std::min(expected * policy.multiplier,
                        policy.max_backoff_seconds);
  }
  // 1e-3 doubles past the cap after 4 retries and then pins there.
  EXPECT_EQ(backoff.next(), policy.max_backoff_seconds);
}

}  // namespace
