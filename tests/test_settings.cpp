// Tests for gs::Settings — the GrayScott.jl settings-files.json equivalent.
#include <gtest/gtest.h>

#include <cstdlib>

#include "config/settings.h"

namespace {

using gs::KernelBackend;
using gs::Settings;

TEST(Settings, DefaultsMatchPaperListing1) {
  const Settings s;
  // Listing 1 provenance: Du=0.2 Dv=0.1 F=0.02 k=0.048 dt=1 noise=0.1.
  EXPECT_DOUBLE_EQ(s.Du, 0.2);
  EXPECT_DOUBLE_EQ(s.Dv, 0.1);
  EXPECT_DOUBLE_EQ(s.F, 0.02);
  EXPECT_DOUBLE_EQ(s.k, 0.048);
  EXPECT_DOUBLE_EQ(s.dt, 1.0);
  EXPECT_DOUBLE_EQ(s.noise, 0.1);
  EXPECT_NO_THROW(s.validate());
}

TEST(Settings, FromJsonOverrides) {
  const auto v = gs::json::parse(R"({
    "L": 128, "steps": 50, "plotgap": 5,
    "Du": 0.3, "Dv": 0.15, "F": 0.03, "k": 0.06, "dt": 0.5,
    "noise": 0.0, "seed": 7, "backend": "hip",
    "output": "run.bp", "ranks_per_node": 4
  })");
  const Settings s = Settings::from_json(v);
  EXPECT_EQ(s.L, 128);
  EXPECT_EQ(s.steps, 50);
  EXPECT_EQ(s.plotgap, 5);
  EXPECT_DOUBLE_EQ(s.Du, 0.3);
  EXPECT_DOUBLE_EQ(s.dt, 0.5);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.backend, KernelBackend::hip);
  EXPECT_EQ(s.output, "run.bp");
  EXPECT_EQ(s.ranks_per_node, 4);
}

TEST(Settings, PartialJsonKeepsDefaults) {
  const Settings s = Settings::from_json(gs::json::parse(R"({"L": 32})"));
  EXPECT_EQ(s.L, 32);
  EXPECT_DOUBLE_EQ(s.Du, 0.2);
  EXPECT_EQ(s.backend, KernelBackend::julia_amdgpu);
}

TEST(Settings, UnknownKeyRejected) {
  EXPECT_THROW(Settings::from_json(gs::json::parse(R"({"Lsize": 32})")),
               gs::ParseError);
}

TEST(Settings, UnknownBackendRejected) {
  EXPECT_THROW(
      Settings::from_json(gs::json::parse(R"({"backend": "cuda"})")),
      gs::ParseError);
}

TEST(Settings, BackendRoundTrip) {
  for (const auto b : {KernelBackend::host_reference, KernelBackend::hip,
                       KernelBackend::julia_amdgpu}) {
    EXPECT_EQ(gs::backend_from_string(gs::to_string(b)), b);
  }
}

TEST(Settings, JsonRoundTrip) {
  Settings s;
  s.L = 96;
  s.steps = 123;
  s.noise = 0.05;
  s.backend = KernelBackend::hip;
  s.checkpoint = true;
  const Settings back = Settings::from_json(s.to_json());
  EXPECT_EQ(back.L, s.L);
  EXPECT_EQ(back.steps, s.steps);
  EXPECT_DOUBLE_EQ(back.noise, s.noise);
  EXPECT_EQ(back.backend, s.backend);
  EXPECT_EQ(back.checkpoint, s.checkpoint);
  EXPECT_EQ(back.to_json().dump(), s.to_json().dump());
}

TEST(Settings, ValidationCatchesBadValues) {
  Settings s;
  s.L = 2;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.dt = 0.0;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.plotgap = 0;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.Du = -0.1;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.noise = -1.0;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.output = "";
  EXPECT_THROW(s.validate(), gs::Error);
}

TEST(Settings, StabilityBoundEnforced) {
  Settings s;
  s.Du = 3.0;
  s.dt = 2.0;  // dt * Du = 6 > 4
  EXPECT_THROW(s.validate(), gs::Error);
  s.dt = 1.0;  // dt * Du = 3 <= 4
  EXPECT_NO_THROW(s.validate());
}

TEST(Settings, FromJsonValidates) {
  EXPECT_THROW(Settings::from_json(gs::json::parse(R"({"dt": -1.0})")),
               gs::Error);
}

// ------------------------------------------------- rpc serving knobs

TEST(Settings, RpcDefaults) {
  const Settings s;
  EXPECT_EQ(s.rpc_port, 7544);
  EXPECT_EQ(s.rpc_backlog, 64);
  EXPECT_EQ(s.rpc_max_connections, 64);
  EXPECT_EQ(s.rpc_io_timeout_ms, 5000);
  EXPECT_NO_THROW(s.validate());
}

TEST(Settings, RpcKnobsFromJson) {
  const Settings s = Settings::from_json(gs::json::parse(R"({
    "rpc_port": 0, "rpc_backlog": 8,
    "rpc_max_connections": 16, "rpc_io_timeout_ms": 250
  })"));
  EXPECT_EQ(s.rpc_port, 0);  // 0 = ephemeral
  EXPECT_EQ(s.rpc_backlog, 8);
  EXPECT_EQ(s.rpc_max_connections, 16);
  EXPECT_EQ(s.rpc_io_timeout_ms, 250);
}

TEST(Settings, RpcValidationCatchesBadValues) {
  Settings s;
  s.rpc_port = 70000;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.rpc_port = -1;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.rpc_backlog = 0;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.rpc_max_connections = 0;
  EXPECT_THROW(s.validate(), gs::Error);
  s = Settings{};
  s.rpc_io_timeout_ms = 0;
  EXPECT_THROW(s.validate(), gs::Error);
}

TEST(Settings, RpcEnvOverridesBeatJson) {
  ::setenv("GS_RPC_PORT", "9001", 1);
  ::setenv("GS_RPC_MAX_CONNECTIONS", "3", 1);
  const Settings s =
      Settings::from_json(gs::json::parse(R"({"rpc_port": 1234})"));
  ::unsetenv("GS_RPC_PORT");
  ::unsetenv("GS_RPC_MAX_CONNECTIONS");
  EXPECT_EQ(s.rpc_port, 9001);          // env wins over JSON
  EXPECT_EQ(s.rpc_max_connections, 3);  // env wins over default
  EXPECT_EQ(s.rpc_backlog, 64);         // untouched knob keeps default
}

TEST(Settings, RpcEnvOverrideMalformedRejected) {
  ::setenv("GS_RPC_PORT", "not-a-port", 1);
  EXPECT_THROW(Settings::from_json(gs::json::parse("{}")), gs::ParseError);
  ::unsetenv("GS_RPC_PORT");
}

TEST(Settings, RpcEnvOverrideValidated) {
  ::setenv("GS_RPC_PORT", "123456", 1);  // out of range
  EXPECT_THROW(Settings::from_json(gs::json::parse("{}")), gs::Error);
  ::unsetenv("GS_RPC_PORT");
}

}  // namespace
