// Tests for the performance-model substrates: network model, Lustre
// model, weak-scaling simulator (Fig 6/7), I/O scaling simulator (Fig 8).
// These tests pin the calibrated SHAPES the paper reports.
#include <gtest/gtest.h>

#include <cmath>

#include "lustre/lustre_model.h"
#include "net/network_model.h"
#include "perf/calibration.h"
#include "perf/io_scaling.h"
#include "perf/weak_scaling.h"

namespace {

using gs::Rng;
using gs::Samples;
using gs::lustre::LustreModel;
using gs::net::NetworkModel;
using gs::perf::IoScalingSimulator;
using gs::perf::WeakScalingConfig;
using gs::perf::WeakScalingSimulator;

// ----------------------------------------------------------------- net

TEST(Net, MessageTimeHockney) {
  NetworkModel m;
  const double t1 = m.message_time(0);
  const double t2 = m.message_time(25'000'000'000ull);  // 1 s of bandwidth
  EXPECT_DOUBLE_EQ(t1, m.link().latency);
  EXPECT_NEAR(t2 - t1, 1.0, 1e-9);
}

TEST(Net, ContentionGrowsWithScale) {
  NetworkModel m;
  EXPECT_DOUBLE_EQ(m.contention_factor(1), 1.0);
  EXPECT_GT(m.contention_factor(512), m.contention_factor(8));
  EXPECT_GT(m.contention_factor(4096), m.contention_factor(512));
  EXPECT_LT(m.contention_factor(4096), 2.0);  // logarithmic, not linear
}

TEST(Net, HaloTimeScalesWithFaceArea) {
  NetworkModel m;
  // Large faces (bandwidth-dominated): area grows 4x, time ~4x.
  const double small = m.halo_time({512, 512, 512}, 2, 8);
  const double big = m.halo_time({1024, 1024, 1024}, 2, 8);
  EXPECT_GT(big / small, 3.5);
  EXPECT_LT(big / small, 4.1);
  // Tiny faces are latency-dominated: scaling is sublinear in area.
  const double tiny = m.halo_time({8, 8, 8}, 2, 8);
  const double tiny4 = m.halo_time({16, 16, 16}, 2, 8);
  EXPECT_LT(tiny4 / tiny, 2.0);
  // Two variables cost twice one.
  EXPECT_NEAR(m.halo_time({64, 64, 64}, 2, 8),
              2.0 * m.halo_time({64, 64, 64}, 1, 8), 1e-12);
}

TEST(Net, JitterSigmaMatchesPaperRegimes) {
  NetworkModel m;
  EXPECT_DOUBLE_EQ(m.jitter_sigma(8), 0.0035);
  EXPECT_DOUBLE_EQ(m.jitter_sigma(512), 0.0035);
  EXPECT_NEAR(m.jitter_sigma(4096), 0.017, 1e-12);
  // Monotone between knee and full scale.
  EXPECT_GT(m.jitter_sigma(1024), m.jitter_sigma(512));
  EXPECT_GT(m.jitter_sigma(4096), m.jitter_sigma(1024));
}

TEST(Net, JitterMeanNearOne) {
  NetworkModel m;
  Rng rng(5);
  gs::RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(m.jitter_multiplier(4096, rng));
  }
  EXPECT_NEAR(s.mean(), 1.0, 0.002);
}

// -------------------------------------------------------------- lustre

TEST(Lustre, BandwidthSaturatesBelowPeak) {
  LustreModel m;
  const double bw1 = m.aggregate_write_bandwidth(1);
  const double bw512 = m.aggregate_write_bandwidth(512);
  // One node: essentially the client stream.
  EXPECT_NEAR(bw1, m.params().client_bw, m.params().client_bw * 0.01);
  // 512 nodes: deterministic ~492 GB/s; the paper's 434 GB/s emerges
  // after the slowest-of-512 straggler factor (tested in IoScaling).
  EXPECT_NEAR(bw512 / 1e9, 492.0, 20.0);
  EXPECT_NEAR(bw512 / m.params().peak_write, 0.09, 0.01);
  // Never exceeds peak even for absurd node counts.
  EXPECT_LE(m.aggregate_write_bandwidth(1000000), m.params().peak_write);
}

TEST(Lustre, BandwidthMonotoneInNodes) {
  LustreModel m;
  double prev = 0.0;
  for (std::int64_t n = 1; n <= 4096; n *= 2) {
    const double bw = m.aggregate_write_bandwidth(n);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(Lustre, WriteTimeNearlyFlatUnderWeakScaling) {
  // The Figure 8 headline: per-node data constant, wall time grows far
  // more slowly than node count (flat on the paper's axes).
  LustreModel m;
  const std::uint64_t per_node = 137ull << 30;  // ~137 GB
  const double t1 = m.mean_write_time(1, per_node);
  const double t512 = m.mean_write_time(512, per_node);
  EXPECT_GT(t512, t1);            // some contention growth...
  EXPECT_LT(t512 / t1, 4.0);      // ...but nowhere near 512x
}

TEST(Lustre, SimulatedWriteSlowestNodeDominates) {
  LustreModel m;
  Rng rng(7);
  const auto s = m.simulate_write(64, 1ull << 30, rng);
  EXPECT_GT(s.slowest_node, s.fastest_node);
  EXPECT_DOUBLE_EQ(s.seconds, s.slowest_node);
  EXPECT_GT(s.aggregate_bw, 0.0);
}

TEST(Lustre, ReadBandwidthScalesLikeWriteWithReadPeakRatio) {
  LustreModel m;
  // Single client: read stream is write stream scaled by peak ratio.
  const double ratio = m.params().peak_read / m.params().peak_write;
  EXPECT_NEAR(m.aggregate_read_bandwidth(1),
              m.aggregate_write_bandwidth(1) * ratio,
              m.params().client_bw * 0.02);
  // Monotone, bounded by the read peak.
  EXPECT_GT(m.aggregate_read_bandwidth(64), m.aggregate_read_bandwidth(1));
  EXPECT_LE(m.aggregate_read_bandwidth(1 << 20), m.params().peak_read);
}

TEST(Lustre, ReadTimeHasOpenLatencyFloor) {
  LustreModel m;
  EXPECT_GE(m.mean_read_time(1, 0), m.params().open_latency);
  // 1 GiB at ~2 GB/s effective: sub-second but above latency floor.
  const double t = m.mean_read_time(1, 1ull << 30);
  EXPECT_GT(t, m.params().open_latency);
  EXPECT_LT(t, 2.0);
}

TEST(Lustre, InvalidInputsRejected) {
  LustreModel m;
  EXPECT_THROW(m.aggregate_write_bandwidth(0), gs::Error);
  EXPECT_THROW(m.mean_write_time(-1, 100), gs::Error);
}

// --------------------------------------------------- calibration formulas

TEST(Calibration, EffectiveSizesMatchPaperAt1024) {
  // Section 5.1 uses Eq. (4) at L=1024: fetch ~8.59 GB, write ~8.54 GB
  // per variable (so HIP effective bandwidth (8.59+8.54)/28.74ms = 596).
  const double fetch = static_cast<double>(
      gs::perf::fetch_size_effective(1024));
  const double write = static_cast<double>(
      gs::perf::write_size_effective(1024));
  EXPECT_NEAR(fetch / 1e9, 8.59, 0.01);
  EXPECT_NEAR(write / 1e9, 8.54, 0.01);
}

TEST(Calibration, FailureHazardShape) {
  WeakScalingSimulator sim;
  // Section 5.2: 4,096-GPU runs completed; 32,768 failed.
  EXPECT_LT(sim.failure_probability(4096), 0.01);
  EXPECT_GT(sim.failure_probability(32768), 0.99);
  EXPECT_LT(sim.failure_probability(512), sim.failure_probability(4096));
}

// --------------------------------------------------------- weak scaling

TEST(WeakScaling, KernelTimeMatchesTable3Shape) {
  // Julia 2-variable kernel at 1024^3: paper Table 3 reports 111 ms.
  WeakScalingSimulator julia;
  EXPECT_NEAR(julia.base_kernel_time() * 1e3, 122.0, 10.0);

  WeakScalingConfig hip_cfg;
  hip_cfg.backend = gs::KernelBackend::hip;
  hip_cfg.nvars = 1;
  WeakScalingSimulator hip(hip_cfg);
  // HIP single-variable: paper Table 3 reports 28.7 ms.
  EXPECT_NEAR(hip.base_kernel_time() * 1e3, 30.0, 4.0);
  // The headline: Julia per-variable is ~2x slower than HIP.
  EXPECT_NEAR(julia.base_kernel_time() / 2.0 / hip.base_kernel_time(), 2.0,
              0.35);
}

TEST(WeakScaling, DeterministicPerSeedAndScale) {
  WeakScalingSimulator sim;
  const auto a = sim.simulate(64);
  const auto b = sim.simulate(64);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].wall_time, b[i].wall_time);
  }
}

TEST(WeakScaling, SampleCountMatchesRanks) {
  WeakScalingSimulator sim;
  EXPECT_EQ(sim.simulate(1).size(), 1u);
  EXPECT_EQ(sim.simulate(512).size(), 512u);
}

TEST(WeakScaling, VariabilityMatchesFigure6) {
  WeakScalingSimulator sim;
  // <= 512 ranks: a few percent spread (paper: 2-3%).
  for (const std::int64_t p : {8L, 64L, 512L}) {
    const auto samples =
        WeakScalingSimulator::wall_times(sim.simulate(p));
    const double spread = samples.spread_percent();
    EXPECT_GT(spread, 0.2) << p;
    EXPECT_LT(spread, 5.0) << p;
  }
  // 4,096 ranks: large spread (paper: 12-15%).
  const auto big = WeakScalingSimulator::wall_times(sim.simulate(4096));
  EXPECT_GT(big.spread_percent(), 8.0);
  EXPECT_LT(big.spread_percent(), 20.0);
}

TEST(WeakScaling, MeanWallTimeGrowsSlowlyWithScale) {
  // Weak scaling: per-rank work constant; only network contention and
  // stragglers grow. Mean wall time at 4,096 ranks should be within a
  // modest factor of the 1-rank time.
  WeakScalingSimulator sim;
  const double t1 =
      WeakScalingSimulator::wall_times(sim.simulate(1)).mean();
  const double t4096 =
      WeakScalingSimulator::wall_times(sim.simulate(4096)).mean();
  EXPECT_GT(t4096, t1);
  EXPECT_LT(t4096 / t1, 1.5);
}

TEST(WeakScaling, JitBandwidthAboutEightPercentOfWarm) {
  // Figure 7: the JIT (first) run lands at ~8% of the optimized
  // bandwidth on average.
  WeakScalingSimulator sim;
  const auto samples = sim.simulate(4096);
  double ratio_sum = 0.0;
  for (const auto& s : samples) {
    ratio_sum += s.jit_bandwidth / s.warm_bandwidth;
  }
  const double mean_ratio = ratio_sum / static_cast<double>(samples.size());
  EXPECT_GT(mean_ratio, 0.05);
  EXPECT_LT(mean_ratio, 0.14);
}

TEST(WeakScaling, WarmBandwidthNearPaperEffective) {
  // Paper: "all 32,768 GPUs showed initial runs keeping the bandwidth
  // close to the expected value of 312 GB/s" (effective, Table 2).
  WeakScalingSimulator sim;
  const auto samples = sim.simulate(64);
  Samples bw;
  for (const auto& s : samples) bw.add(s.warm_bandwidth / 1e9);
  EXPECT_NEAR(bw.mean(), 290.0, 40.0);  // model lands within ~10% of 312
}

TEST(WeakScaling, HipBackendHasNoJit) {
  WeakScalingConfig cfg;
  cfg.backend = gs::KernelBackend::hip;
  WeakScalingSimulator sim(cfg);
  for (const auto& s : sim.simulate(16)) {
    EXPECT_DOUBLE_EQ(s.jit_time, 0.0);
    EXPECT_DOUBLE_EQ(s.jit_bandwidth, s.warm_bandwidth);
  }
}

TEST(WeakScaling, OverlapHidesCommunicationUpToTheKernelTime) {
  WeakScalingConfig plain_cfg, overlap_cfg;
  overlap_cfg.overlap = true;
  WeakScalingSimulator plain(plain_cfg);
  WeakScalingSimulator overlap(overlap_cfg);
  const double tp = plain.base_step_time(4096);
  const double to = overlap.base_step_time(4096);
  // Overlap always helps at this operating point (comm < kernel)...
  EXPECT_LT(to, tp);
  // ...and fully hides the exchange up to the small shell re-launch.
  EXPECT_NEAR(to, plain.base_kernel_time(), plain.base_kernel_time() * 0.02);
  // Never better than the kernel alone.
  EXPECT_GT(to, overlap.base_kernel_time() * 0.99);
}

TEST(WeakScaling, GpuAwareRemovesStagingOnly) {
  WeakScalingConfig cfg;
  cfg.gpu_aware = true;
  WeakScalingSimulator aware(cfg);
  WeakScalingSimulator staged;
  EXPECT_DOUBLE_EQ(aware.base_staging_time_per_step(), 0.0);
  EXPECT_GT(staged.base_staging_time_per_step(), 0.0);
  EXPECT_DOUBLE_EQ(aware.base_kernel_time(), staged.base_kernel_time());
  EXPECT_DOUBLE_EQ(aware.base_halo_time_per_step(512),
                   staged.base_halo_time_per_step(512));
}

TEST(WeakScaling, RunOutcomeAt4kCompletesAnd32kFails) {
  WeakScalingSimulator sim;
  const auto ok = sim.run(4096);
  EXPECT_TRUE(ok.completed);
  EXPECT_EQ(ok.samples.size(), 4096u);
  const auto fail = sim.run(32768);
  EXPECT_FALSE(fail.completed);
  EXPECT_NE(fail.failure.find("ghost cell exchange"), std::string::npos);
  EXPECT_TRUE(fail.samples.empty());
}

TEST(WeakScaling, InvalidConfigRejected) {
  WeakScalingConfig cfg;
  cfg.steps = 0;
  EXPECT_THROW(WeakScalingSimulator{cfg}, gs::Error);
  WeakScalingSimulator sim;
  EXPECT_THROW(sim.simulate(0), gs::Error);
}

// ----------------------------------------------------------- io scaling

TEST(IoScaling, BytesPerNodeMatchesPaperSetup) {
  // 8 ranks/node x 2 vars x 1024^3 doubles = 128 GiB per node.
  IoScalingSimulator sim;
  EXPECT_EQ(sim.bytes_per_node(), 8ull * 2ull * (1ull << 30) * 8ull);
}

TEST(IoScaling, BandwidthRisesTo434AtFullScale) {
  IoScalingSimulator sim;
  const auto p512 = sim.simulate(512);
  EXPECT_EQ(p512.ranks, 4096);
  EXPECT_NEAR(p512.aggregate_bw / 1e9, 434.0, 50.0);
  EXPECT_NEAR(p512.peak_fraction, 0.08, 0.015);
}

TEST(IoScaling, WriteTimeFairlyFlat) {
  IoScalingSimulator sim;
  const auto p1 = sim.simulate(1);
  const auto p512 = sim.simulate(512);
  EXPECT_LT(p512.seconds / p1.seconds, 4.0);
  EXPECT_GT(p512.aggregate_bw / p1.aggregate_bw, 100.0);
}

TEST(IoScaling, SweepCoversFactor8Progression) {
  IoScalingSimulator sim;
  const auto points = sim.sweep(512);
  ASSERT_EQ(points.size(), 4u);  // 1, 8, 64, 512
  EXPECT_EQ(points[0].nodes, 1);
  EXPECT_EQ(points[1].nodes, 8);
  EXPECT_EQ(points[2].nodes, 64);
  EXPECT_EQ(points[3].nodes, 512);
  // Monotone aggregate bandwidth.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].aggregate_bw, points[i - 1].aggregate_bw);
  }
}

TEST(IoScaling, DeterministicPerSeed) {
  IoScalingSimulator sim;
  EXPECT_DOUBLE_EQ(sim.simulate(64).seconds, sim.simulate(64).seconds);
}

}  // namespace
